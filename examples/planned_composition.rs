//! Cost- and locality-aware composition planning (E20): an abstract
//! goal — "convert a CSV, then train a classifier on it" — is bound to
//! concrete service replicas by a QoS knapsack over live telemetry.
//! The planner reads per-host queue depth and latency tails from the
//! deployment, credits the `DataRef` dedup when adjacent data-heavy
//! steps share a host, and emits an enactable workflow pinned to its
//! chosen replicas.
//!
//! Run with `cargo run --example planned_composition`.

use dm_workflow::engine::Executor;
use dm_workflow::graph::{TaskId, Token};
use dm_workflow::planner::{Goal, Planner};
use dm_wsrf::container::CapacityConfig;
use faehim::Toolkit;
use std::collections::HashMap;
use std::time::Duration;

fn main() {
    let tk = Toolkit::with_hosts(&["wesc-a", "wesc-b", "wesc-c"]).expect("toolkit");
    // A capacity model per host, so queue depth is a real, observable
    // signal for the planner to price.
    tk.enable_admission_control(CapacityConfig {
        workers: 2,
        queue_limit: None,
        service_time: Duration::from_millis(3),
    });
    let csv = dm_data::csv::write_csv(&dm_data::corpus::breast_cancer());

    // The abstract goal: categories and operations, no hosts, no
    // services — selection is the planner's job.
    let goal = Goal::chain(&[
        ("data-handling", "csvToArff", csv.len()),
        ("classifier", "classify", csv.len()),
    ]);

    println!("=== Cold start: empty telemetry, locality decides ===");
    let (plan, graph, tasks) = tk
        .plan_composition(&goal, &Planner::default())
        .expect("plan");
    for a in &plan.assignments {
        println!(
            "  step{} {} -> {}.{} on {} ({} predicted wire bytes{})",
            a.step + 1,
            a.category,
            a.service,
            a.operation,
            a.host,
            a.predicted_bytes,
            if a.colocated {
                ", colocated DataRef hop"
            } else {
                ""
            }
        );
    }
    println!(
        "  predicted: {:?} makespan, {} bytes moved",
        plan.predicted_makespan, plan.predicted_bytes_moved
    );

    // Enact the bound workflow: the CSV feeds step 1; the cable carries
    // the converted ARFF into the classifier.
    let mut bindings: HashMap<(TaskId, usize), Token> = HashMap::new();
    bindings.insert((tasks[0], 0), Token::Text(csv.clone()));
    bindings.insert((tasks[1], 1), Token::Text("Class".into()));
    bindings.insert((tasks[1], 2), Token::Text(String::new()));
    let report = Executor::serial().run(&graph, &bindings).expect("enact");
    let model = report.output(tasks[1], 0).expect("model output");
    if let Token::Text(text) = model {
        println!(
            "  trained model: {} chars, first line {:?}",
            text.len(),
            text.lines().next().unwrap_or("")
        );
    }

    println!("\n=== Telemetry shifts, the plan follows ===");
    // Pile synthetic work onto the chosen host: the next plan routes
    // around the queue the first one created.
    let favourite = plan.assignments[0].host.clone();
    let net = tk.network();
    let t0 = net.now();
    for _ in 0..24 {
        net.set_virtual_time(t0); // open loop: all arrivals at once
        let _ = net.invoke(&favourite, "Classifier", "getClassifiers", vec![]);
    }
    net.set_virtual_time(t0); // rewind into the busy window
    let (replan, _, _) = tk
        .plan_composition(&goal, &Planner::default())
        .expect("replan");
    println!(
        "  {} now carries {} outstanding requests",
        favourite,
        net.load_snapshot().get(&favourite).copied().unwrap_or(0)
    );
    println!(
        "  replanned placement: {:?} (was {:?})",
        replan.hosts(),
        plan.hosts()
    );
    assert_ne!(
        replan.assignments[0].host, favourite,
        "the planner must route around the queue it can see"
    );

    println!("\n=== Why it moved: the cost snapshot ===");
    let cost = tk.cost_model();
    for (host, hc) in cost.hosts() {
        println!(
            "  {host}: {} outstanding, p99 {:?}, shed rate {:.2}, breaker open: {}",
            hc.outstanding,
            hc.p99.unwrap_or_default(),
            hc.shed_rate,
            hc.breaker_open
        );
    }
}
