//! Distributed scenario: three replica hosts, fault injection with job
//! migration (§3's fault-tolerance requirement), parallel enactment of
//! a cross-validation fan-out (Grid-WEKA-style distribution), and
//! streaming versus whole-dataset migration.
//!
//! Run with `cargo run --example distributed_mining`.

use dm_data::stream::{chunk_dataset, RunningStats};
use dm_workflow::engine::Executor;
use dm_workflow::graph::{TaskGraph, Token, Tool};
use faehim::Toolkit;
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    let toolkit = Toolkit::with_hosts(&["wesc-a", "wesc-b", "wesc-c"]).expect("toolkit");
    let net = toolkit.network();

    // --- Fault-tolerant invocation ---------------------------------------
    println!("=== Fault tolerance: job migration across replicas ===");
    let mut tools = toolkit.import_service("wesc-a", "J48").expect("import");
    let classify = tools.remove(0); // J48.classify with replicas b, c
    net.set_host_down("wesc-a", true);
    println!("wesc-a marked down; invoking J48.classify ...");
    let out = classify
        .execute(&[
            Token::Text(dm_data::corpus::breast_cancer_arff()),
            Token::Text("Class".into()),
            Token::Text(String::new()),
        ])
        .expect("failover execution");
    match &out[0] {
        Token::Text(model) => {
            let root = model.lines().find(|l| l.contains(" = ")).unwrap_or("?");
            println!("migrated to a replica; model root line: {root}");
        }
        other => println!("unexpected output {other:?}"),
    }
    net.set_host_down("wesc-a", false);

    // --- Parallel cross-validation fan-out --------------------------------
    println!("\n=== Parallel enactment: 3 classifiers across 3 hosts ===");
    let mut graph = TaskGraph::new();
    let dataset = graph.add_task(Arc::new(faehim::tools::LocalDataset::breast_cancer()));
    let mut sinks = Vec::new();
    for (i, (host, classifier)) in [
        ("wesc-a", "J48"),
        ("wesc-b", "NaiveBayes"),
        ("wesc-c", "IBk"),
    ]
    .iter()
    .enumerate()
    {
        let tools = toolkit.import_service(host, "Classifier").expect("import");
        let cv = tools
            .into_iter()
            .find(|t| t.name().ends_with(".crossValidate"))
            .expect("crossValidate tool");
        let id = graph.add_named_task(format!("cv-{classifier}"), Arc::new(cv));
        graph.connect(dataset, 0, id, 0).expect("wire dataset");
        let _ = i;
        sinks.push((id, classifier.to_string()));
    }
    let mut bindings = HashMap::new();
    for &(id, ref classifier) in &sinks {
        bindings.insert((id, 1), Token::Text(classifier.clone()));
        bindings.insert((id, 2), Token::Text(String::new()));
        bindings.insert((id, 3), Token::Text("Class".into()));
        bindings.insert((id, 4), Token::Int(10));
    }
    let report = Executor::parallel()
        .run(&graph, &bindings)
        .expect("parallel run");
    for (id, classifier) in &sinks {
        if let Some(Token::Text(summary)) = report.output(*id, 0) {
            let accuracy = summary
                .lines()
                .find(|l| l.starts_with("Correctly Classified"))
                .unwrap_or("?");
            println!("  {classifier:<12} {accuracy}");
        }
    }
    println!("  wall-clock: {:?}", report.elapsed);

    // --- Streaming vs migration -------------------------------------------
    println!("\n=== Streaming vs whole-dataset migration (§3) ===");
    let big = dm_data::corpus::nominal_classification(20_000, 8, 4, 2, 0.1, 99);
    let batches = chunk_dataset(&big, 256).expect("chunking");
    let mut stats = RunningStats::new(big.num_attributes());
    for b in &batches {
        stats.update(b);
    }
    let streamed_bytes: usize = batches.iter().map(|b| b.byte_len()).sum();
    let migrated_bytes = dm_data::arff::write_arff(&big).len();
    println!(
        "  processed {} rows in {} batches while streaming ({} stream bytes vs {} migrated ARFF bytes)",
        stats.rows,
        batches.len(),
        streamed_bytes,
        migrated_bytes
    );
    let cfg = net.config();
    println!(
        "  virtual transfer time: stream {:?} (amortised) vs migrate {:?} (up-front)",
        cfg.transmit_time(streamed_bytes),
        cfg.transmit_time(migrated_bytes)
    );

    // --- Monitoring --------------------------------------------------------
    println!("\n=== Service monitoring (§3) ===");
    for host in toolkit.hosts() {
        let monitor = toolkit.container(host).expect("container").monitor();
        let s = monitor.summary(None);
        println!(
            "  {host}: {} invocations, {} faults, {} bytes in, {} bytes out",
            s.invocations, s.faults, s.bytes_in, s.bytes_out
        );
    }
}
