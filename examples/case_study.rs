//! The §5 case study, end to end: four Web Services — URL reader,
//! C4.5 classifier, output analyser, visualiser — composed with the
//! workflow engine, exactly as Figure 1 wires them.
//!
//! Run with `cargo run --example case_study`. Writes
//! `target/case_study_tree.svg`.

use faehim::casestudy::{build_case_study, run_case_study_on};
use faehim::Toolkit;

fn main() {
    let toolkit = Toolkit::new().expect("toolkit provisioning");

    // Show the workflow before running it.
    let (graph, ..) = build_case_study(&toolkit).expect("workflow construction");
    println!(
        "Case-study workflow ({} tasks, {} cables):",
        graph.num_tasks(),
        graph.cables().len()
    );
    print!("{}", graph.render_text());
    println!(
        "\nTaskgraph XML export:\n{}",
        dm_workflow::xml::export_taskgraph(&graph)
    );
    println!("DAX export:\n{}", dm_workflow::xml::export_dax(&graph));

    // Enact.
    let result = run_case_study_on(&toolkit).expect("case study enactment");

    println!(
        "=== Figure 3: dataset summary ===\n{}",
        result.summary_table
    );
    println!(
        "=== Classifier Web Service output ===\n{}",
        result.model_text
    );
    println!("=== Tree analysis (service 3) ===\n{}\n", result.analysis);

    let svg_path = std::path::Path::new("target").join("case_study_tree.svg");
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write(&svg_path, &result.tree_svg).expect("write SVG");
    println!(
        "=== Figure 4 ===\nDecision tree SVG written to {}",
        svg_path.display()
    );

    println!(
        "\nEnactment: {} tasks in {:?}",
        result.report.runs.len(),
        result.report.elapsed
    );
    for run in &result.report.runs {
        println!("  {:<32} {:?}", run.task, run.duration);
    }
    println!(
        "\nSimulated network time consumed: {:?}",
        toolkit.network().virtual_time()
    );
}
