//! Admission control under overload: a host with bounded capacity
//! sheds excess arrivals as retryable `ServerBusy` faults, the
//! resilience layer rides out a shed with extended backoff, and the
//! registry's least-loaded inquiry steers new work at the idle replica.
//!
//! Run with `cargo run --example overload`.

use dm_wsrf::container::CapacityConfig;
use dm_wsrf::registry::ServiceEntry;
use dm_wsrf::resilience::{BreakerConfig, ResiliencePolicy};
use faehim::Toolkit;
use std::time::Duration;

fn main() {
    let mut toolkit = Toolkit::with_hosts(&["wesc-a", "wesc-b"]).expect("toolkit");
    // Each host simulates one worker with a 5 ms service time and two
    // accept-queue slots; a third concurrent request is shed.
    toolkit.enable_admission_control(CapacityConfig {
        workers: 1,
        queue_limit: Some(2),
        service_time: Duration::from_millis(5),
    });
    let net = toolkit.network();

    println!("=== Burst of 8 simultaneous arrivals at wesc-a (1 worker, 2 queue slots) ===");
    let t0 = net.now();
    let mut served = 0;
    let mut shed = 0;
    for _ in 0..8 {
        net.set_virtual_time(t0); // open-loop: all 8 arrive at once
        match net.invoke("wesc-a", "Classifier", "getClassifiers", vec![]) {
            Ok(_) => served += 1,
            Err(e) if e.is_server_busy() => shed += 1,
            Err(e) => panic!("unexpected failure: {e}"),
        }
    }
    let stats = net
        .host("wesc-a")
        .expect("host")
        .load_stats(t0)
        .expect("capacity enabled");
    println!("served {served}, shed {shed} with ServerBusy");
    println!(
        "wesc-a load: admitted {}, queued {}, shed {}, {} in system, total queue wait {:?}",
        stats.admitted, stats.queued, stats.shed, stats.in_system, stats.total_queue_wait
    );

    println!("\n=== Resilient retry drains a busy host ===");
    toolkit.enable_resilience(
        ResiliencePolicy::default()
            .attempts(5)
            .backoff(Duration::from_millis(4), Duration::from_millis(64)),
        BreakerConfig {
            min_calls: 100,
            ..BreakerConfig::default()
        },
    );
    // Rewind into the busy window: the first attempt is shed, then the
    // shed-aware backoff (double the drawn delay) waits the queue out.
    net.set_virtual_time(t0);
    let caller = toolkit.resilience().expect("resilience enabled");
    let (_, stats) = caller
        .invoke_with_stats("wesc-a", "Classifier", "getClassifiers", vec![])
        .expect("retry succeeds once the queue drains");
    println!(
        "succeeded after {} attempts ({} shed, {:?} total backoff)",
        stats.attempts, stats.busy, stats.backoff
    );

    println!("\n=== Least-loaded registry inquiry prefers the idle replica ===");
    let registry = toolkit.registry();
    for host in ["wesc-a", "wesc-b"] {
        registry.publish(ServiceEntry {
            name: format!("Classifier@{host}"),
            host: host.to_string(),
            wsdl_url: format!("http://{host}:8080/axis/Classifier?wsdl"),
            categories: vec!["classifier-replica".to_string()],
            description: "replicated classifier".to_string(),
        });
        registry.heartbeat(&format!("Classifier@{host}"), net.now());
    }
    // Rewind into the burst's busy window so wesc-a still holds work.
    net.set_virtual_time(t0 + Duration::from_millis(1));
    let loads = net.load_snapshot();
    println!(
        "outstanding: wesc-a={}, wesc-b={}",
        loads.get("wesc-a").copied().unwrap_or(0),
        loads.get("wesc-b").copied().unwrap_or(0)
    );
    // Blend in the monitor's per-host p99 tails (the E20 cost score):
    // a fast-but-busy replica can outrank a slow-but-idle one.
    let tails: std::collections::HashMap<String, Duration> = net
        .monitor()
        .summary_by_host()
        .into_iter()
        .map(|s| (s.host, s.p99_duration))
        .collect();
    let ranked = registry.find_by_category_least_loaded(
        "classifier-replica",
        net.now(),
        Duration::from_secs(300),
        &loads,
        &tails,
    );
    for (i, entry) in ranked.iter().enumerate() {
        println!(
            "  {}. {} on {} (load {})",
            i + 1,
            entry.name,
            entry.host,
            loads.get(&entry.host).copied().unwrap_or(0)
        );
    }
    assert_eq!(ranked[0].host, "wesc-b", "idle replica ranks first");

    println!("\n=== Load metrics ===");
    let metrics = toolkit.metrics_registry();
    for line in metrics.export_prometheus().lines() {
        if line.starts_with("faehim_requests_") || line.starts_with("faehim_queue_depth") {
            println!("{line}");
        }
    }
}
