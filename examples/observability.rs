//! Observability: run the §5 case-study workflow with causal tracing
//! on, print the span tree (workflow → task → SOAP call → transport
//! leg → dispatch → handler), and export the deployment's metrics in
//! Prometheus and JSON form.
//!
//! Run with `cargo run --example observability`.

use faehim::casestudy::run_case_study_with;
use faehim::Toolkit;

fn main() {
    let toolkit = Toolkit::new().expect("toolkit provisioning");
    toolkit.enable_data_plane();
    let tracer = toolkit.enable_tracing();

    // Enact the case-study workflow; the executor, imported tools,
    // transport, containers, and service handlers all record spans into
    // the shared tracer, linked across the wire by the `traceparent`
    // SOAP header.
    let executor = toolkit.resilient_executor(None);
    let result = run_case_study_with(&toolkit, &executor).expect("case study");
    println!(
        "case study enacted: {} tasks, model root split intact: {}",
        result.report.runs.len(),
        result.model_text.contains("node-caps"),
    );

    println!("\n=== span tree ===");
    print!(
        "{}",
        dm_viz::spantree::render_span_tree(&tracer.finished_spans())
    );

    // The metrics registry absorbs the monitor log, wire counters,
    // attachment stores, and the classifier's model/eval caches.
    let metrics = toolkit.metrics_registry();
    println!("\n=== Prometheus exposition ===");
    print!("{}", metrics.export_prometheus());
    println!("\n=== JSON snapshot ===");
    println!("{}", metrics.export_json());
}
