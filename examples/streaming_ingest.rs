//! E18 walkthrough: continuous ingest into a long-lived model-serving
//! service. A producer streams columnar chunks to the `DataStream`
//! service under a bounded in-flight window while a consumer keeps
//! asking the *same* live model to classify fresh instances — the
//! paper's "streaming of data from a remote machine … processed
//! locally" requirement, upgraded from a one-shot fold to a standing
//! data plane.
//!
//! Run with `cargo run --example streaming_ingest`.

use dm_data::corpus::nominal_classification;
use dm_data::stream::{chunk_dataset, StreamHeader};
use dm_services::client::StreamClient;
use dm_services::deploy::deploy_faehim_suite;
use dm_wsrf::transport::{DataPlaneConfig, Network};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let net = Arc::new(Network::new());
    let host = net.add_host("miner");
    deploy_faehim_suite(&host).expect("deploy");
    net.enable_data_plane(DataPlaneConfig::default());

    // A drifting-free planted-dependency corpus: class = f(a0, a1).
    let ds = nominal_classification(4_000, 4, 3, 2, 0.1, 41);
    let probe = ds.select_rows(&(0..8).collect::<Vec<_>>());
    let probe_arff = dm_data::arff::write_arff(&probe);

    println!("=== Open a HoeffdingTree ingest stream ===");
    let client = StreamClient::new(Arc::clone(&net), "miner");
    let header = StreamHeader::of(&ds);
    let id = client
        .open_stream(&header, "HoeffdingTree", "", 4, Duration::from_micros(500))
        .expect("openStream");
    println!("stream id: {id}  (window 4 chunks, 500µs/row virtual cost)");

    println!("\n=== Interleave ingest with live classification ===");
    for (seq, batch) in chunk_dataset(&ds, 256).expect("chunk").iter().enumerate() {
        let ack = client
            .send_chunk(&id, seq as u64, batch)
            .expect("sendChunk");
        if seq % 4 == 3 {
            // Query the model mid-stream: serving never blocks ingest.
            let labels = client
                .classify_instances(&id, &probe_arff)
                .expect("classify");
            println!(
                "after {:>4} rows: backlog {} chunks, staleness {:>9?}, probe -> {:?}",
                ack.rows_total,
                ack.backlog_chunks,
                ack.staleness,
                &labels[..4]
            );
        }
    }
    client.close_stream(&id).expect("closeStream");

    println!("\n=== Final model and stream accounting ===");
    println!("{}", client.model_description(&id).expect("describe"));
    let stats = client.stream_stats(&id).expect("stats");
    println!(
        "chunks {}  rows {}  busy rejections {}  peak resident rows {}",
        stats.chunks, stats.rows, stats.busy_rejections, stats.peak_resident_rows
    );
    let wire = net.wire_stats();
    println!(
        "wire: {} envelopes, {} bytes, {} ref substitutions ({} bytes saved)",
        wire.envelopes, wire.bytes, wire.ref_substitutions, wire.bytes_saved
    );

    // The streamed model is byte-identical to migrate-then-train.
    use dm_algorithms::classifiers::{Classifier, HoeffdingTree};
    use dm_algorithms::state::Stateful;
    let mut local = HoeffdingTree::new();
    local.train(&ds).expect("train");
    let identical = client.model_state(&id).expect("state") == local.encode_state();
    println!("\nstreamed model == migrate-then-train model: {identical}");
    assert!(identical);
}
