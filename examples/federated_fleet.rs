//! E19 walkthrough: a replicated mining service on a simulated
//! multi-host fleet. A J48 classifier is deployed N times behind a
//! gossiped registry (partial per-host views, versioned heartbeats,
//! tombstones); requests are routed power-of-two-choices over the
//! live load snapshot, fail over past saturated replicas, and an
//! autoscaler grows and drains the fleet on queue-depth/p99 signals —
//! all on the virtual clock, fully deterministic.
//!
//! Run with `cargo run --example federated_fleet`.

use dm_algorithms::classifiers::{Classifier, J48};
use dm_data::corpus::nominal_classification;
use dm_data::Dataset;
use dm_wsrf::container::{CapacityConfig, ServiceFault, WebService};
use dm_wsrf::fleet::{Autoscaler, AutoscalerConfig, Fleet, FleetConfig, ScaleAction};
use dm_wsrf::soap::SoapValue;
use dm_wsrf::transport::Network;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};
use std::sync::Arc;
use std::time::Duration;

/// Each replica trains its own J48 on the same deterministic corpus,
/// so every replica answers `classify(row)` identically — as N
/// deployments of the same released model would.
struct MineService {
    model: J48,
    data: Dataset,
}

fn mine_service() -> Arc<dyn WebService> {
    let data = nominal_classification(200, 4, 3, 2, 0.05, 11);
    let mut model = J48::new();
    model.train(&data).expect("train");
    Arc::new(MineService { model, data })
}

impl WebService for MineService {
    fn name(&self) -> &str {
        "Mine"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("Mine", "http://localhost/Mine").operation(Operation::new(
            "classify",
            vec![Part::new("row", "long")],
            Part::new("label", "long"),
        ))
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        match operation {
            "classify" => {
                let row = args
                    .iter()
                    .find(|(n, _)| n == "row")
                    .and_then(|(_, v)| v.as_int().ok())
                    .ok_or_else(|| ServiceFault::client("missing row"))?
                    as usize;
                let label = self
                    .model
                    .predict(&self.data, row % self.data.num_instances())
                    .map_err(|e| ServiceFault::server(e.to_string()))?;
                Ok(SoapValue::Int(label as i64))
            }
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

fn main() {
    let net = Arc::new(Network::new());
    let mut config = FleetConfig::new("Mine");
    config.capacity = CapacityConfig {
        workers: 2,
        queue_limit: Some(8),
        service_time: Duration::from_millis(2),
    };
    let fleet = Fleet::new(Arc::clone(&net), config, Arc::new(mine_service));

    println!("=== Provision one replica and converge the gossip mesh ===");
    let host = fleet.add_replica(net.now());
    println!("provisioned {host}");
    let rounds = fleet.gossip().sync(8).expect("mesh converges");
    println!("mesh converged in {rounds} anti-entropy round(s)");

    println!("\n=== Drive 600 open-loop arrivals at 2x one replica's capacity ===");
    let scaler = Autoscaler::new(AutoscalerConfig {
        max_replicas: 6,
        queue_high: 3.0,
        p99_high: Duration::from_millis(8),
        cooldown: Duration::from_millis(40),
        ..AutoscalerConfig::default()
    });
    let mut t = Duration::ZERO;
    let (mut served, mut shed) = (0u32, 0u32);
    let mut recent = Vec::new();
    for i in 0..600u32 {
        t += Duration::from_micros(500);
        net.set_virtual_time(t);
        if i % 32 == 0 {
            fleet.heartbeat_all(t);
            fleet.gossip().run_round();
        }
        match fleet.invoke(
            t,
            "classify",
            vec![("row".into(), SoapValue::Int(i as i64))],
        ) {
            Ok(_) => {
                served += 1;
                recent.push(net.virtual_time() - t);
            }
            Err(e) if e.is_server_busy() => shed += 1,
            Err(e) => panic!("unexpected failure: {e}"),
        }
        if i % 50 == 49 {
            recent.sort_unstable();
            let p99 = recent[recent.len() * 99 / 100];
            let action = fleet.autoscale_tick(t, &scaler, p99);
            if action != ScaleAction::Hold {
                println!(
                    "t={t:>12?}  {action:?} -> {} replica(s)  (window p99 {p99:?})",
                    fleet.active_replicas().len()
                );
            }
            recent.clear();
        }
    }

    println!("\n=== Outcome ===");
    println!("served {served}, shed {shed} of 600 arrivals");
    println!("final fleet: {:?}", fleet.active_replicas());
    println!("autoscaler decisions logged: {}", scaler.history().len());
    println!("router draws: {}", fleet.router().draws());

    // Same-seed reruns of this whole program are byte-identical: every
    // random choice (gossip peers, p2c draws, tie-breaks) is a counter-
    // based splitmix64 stream on the virtual clock.
    assert!(
        fleet.active_replicas().len() > 1,
        "overload should grow the fleet"
    );
}
