//! Regenerates the content of **Figure 2**: "The Components of the
//! Data Mining Toolbox" — the workflow engine surrounded by the data
//! management library, visualisation tools, the WEKA-derived algorithm
//! pool, and the deployed third-party services.
//!
//! Run with `cargo run --example figure2_components`.

use faehim::Toolkit;

fn main() {
    let toolkit = Toolkit::new().expect("toolkit provisioning");
    print!("{}", toolkit.describe_components());

    println!("\nUDDI inquiry demonstration (§4.6):");
    for category in ["classifier", "clustering", "visualisation", "data-handling"] {
        let hits = toolkit.registry().find_by_category(category);
        let names: Vec<&str> = hits.iter().map(|e| e.name.as_str()).collect();
        println!("  category {category:?} -> {names:?}");
    }
    let inquiry = toolkit.registry().find_by_name("Cl");
    println!(
        "  name inquiry \"Cl\" -> {:?}",
        inquiry.iter().map(|e| e.name.as_str()).collect::<Vec<_>>()
    );
}
