//! Event-sourced durable enactment: the §5 case-study workflow is
//! journalled as it runs, the orchestrator is killed part-way through,
//! and a fresh process resumes from the surviving log bytes — completed
//! tasks are restored from the journal (zero re-execution) and the
//! recovered report is byte-identical to an uninterrupted run's.
//!
//! Run with `cargo run --example durable_enactment`.

use dm_workflow::durable::DurableConfig;
use dm_workflow::journal::{RunEvent, RunJournal};
use faehim::casestudy::build_case_study;
use faehim::Toolkit;
use std::sync::Arc;

fn main() {
    let mut toolkit = Toolkit::new().expect("toolkit");
    toolkit.enable_data_plane();
    let journal = toolkit.enable_durable_enactment(4);
    let store = toolkit.network().client_store().expect("client store");
    let (graph, _tasks, bindings) = build_case_study(&toolkit).expect("case study");

    println!("=== Uninterrupted durable run (the baseline) ===");
    let baseline = toolkit.run_durable(&graph, &bindings).expect("baseline");
    let stats = journal.stats();
    println!(
        "10 tasks journalled: {} appends, {} records, {} bytes \
         (large outputs live in the content-addressed store)",
        stats.appends, stats.records, stats.bytes
    );

    println!("\n=== Kill the orchestrator mid-run ===");
    // A fresh journal for the doomed enactment; the kill point lands
    // after the 13th append — several tasks completed, one in flight.
    let doomed = Arc::new(RunJournal::with_store(Arc::clone(&store), 1024));
    let config = DurableConfig::new(Arc::clone(&doomed))
        .with_workers(4)
        .with_kill_after_appends(13);
    let err = toolkit
        .resilient_executor(None)
        .run_durable(&graph, &bindings, &config)
        .expect_err("scripted crash");
    println!("orchestrator died: {err}");

    println!("\n=== Resume from the surviving bytes ===");
    // Process boundary: only the journal bytes and the store survive.
    let survived =
        Arc::new(RunJournal::from_bytes(&doomed.bytes()).attach_store(Arc::clone(&store), 1024));
    let completed_before = survived.replay().completed.len();
    println!("the log records {completed_before} completed tasks — none will re-execute");
    toolkit.adopt_journal(Arc::clone(&survived));
    let resumed = toolkit.run_durable(&graph, &bindings).expect("resume");
    println!(
        "resumed: {} replayed from the log, {} executed fresh",
        resumed.replay_hits(),
        resumed.runs.iter().filter(|r| !r.replayed).count()
    );
    assert_eq!(resumed.canonical_bytes(), baseline.canonical_bytes());
    println!("recovered report is byte-identical to the uninterrupted run");

    println!("\n=== What the journal holds ===");
    for event in survived.events().iter().take(6) {
        match event {
            RunEvent::RunStarted { tasks, fingerprint } => {
                println!("run-started    {tasks} tasks, graph fingerprint {fingerprint:#034x}")
            }
            RunEvent::TaskStarted { task, name } => println!("task-started   #{task} {name}"),
            RunEvent::TaskCompleted { task, name, .. } => {
                println!("task-completed #{task} {name}")
            }
            other => println!("{other:?}"),
        }
    }
    println!("...");

    println!("\n=== Recovery counters (Prometheus export) ===");
    let metrics = toolkit.metrics_registry();
    for line in metrics.export_prometheus().lines() {
        if line.starts_with("faehim_journal") || line.starts_with("faehim_replay") {
            println!("{line}");
        }
    }
}
