//! Quickstart: provision the toolkit, walk the paper's §4.4 invocation
//! sequence against the general Classifier Web Service, and print the
//! resulting decision tree.
//!
//! Run with `cargo run --example quickstart`.

use faehim::Toolkit;

fn main() {
    // Provision a host, deploy the FAEHIM suite, publish to UDDI.
    let toolkit = Toolkit::new().expect("toolkit provisioning");
    let client = toolkit.classifier_client();

    // Step 1 (§4.4): obtain the available classifiers.
    let classifiers = client.get_classifiers().expect("getClassifiers");
    println!("Available classifiers ({}):", classifiers.len());
    for name in &classifiers {
        println!("  {name}");
    }

    // Step 2: fetch the options of the selected classifier.
    println!("\nOptions of J48:");
    for (flag, name, description, default) in client.get_options("J48").expect("getOptions") {
        println!("  {flag} ({name}, default {default}): {description}");
    }

    // Step 3: invoke classifyInstance with its four inputs.
    let model = client
        .classify_instance(
            &dm_data::corpus::breast_cancer_arff(),
            "J48",
            "-C 0.25 -M 2",
            "Class",
        )
        .expect("classifyInstance");

    // Step 4: display the output.
    println!("\n{model}");

    // Testing the discovered knowledge (§3): cross-validate.
    let evaluation = client
        .cross_validate(
            &dm_data::corpus::breast_cancer_arff(),
            "J48",
            "",
            "Class",
            10,
        )
        .expect("crossValidate");
    println!("{evaluation}");

    // Local fold-parallel evaluation + a confusion-matrix heatmap (the
    // visualisation requirement of §3).
    let ds = dm_data::corpus::breast_cancer();
    let eval = dm_algorithms::eval::cross_validate_parallel(
        || dm_algorithms::registry::make_classifier("J48"),
        &ds,
        10,
        1,
    )
    .expect("parallel CV");
    let labels: Vec<String> = ds
        .class_attribute()
        .expect("class attribute")
        .labels()
        .to_vec();
    let svg = dm_viz::plot::confusion_heatmap(
        "J48 10-fold CV on breast-cancer",
        &labels,
        eval.confusion_matrix(),
    );
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write("target/confusion_heatmap.svg", svg).expect("write SVG");
    println!(
        "Confusion-matrix heatmap written to target/confusion_heatmap.svg (accuracy {:.1}%)",
        100.0 * eval.accuracy()
    );
}
