//! The paper's extensions, end to end:
//!
//! * **Relational data access** (§5.4 future work, "access to
//!   relational databases through the OGSA-DAI services"): discover a
//!   relational resource, query it with selection + projection, and
//!   feed the result straight into the C4.5 classifier service.
//! * **Session management** (§5.4): an interactive sequence whose
//!   selections are carried by the Session service.
//! * **Signal processing** (§2, the Triana toolbox): a SignalGen →
//!   PowerSpectrum → PeakDetector workflow, plus streaming a dataset
//!   into the incremental Naive Bayes learner.
//!
//! Run with `cargo run --example relational_and_signal`.

use dm_algorithms::classifiers::{Classifier, NaiveBayes};
use dm_workflow::engine::Executor;
use dm_workflow::graph::{TaskGraph, Token};
use dm_wsrf::soap::SoapValue;
use faehim::Toolkit;
use std::collections::HashMap;

fn main() {
    let toolkit = Toolkit::new().expect("toolkit provisioning");
    let net = toolkit.network();
    let host = toolkit.primary_host().to_string();

    // --- OGSA-DAI-style relational access --------------------------------
    println!("=== Relational data access (future work, §5.4) ===");
    let resources = net
        .invoke(&host, "DataAccess", "listResources", vec![])
        .expect("listResources");
    println!("resources: {:?}", resources);

    let arff = net
        .invoke(
            &host,
            "DataAccess",
            "query",
            vec![
                ("resource".into(), SoapValue::Text("breast_cancer".into())),
                ("select".into(), SoapValue::Text(String::new())),
                ("where".into(), SoapValue::Text("menopause=premeno".into())),
                ("limit".into(), SoapValue::Int(i64::MAX)),
            ],
        )
        .expect("query");
    let subset = dm_data::arff::parse_arff(arff.as_text().expect("text")).expect("parse");
    println!(
        "query menopause=premeno returned {} of 286 rows",
        subset.num_instances()
    );

    let model = toolkit
        .classifier_client()
        .classify_instance(arff.as_text().expect("text"), "J48", "", "Class")
        .expect("classify the query result");
    let root = model
        .lines()
        .find(|l| l.contains(" = "))
        .unwrap_or("(leaf)");
    println!("J48 over the query result; first split: {root}\n");

    // --- Session management ----------------------------------------------
    println!("=== Session management (§5.4) ===");
    let session = net
        .invoke(&host, "Session", "createSession", vec![])
        .expect("createSession");
    let session_id = session.as_text().expect("text").to_string();
    for (key, value) in [
        ("classifier", "J48"),
        ("options", "-C 0.25 -M 2"),
        ("attribute", "Class"),
    ] {
        net.invoke(
            &host,
            "Session",
            "putAttribute",
            vec![
                ("sessionId".into(), SoapValue::Text(session_id.clone())),
                ("key".into(), SoapValue::Text(key.into())),
                ("value".into(), SoapValue::Text(value.into())),
            ],
        )
        .expect("putAttribute");
    }
    let keys = net
        .invoke(
            &host,
            "Session",
            "listAttributes",
            vec![("sessionId".into(), SoapValue::Text(session_id.clone()))],
        )
        .expect("listAttributes");
    println!("session {session_id} carries {:?}\n", keys);

    // --- Signal processing -------------------------------------------------
    println!("=== Signal processing toolbox (§2) ===");
    let toolbox = toolkit.toolbox();
    let mut g = TaskGraph::new();
    let gen = g.add_task(std::sync::Arc::new(faehim::signal_tools::SignalGen::tones(
        vec![(50.0, 1.0), (120.0, 0.7)],
        1000.0,
        2048,
    )));
    let spectrum = g.add_task(toolbox.find("PowerSpectrum").expect("tool"));
    let peaks = g.add_task(toolbox.find("PeakDetector").expect("tool"));
    g.connect(gen, 0, spectrum, 0).expect("wire");
    g.connect(spectrum, 0, peaks, 0).expect("wire");
    let report = Executor::serial().run(&g, &HashMap::new()).expect("run");
    if let Some(Token::Text(text)) = report.output(peaks, 0) {
        print!("{text}");
    }

    // --- Streaming into the incremental learner -----------------------------
    println!("\n=== Streaming Naive Bayes (incremental learner) ===");
    let ds = dm_data::corpus::breast_cancer();
    let chunks = dm_data::stream::chunk_dataset(&ds, 32).expect("chunking");
    let mut nb = NaiveBayes::new();
    let mut seed = ds.header_clone();
    for i in 0..chunks[0].num_rows() {
        seed.push_row(chunks[0].row_values(i)).expect("row");
    }
    nb.train(&seed).expect("seed training");
    for (i, chunk) in chunks[1..].iter().enumerate() {
        nb.update_batch(chunk).expect("incremental update");
        if (i + 2) % 3 == 0 {
            println!(
                "  after {:>3} instances: observed weight {}",
                nb.observed_weight(),
                nb.observed_weight()
            );
        }
    }
    let ci = ds.class_index().expect("class");
    let correct = (0..ds.num_instances())
        .filter(|&r| nb.predict(&ds, r).expect("predict") == ds.value(r, ci) as usize)
        .count();
    println!(
        "streamed all 286 instances; in-sample accuracy {:.1}%",
        100.0 * correct as f64 / 286.0
    );
}
