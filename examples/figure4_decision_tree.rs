//! Regenerates **Figure 4** of the paper: "Visualising the C4.5
//! decision tree for the breast-cancer data set" — the J48 Web Service
//! output, textual and graphical, with `node-caps` at the root.
//!
//! Run with `cargo run --example figure4_decision_tree`. Writes
//! `target/figure4_tree.svg` and `target/figure4_tree.dot`.

use dm_algorithms::classifiers::{Classifier, J48};

fn main() {
    let ds = dm_data::corpus::breast_cancer();
    let mut j48 = J48::new();
    j48.train(&ds).expect("training");

    println!("Figure 4 — C4.5 decision tree for the breast-cancer data");
    println!("=========================================================\n");
    println!("{}", j48.describe());
    println!(
        "Root attribute: {} (paper: node-caps)",
        j48.root_attribute().unwrap_or("(leaf)")
    );

    let tree = j48.tree_model().expect("tree model");
    let mut spec = dm_viz::TreeSpec::new();
    for node in tree.nodes() {
        spec.add(node.label.clone(), node.edge.clone(), node.is_leaf);
    }
    for (i, node) in tree.nodes().iter().enumerate() {
        for &c in &node.children {
            spec.connect(i, c);
        }
    }

    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write("target/figure4_tree.svg", spec.to_svg()).expect("write SVG");
    std::fs::write("target/figure4_tree.dot", tree.to_dot("J48")).expect("write DOT");
    println!("\nWrote target/figure4_tree.svg and target/figure4_tree.dot");

    // Resubstitution check: better than the 201/286 prior.
    let ci = ds.class_index().expect("class set");
    let correct = (0..ds.num_instances())
        .filter(|&r| j48.predict(&ds, r).expect("prediction") == ds.value(r, ci) as usize)
        .count();
    println!(
        "Training accuracy: {}/{} = {:.1}% (majority prior {:.1}%)",
        correct,
        ds.num_instances(),
        100.0 * correct as f64 / 286.0,
        100.0 * 201.0 / 286.0
    );
}
