//! Regenerates **Figure 3** of the paper: "Information about the Breast
//! cancer data" — the WEKA-style per-attribute summary table.
//!
//! Run with `cargo run --example figure3_dataset_summary`.

use dm_data::corpus::breast_cancer;
use dm_data::summary::DatasetSummary;

fn main() {
    let ds = breast_cancer();
    let summary = DatasetSummary::of(&ds);
    println!("Figure 3 — Information about the Breast cancer data");
    println!("===================================================\n");
    print!("{}", summary.to_table_string());

    println!("\nChecks against the published figure:");
    let checks: [(&str, bool); 6] = [
        ("286 instances", summary.num_instances == 286),
        (
            "10 attributes, all discrete",
            summary.num_discrete == 10 && summary.num_continuous == 0,
        ),
        (
            "9 missing values (0.3%)",
            summary.missing_values == 9 && summary.missing_pct == 0.3,
        ),
        (
            "node-caps: Enum 97%, 8 missing, 2 distinct",
            summary.attributes[4].nominal_pct == 97
                && summary.attributes[4].missing == 8
                && summary.attributes[4].distinct == 2,
        ),
        (
            "breast-quad: 1 missing, 5 distinct",
            summary.attributes[7].missing == 1 && summary.attributes[7].distinct == 5,
        ),
        (
            "distinct counts 6,3,11,7,2,3,2,5,2,2",
            summary
                .attributes
                .iter()
                .map(|a| a.distinct)
                .eq([6, 3, 11, 7, 2, 3, 2, 5, 2, 2]),
        ),
    ];
    for (what, ok) in checks {
        println!("  [{}] {what}", if ok { "ok" } else { "MISMATCH" });
    }
}
