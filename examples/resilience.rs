//! The resilience layer end to end: a toolkit with circuit breakers and
//! retry budgets enabled rides out a scripted mid-run outage, the
//! breaker routes follow-up traffic around the dead host, and a
//! half-open probe restores it once the outage window lapses.
//!
//! Run with `cargo run --example resilience`.

use dm_workflow::graph::{TaskGraph, Token, Tool};
use faehim::prelude::{BreakerConfig, ResiliencePolicy};
use faehim::Toolkit;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut toolkit = Toolkit::with_hosts(&["wesc-a", "wesc-b"]).expect("toolkit");
    toolkit.enable_resilience(
        ResiliencePolicy::default()
            .attempts(2)
            .backoff(Duration::from_millis(5), Duration::from_millis(80)),
        BreakerConfig {
            min_calls: 2,
            open_for: Duration::from_secs(2),
            ..BreakerConfig::default()
        },
    );

    println!("=== Scripted outage: breaker-guided failover ===");
    let mut tools = toolkit.import_service("wesc-a", "J48").expect("import");
    let classify = Arc::new(tools.remove(0));
    let net = toolkit.network();
    let now = net.now();
    net.add_outage("wesc-a", now, now + Duration::from_secs(1));
    println!("outage window opened on wesc-a at t={now:?} (+1s)");

    let mut graph = TaskGraph::new();
    let t = graph.add_task(Arc::clone(&classify) as Arc<dyn Tool>);
    let mut bindings = HashMap::new();
    bindings.insert((t, 0), Token::Text(dm_data::corpus::breast_cancer_arff()));
    bindings.insert((t, 1), Token::Text("Class".into()));
    bindings.insert((t, 2), Token::Text(String::new()));
    let report = toolkit
        .resilient_executor(Some(4))
        .run(&graph, &bindings)
        .expect("resilient run");
    println!(
        "workflow completed: served by {:?}, {} attempts, {:?} backoff, budget left {:?}",
        classify.last_served_host(),
        classify.last_call_stats().attempts,
        classify.last_call_stats().backoff,
        report.retry_budget_remaining,
    );

    println!("\n=== Degraded-mode report ===");
    println!("{}", toolkit.degraded_mode_report());

    println!("=== Recovery: half-open probe after the window lapses ===");
    net.advance_virtual_time(Duration::from_secs(3));
    let caller = toolkit.resilience().expect("resilience enabled");
    let breaker = caller.board().breaker("wesc-a");
    println!("breaker state after 3s: {:?}", breaker.state(net.now()));
    caller
        .invoke("wesc-a", "Classifier", "getClassifiers", vec![])
        .expect("probe succeeds once the outage lapses");
    println!(
        "probe succeeded; breaker state: {:?}",
        breaker.state(net.now())
    );

    println!("\n=== Per-host traffic summary ===");
    for h in net.monitor().summary_by_host() {
        println!(
            "  {}: {} invocations, {} transport errors, failure rate {:.2}",
            h.host, h.invocations, h.transport_errors, h.failure_rate
        );
    }
}
