//! Domain scenario: the two other service families of §4.1 — the
//! Cobweb clustering Web Service (`cluster` + `getCobwebGraph`) and
//! association-rule mining — plus the Mathematica-substitute `plot3D`.
//!
//! Run with `cargo run --example clustering_and_rules`. Writes
//! `target/cobweb_tree.svg`, `target/clusters.svg` and
//! `target/plot3d.ppm`.

use dm_data::corpus::{gaussian_blobs, market_baskets, BlobSpec};
use dm_wsrf::soap::SoapValue;
use faehim::Toolkit;

fn main() {
    let toolkit = Toolkit::new().expect("toolkit provisioning");
    let net = toolkit.network();
    let host = toolkit.primary_host().to_string();
    std::fs::create_dir_all("target").expect("target dir");

    // --- Clustering -----------------------------------------------------
    let blobs = gaussian_blobs(
        &[
            BlobSpec {
                center: vec![0.0, 0.0],
                stddev: 0.4,
                count: 60,
            },
            BlobSpec {
                center: vec![8.0, 0.5],
                stddev: 0.4,
                count: 60,
            },
            BlobSpec {
                center: vec![4.0, 7.0],
                stddev: 0.4,
                count: 60,
            },
        ],
        2026,
    );
    let arff = dm_data::arff::write_arff(&blobs);

    let report = toolkit
        .clusterer_client()
        .cluster(&arff, "SimpleKMeans", "-N 3")
        .expect("k-means over the Clusterer service");
    println!("=== SimpleKMeans via the Clusterer Web Service ===\n{report}");

    let cobweb_svg = toolkit
        .clusterer_client()
        .cobweb_graph(&arff, "-A 0.4")
        .expect("getCobwebGraph");
    std::fs::write("target/cobweb_tree.svg", &cobweb_svg).expect("write SVG");
    println!("Cobweb concept hierarchy written to target/cobweb_tree.svg");

    // Cluster visualiser (the §4.3 visualisation tool).
    let assignments = net
        .invoke(
            &host,
            "Clusterer",
            "assignments",
            vec![
                ("dataset".into(), SoapValue::Text(arff.clone())),
                ("clusterer".into(), SoapValue::Text("SimpleKMeans".into())),
                ("options".into(), SoapValue::Text("-N 3".into())),
            ],
        )
        .expect("assignments");
    let assignments: Vec<usize> = assignments
        .as_list()
        .expect("list")
        .iter()
        .map(|v| v.as_int().expect("int") as usize)
        .collect();
    let points: Vec<(f64, f64)> = (0..blobs.num_instances())
        .map(|r| (blobs.value(r, 0), blobs.value(r, 1)))
        .collect();
    std::fs::write(
        "target/clusters.svg",
        dm_viz::plot::cluster_plot("k-means clusters", &points, &assignments),
    )
    .expect("write SVG");
    println!("Cluster visualisation written to target/clusters.svg");

    // --- Association rules ----------------------------------------------
    let baskets = market_baskets(10, 400, &[(&[0, 1], 0.45), (&[3, 4, 5], 0.3)], 0.03, 7);
    let baskets_arff = dm_data::arff::write_arff(&baskets);
    let rules = net
        .invoke(
            &host,
            "Association",
            "mine",
            vec![
                ("dataset".into(), SoapValue::Text(baskets_arff)),
                ("associator".into(), SoapValue::Text("Apriori".into())),
                (
                    "options".into(),
                    SoapValue::Text("-Z true -M 0.2 -C 0.7 -N 15".into()),
                ),
            ],
        )
        .expect("association mining");
    println!("\n=== Apriori rules via the Association Web Service ===");
    for rule in rules.as_list().expect("list") {
        println!("  {}", rule.as_text().expect("text"));
    }

    // --- plot3D (the Mathematica-substitute service) ---------------------
    let mut csv = String::from("x,y,z\n");
    for i in 0..400 {
        let t = i as f64 / 40.0;
        csv.push_str(&format!("{},{},{}\n", t.cos() * t, t.sin() * t, t));
    }
    let image = net
        .invoke(
            &host,
            "Math",
            "plot3D",
            vec![
                ("csv".into(), SoapValue::Text(csv)),
                ("width".into(), SoapValue::Int(480)),
                ("height".into(), SoapValue::Int(360)),
            ],
        )
        .expect("plot3D");
    std::fs::write("target/plot3d.ppm", image.as_bytes().expect("bytes")).expect("write image");
    println!("\nplot3D image written to target/plot3d.ppm");
    println!("Simulated network time consumed: {:?}", net.virtual_time());
}
