/root/repo/target/debug/examples/figure2_components-abb8f6ce43d90d4e.d: crates/core/../../examples/figure2_components.rs Cargo.toml

/root/repo/target/debug/examples/libfigure2_components-abb8f6ce43d90d4e.rmeta: crates/core/../../examples/figure2_components.rs Cargo.toml

crates/core/../../examples/figure2_components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
