/root/repo/target/debug/examples/figure4_decision_tree-7017678ed4fa8c69.d: crates/core/../../examples/figure4_decision_tree.rs Cargo.toml

/root/repo/target/debug/examples/libfigure4_decision_tree-7017678ed4fa8c69.rmeta: crates/core/../../examples/figure4_decision_tree.rs Cargo.toml

crates/core/../../examples/figure4_decision_tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
