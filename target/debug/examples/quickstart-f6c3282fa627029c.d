/root/repo/target/debug/examples/quickstart-f6c3282fa627029c.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f6c3282fa627029c: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
