/root/repo/target/debug/examples/case_study-4a891fac46b0e6e5.d: crates/core/../../examples/case_study.rs

/root/repo/target/debug/examples/case_study-4a891fac46b0e6e5: crates/core/../../examples/case_study.rs

crates/core/../../examples/case_study.rs:
