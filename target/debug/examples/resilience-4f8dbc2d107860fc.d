/root/repo/target/debug/examples/resilience-4f8dbc2d107860fc.d: crates/core/../../examples/resilience.rs

/root/repo/target/debug/examples/resilience-4f8dbc2d107860fc: crates/core/../../examples/resilience.rs

crates/core/../../examples/resilience.rs:
