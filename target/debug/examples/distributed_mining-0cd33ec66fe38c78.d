/root/repo/target/debug/examples/distributed_mining-0cd33ec66fe38c78.d: crates/core/../../examples/distributed_mining.rs

/root/repo/target/debug/examples/distributed_mining-0cd33ec66fe38c78: crates/core/../../examples/distributed_mining.rs

crates/core/../../examples/distributed_mining.rs:
