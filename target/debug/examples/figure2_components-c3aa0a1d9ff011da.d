/root/repo/target/debug/examples/figure2_components-c3aa0a1d9ff011da.d: crates/core/../../examples/figure2_components.rs

/root/repo/target/debug/examples/figure2_components-c3aa0a1d9ff011da: crates/core/../../examples/figure2_components.rs

crates/core/../../examples/figure2_components.rs:
