/root/repo/target/debug/examples/relational_and_signal-d281b8ce7ef4089c.d: crates/core/../../examples/relational_and_signal.rs

/root/repo/target/debug/examples/relational_and_signal-d281b8ce7ef4089c: crates/core/../../examples/relational_and_signal.rs

crates/core/../../examples/relational_and_signal.rs:
