/root/repo/target/debug/examples/figure1_toolbox-e9f921b3fdce3c5a.d: crates/core/../../examples/figure1_toolbox.rs Cargo.toml

/root/repo/target/debug/examples/libfigure1_toolbox-e9f921b3fdce3c5a.rmeta: crates/core/../../examples/figure1_toolbox.rs Cargo.toml

crates/core/../../examples/figure1_toolbox.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
