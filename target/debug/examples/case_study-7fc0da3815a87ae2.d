/root/repo/target/debug/examples/case_study-7fc0da3815a87ae2.d: crates/core/../../examples/case_study.rs Cargo.toml

/root/repo/target/debug/examples/libcase_study-7fc0da3815a87ae2.rmeta: crates/core/../../examples/case_study.rs Cargo.toml

crates/core/../../examples/case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
