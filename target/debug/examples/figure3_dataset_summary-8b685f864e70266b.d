/root/repo/target/debug/examples/figure3_dataset_summary-8b685f864e70266b.d: crates/core/../../examples/figure3_dataset_summary.rs Cargo.toml

/root/repo/target/debug/examples/libfigure3_dataset_summary-8b685f864e70266b.rmeta: crates/core/../../examples/figure3_dataset_summary.rs Cargo.toml

crates/core/../../examples/figure3_dataset_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
