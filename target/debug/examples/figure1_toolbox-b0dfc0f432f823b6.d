/root/repo/target/debug/examples/figure1_toolbox-b0dfc0f432f823b6.d: crates/core/../../examples/figure1_toolbox.rs

/root/repo/target/debug/examples/figure1_toolbox-b0dfc0f432f823b6: crates/core/../../examples/figure1_toolbox.rs

crates/core/../../examples/figure1_toolbox.rs:
