/root/repo/target/debug/examples/relational_and_signal-c18f39ee7d6b4a7e.d: crates/core/../../examples/relational_and_signal.rs Cargo.toml

/root/repo/target/debug/examples/librelational_and_signal-c18f39ee7d6b4a7e.rmeta: crates/core/../../examples/relational_and_signal.rs Cargo.toml

crates/core/../../examples/relational_and_signal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
