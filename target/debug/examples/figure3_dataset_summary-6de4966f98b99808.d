/root/repo/target/debug/examples/figure3_dataset_summary-6de4966f98b99808.d: crates/core/../../examples/figure3_dataset_summary.rs

/root/repo/target/debug/examples/figure3_dataset_summary-6de4966f98b99808: crates/core/../../examples/figure3_dataset_summary.rs

crates/core/../../examples/figure3_dataset_summary.rs:
