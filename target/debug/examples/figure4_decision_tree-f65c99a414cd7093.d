/root/repo/target/debug/examples/figure4_decision_tree-f65c99a414cd7093.d: crates/core/../../examples/figure4_decision_tree.rs

/root/repo/target/debug/examples/figure4_decision_tree-f65c99a414cd7093: crates/core/../../examples/figure4_decision_tree.rs

crates/core/../../examples/figure4_decision_tree.rs:
