/root/repo/target/debug/examples/resilience-bd648e1b5c43bca2.d: crates/core/../../examples/resilience.rs Cargo.toml

/root/repo/target/debug/examples/libresilience-bd648e1b5c43bca2.rmeta: crates/core/../../examples/resilience.rs Cargo.toml

crates/core/../../examples/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
