/root/repo/target/debug/examples/distributed_mining-839ba39d81f46777.d: crates/core/../../examples/distributed_mining.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_mining-839ba39d81f46777.rmeta: crates/core/../../examples/distributed_mining.rs Cargo.toml

crates/core/../../examples/distributed_mining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
