/root/repo/target/debug/examples/clustering_and_rules-d79de30bd5280b4a.d: crates/core/../../examples/clustering_and_rules.rs

/root/repo/target/debug/examples/clustering_and_rules-d79de30bd5280b4a: crates/core/../../examples/clustering_and_rules.rs

crates/core/../../examples/clustering_and_rules.rs:
