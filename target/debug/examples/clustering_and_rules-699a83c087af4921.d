/root/repo/target/debug/examples/clustering_and_rules-699a83c087af4921.d: crates/core/../../examples/clustering_and_rules.rs Cargo.toml

/root/repo/target/debug/examples/libclustering_and_rules-699a83c087af4921.rmeta: crates/core/../../examples/clustering_and_rules.rs Cargo.toml

crates/core/../../examples/clustering_and_rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
