/root/repo/target/debug/deps/e1_summary-adc7d2a83e0d8b64.d: crates/bench/benches/e1_summary.rs Cargo.toml

/root/repo/target/debug/deps/libe1_summary-adc7d2a83e0d8b64.rmeta: crates/bench/benches/e1_summary.rs Cargo.toml

crates/bench/benches/e1_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
