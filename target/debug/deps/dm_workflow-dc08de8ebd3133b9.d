/root/repo/target/debug/deps/dm_workflow-dc08de8ebd3133b9.d: crates/dm-workflow/src/lib.rs crates/dm-workflow/src/engine.rs crates/dm-workflow/src/error.rs crates/dm-workflow/src/graph.rs crates/dm-workflow/src/group.rs crates/dm-workflow/src/iterate.rs crates/dm-workflow/src/patterns.rs crates/dm-workflow/src/toolbox.rs crates/dm-workflow/src/wsimport.rs crates/dm-workflow/src/xml.rs Cargo.toml

/root/repo/target/debug/deps/libdm_workflow-dc08de8ebd3133b9.rmeta: crates/dm-workflow/src/lib.rs crates/dm-workflow/src/engine.rs crates/dm-workflow/src/error.rs crates/dm-workflow/src/graph.rs crates/dm-workflow/src/group.rs crates/dm-workflow/src/iterate.rs crates/dm-workflow/src/patterns.rs crates/dm-workflow/src/toolbox.rs crates/dm-workflow/src/wsimport.rs crates/dm-workflow/src/xml.rs Cargo.toml

crates/dm-workflow/src/lib.rs:
crates/dm-workflow/src/engine.rs:
crates/dm-workflow/src/error.rs:
crates/dm-workflow/src/graph.rs:
crates/dm-workflow/src/group.rs:
crates/dm-workflow/src/iterate.rs:
crates/dm-workflow/src/patterns.rs:
crates/dm-workflow/src/toolbox.rs:
crates/dm-workflow/src/wsimport.rs:
crates/dm-workflow/src/xml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
