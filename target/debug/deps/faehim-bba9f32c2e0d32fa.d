/root/repo/target/debug/deps/faehim-bba9f32c2e0d32fa.d: crates/core/src/lib.rs crates/core/src/casestudy.rs crates/core/src/signal_tools.rs crates/core/src/toolkit.rs crates/core/src/tools.rs

/root/repo/target/debug/deps/libfaehim-bba9f32c2e0d32fa.rlib: crates/core/src/lib.rs crates/core/src/casestudy.rs crates/core/src/signal_tools.rs crates/core/src/toolkit.rs crates/core/src/tools.rs

/root/repo/target/debug/deps/libfaehim-bba9f32c2e0d32fa.rmeta: crates/core/src/lib.rs crates/core/src/casestudy.rs crates/core/src/signal_tools.rs crates/core/src/toolkit.rs crates/core/src/tools.rs

crates/core/src/lib.rs:
crates/core/src/casestudy.rs:
crates/core/src/signal_tools.rs:
crates/core/src/toolkit.rs:
crates/core/src/tools.rs:
