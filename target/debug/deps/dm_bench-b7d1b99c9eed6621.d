/root/repo/target/debug/deps/dm_bench-b7d1b99c9eed6621.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdm_bench-b7d1b99c9eed6621.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
