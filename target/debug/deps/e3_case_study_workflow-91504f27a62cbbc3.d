/root/repo/target/debug/deps/e3_case_study_workflow-91504f27a62cbbc3.d: crates/bench/benches/e3_case_study_workflow.rs Cargo.toml

/root/repo/target/debug/deps/libe3_case_study_workflow-91504f27a62cbbc3.rmeta: crates/bench/benches/e3_case_study_workflow.rs Cargo.toml

crates/bench/benches/e3_case_study_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
