/root/repo/target/debug/deps/dm_bench-c3a971c1bac80222.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdm_bench-c3a971c1bac80222.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
