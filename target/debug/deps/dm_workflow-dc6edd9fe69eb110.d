/root/repo/target/debug/deps/dm_workflow-dc6edd9fe69eb110.d: crates/dm-workflow/src/lib.rs crates/dm-workflow/src/engine.rs crates/dm-workflow/src/error.rs crates/dm-workflow/src/graph.rs crates/dm-workflow/src/group.rs crates/dm-workflow/src/iterate.rs crates/dm-workflow/src/patterns.rs crates/dm-workflow/src/toolbox.rs crates/dm-workflow/src/wsimport.rs crates/dm-workflow/src/xml.rs

/root/repo/target/debug/deps/dm_workflow-dc6edd9fe69eb110: crates/dm-workflow/src/lib.rs crates/dm-workflow/src/engine.rs crates/dm-workflow/src/error.rs crates/dm-workflow/src/graph.rs crates/dm-workflow/src/group.rs crates/dm-workflow/src/iterate.rs crates/dm-workflow/src/patterns.rs crates/dm-workflow/src/toolbox.rs crates/dm-workflow/src/wsimport.rs crates/dm-workflow/src/xml.rs

crates/dm-workflow/src/lib.rs:
crates/dm-workflow/src/engine.rs:
crates/dm-workflow/src/error.rs:
crates/dm-workflow/src/graph.rs:
crates/dm-workflow/src/group.rs:
crates/dm-workflow/src/iterate.rs:
crates/dm-workflow/src/patterns.rs:
crates/dm-workflow/src/toolbox.rs:
crates/dm-workflow/src/wsimport.rs:
crates/dm-workflow/src/xml.rs:
