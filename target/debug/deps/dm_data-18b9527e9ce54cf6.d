/root/repo/target/debug/deps/dm_data-18b9527e9ce54cf6.d: crates/dm-data/src/lib.rs crates/dm-data/src/arff.rs crates/dm-data/src/attribute.rs crates/dm-data/src/convert.rs crates/dm-data/src/corpus/mod.rs crates/dm-data/src/corpus/breast_cancer.rs crates/dm-data/src/corpus/synthetic.rs crates/dm-data/src/corpus/weather.rs crates/dm-data/src/csv.rs crates/dm-data/src/dataset.rs crates/dm-data/src/error.rs crates/dm-data/src/filters.rs crates/dm-data/src/split.rs crates/dm-data/src/stream.rs crates/dm-data/src/summary.rs

/root/repo/target/debug/deps/libdm_data-18b9527e9ce54cf6.rlib: crates/dm-data/src/lib.rs crates/dm-data/src/arff.rs crates/dm-data/src/attribute.rs crates/dm-data/src/convert.rs crates/dm-data/src/corpus/mod.rs crates/dm-data/src/corpus/breast_cancer.rs crates/dm-data/src/corpus/synthetic.rs crates/dm-data/src/corpus/weather.rs crates/dm-data/src/csv.rs crates/dm-data/src/dataset.rs crates/dm-data/src/error.rs crates/dm-data/src/filters.rs crates/dm-data/src/split.rs crates/dm-data/src/stream.rs crates/dm-data/src/summary.rs

/root/repo/target/debug/deps/libdm_data-18b9527e9ce54cf6.rmeta: crates/dm-data/src/lib.rs crates/dm-data/src/arff.rs crates/dm-data/src/attribute.rs crates/dm-data/src/convert.rs crates/dm-data/src/corpus/mod.rs crates/dm-data/src/corpus/breast_cancer.rs crates/dm-data/src/corpus/synthetic.rs crates/dm-data/src/corpus/weather.rs crates/dm-data/src/csv.rs crates/dm-data/src/dataset.rs crates/dm-data/src/error.rs crates/dm-data/src/filters.rs crates/dm-data/src/split.rs crates/dm-data/src/stream.rs crates/dm-data/src/summary.rs

crates/dm-data/src/lib.rs:
crates/dm-data/src/arff.rs:
crates/dm-data/src/attribute.rs:
crates/dm-data/src/convert.rs:
crates/dm-data/src/corpus/mod.rs:
crates/dm-data/src/corpus/breast_cancer.rs:
crates/dm-data/src/corpus/synthetic.rs:
crates/dm-data/src/corpus/weather.rs:
crates/dm-data/src/csv.rs:
crates/dm-data/src/dataset.rs:
crates/dm-data/src/error.rs:
crates/dm-data/src/filters.rs:
crates/dm-data/src/split.rs:
crates/dm-data/src/stream.rs:
crates/dm-data/src/summary.rs:
