/root/repo/target/debug/deps/dm_workflow-bf6e4d9697980f12.d: crates/dm-workflow/src/lib.rs crates/dm-workflow/src/engine.rs crates/dm-workflow/src/error.rs crates/dm-workflow/src/graph.rs crates/dm-workflow/src/group.rs crates/dm-workflow/src/iterate.rs crates/dm-workflow/src/patterns.rs crates/dm-workflow/src/toolbox.rs crates/dm-workflow/src/wsimport.rs crates/dm-workflow/src/xml.rs

/root/repo/target/debug/deps/libdm_workflow-bf6e4d9697980f12.rlib: crates/dm-workflow/src/lib.rs crates/dm-workflow/src/engine.rs crates/dm-workflow/src/error.rs crates/dm-workflow/src/graph.rs crates/dm-workflow/src/group.rs crates/dm-workflow/src/iterate.rs crates/dm-workflow/src/patterns.rs crates/dm-workflow/src/toolbox.rs crates/dm-workflow/src/wsimport.rs crates/dm-workflow/src/xml.rs

/root/repo/target/debug/deps/libdm_workflow-bf6e4d9697980f12.rmeta: crates/dm-workflow/src/lib.rs crates/dm-workflow/src/engine.rs crates/dm-workflow/src/error.rs crates/dm-workflow/src/graph.rs crates/dm-workflow/src/group.rs crates/dm-workflow/src/iterate.rs crates/dm-workflow/src/patterns.rs crates/dm-workflow/src/toolbox.rs crates/dm-workflow/src/wsimport.rs crates/dm-workflow/src/xml.rs

crates/dm-workflow/src/lib.rs:
crates/dm-workflow/src/engine.rs:
crates/dm-workflow/src/error.rs:
crates/dm-workflow/src/graph.rs:
crates/dm-workflow/src/group.rs:
crates/dm-workflow/src/iterate.rs:
crates/dm-workflow/src/patterns.rs:
crates/dm-workflow/src/toolbox.rs:
crates/dm-workflow/src/wsimport.rs:
crates/dm-workflow/src/xml.rs:
