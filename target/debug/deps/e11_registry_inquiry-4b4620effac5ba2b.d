/root/repo/target/debug/deps/e11_registry_inquiry-4b4620effac5ba2b.d: crates/bench/benches/e11_registry_inquiry.rs Cargo.toml

/root/repo/target/debug/deps/libe11_registry_inquiry-4b4620effac5ba2b.rmeta: crates/bench/benches/e11_registry_inquiry.rs Cargo.toml

crates/bench/benches/e11_registry_inquiry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
