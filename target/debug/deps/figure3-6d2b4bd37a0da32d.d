/root/repo/target/debug/deps/figure3-6d2b4bd37a0da32d.d: tests/tests/figure3.rs Cargo.toml

/root/repo/target/debug/deps/libfigure3-6d2b4bd37a0da32d.rmeta: tests/tests/figure3.rs Cargo.toml

tests/tests/figure3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
