/root/repo/target/debug/deps/lifecycle_e4-e0d9f9741028a752.d: tests/tests/lifecycle_e4.rs

/root/repo/target/debug/deps/lifecycle_e4-e0d9f9741028a752: tests/tests/lifecycle_e4.rs

tests/tests/lifecycle_e4.rs:
