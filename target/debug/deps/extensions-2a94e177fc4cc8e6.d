/root/repo/target/debug/deps/extensions-2a94e177fc4cc8e6.d: tests/tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-2a94e177fc4cc8e6.rmeta: tests/tests/extensions.rs Cargo.toml

tests/tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
