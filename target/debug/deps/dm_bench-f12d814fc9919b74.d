/root/repo/target/debug/deps/dm_bench-f12d814fc9919b74.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dm_bench-f12d814fc9919b74: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
