/root/repo/target/debug/deps/dm_viz-f0bcc742031b56a8.d: crates/dm-viz/src/lib.rs crates/dm-viz/src/ascii.rs crates/dm-viz/src/canvas.rs crates/dm-viz/src/plot.rs crates/dm-viz/src/svg.rs crates/dm-viz/src/tree.rs

/root/repo/target/debug/deps/dm_viz-f0bcc742031b56a8: crates/dm-viz/src/lib.rs crates/dm-viz/src/ascii.rs crates/dm-viz/src/canvas.rs crates/dm-viz/src/plot.rs crates/dm-viz/src/svg.rs crates/dm-viz/src/tree.rs

crates/dm-viz/src/lib.rs:
crates/dm-viz/src/ascii.rs:
crates/dm-viz/src/canvas.rs:
crates/dm-viz/src/plot.rs:
crates/dm-viz/src/svg.rs:
crates/dm-viz/src/tree.rs:
