/root/repo/target/debug/deps/faehim-777583715dee64e3.d: crates/core/src/lib.rs crates/core/src/casestudy.rs crates/core/src/signal_tools.rs crates/core/src/toolkit.rs crates/core/src/tools.rs Cargo.toml

/root/repo/target/debug/deps/libfaehim-777583715dee64e3.rmeta: crates/core/src/lib.rs crates/core/src/casestudy.rs crates/core/src/signal_tools.rs crates/core/src/toolkit.rs crates/core/src/tools.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/casestudy.rs:
crates/core/src/signal_tools.rs:
crates/core/src/toolkit.rs:
crates/core/src/tools.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
