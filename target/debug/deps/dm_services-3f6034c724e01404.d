/root/repo/target/debug/deps/dm_services-3f6034c724e01404.d: crates/dm-services/src/lib.rs crates/dm-services/src/assoc_ws.rs crates/dm-services/src/attrsel_ws.rs crates/dm-services/src/classifier_ws.rs crates/dm-services/src/client.rs crates/dm-services/src/clusterer_ws.rs crates/dm-services/src/convert_ws.rs crates/dm-services/src/dataaccess_ws.rs crates/dm-services/src/deploy.rs crates/dm-services/src/j48_ws.rs crates/dm-services/src/plot_ws.rs crates/dm-services/src/preprocess_ws.rs crates/dm-services/src/session_ws.rs crates/dm-services/src/support.rs

/root/repo/target/debug/deps/libdm_services-3f6034c724e01404.rlib: crates/dm-services/src/lib.rs crates/dm-services/src/assoc_ws.rs crates/dm-services/src/attrsel_ws.rs crates/dm-services/src/classifier_ws.rs crates/dm-services/src/client.rs crates/dm-services/src/clusterer_ws.rs crates/dm-services/src/convert_ws.rs crates/dm-services/src/dataaccess_ws.rs crates/dm-services/src/deploy.rs crates/dm-services/src/j48_ws.rs crates/dm-services/src/plot_ws.rs crates/dm-services/src/preprocess_ws.rs crates/dm-services/src/session_ws.rs crates/dm-services/src/support.rs

/root/repo/target/debug/deps/libdm_services-3f6034c724e01404.rmeta: crates/dm-services/src/lib.rs crates/dm-services/src/assoc_ws.rs crates/dm-services/src/attrsel_ws.rs crates/dm-services/src/classifier_ws.rs crates/dm-services/src/client.rs crates/dm-services/src/clusterer_ws.rs crates/dm-services/src/convert_ws.rs crates/dm-services/src/dataaccess_ws.rs crates/dm-services/src/deploy.rs crates/dm-services/src/j48_ws.rs crates/dm-services/src/plot_ws.rs crates/dm-services/src/preprocess_ws.rs crates/dm-services/src/session_ws.rs crates/dm-services/src/support.rs

crates/dm-services/src/lib.rs:
crates/dm-services/src/assoc_ws.rs:
crates/dm-services/src/attrsel_ws.rs:
crates/dm-services/src/classifier_ws.rs:
crates/dm-services/src/client.rs:
crates/dm-services/src/clusterer_ws.rs:
crates/dm-services/src/convert_ws.rs:
crates/dm-services/src/dataaccess_ws.rs:
crates/dm-services/src/deploy.rs:
crates/dm-services/src/j48_ws.rs:
crates/dm-services/src/plot_ws.rs:
crates/dm-services/src/preprocess_ws.rs:
crates/dm-services/src/session_ws.rs:
crates/dm-services/src/support.rs:
