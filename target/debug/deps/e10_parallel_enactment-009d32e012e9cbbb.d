/root/repo/target/debug/deps/e10_parallel_enactment-009d32e012e9cbbb.d: crates/bench/benches/e10_parallel_enactment.rs Cargo.toml

/root/repo/target/debug/deps/libe10_parallel_enactment-009d32e012e9cbbb.rmeta: crates/bench/benches/e10_parallel_enactment.rs Cargo.toml

crates/bench/benches/e10_parallel_enactment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
