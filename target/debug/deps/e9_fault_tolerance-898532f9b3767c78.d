/root/repo/target/debug/deps/e9_fault_tolerance-898532f9b3767c78.d: crates/bench/benches/e9_fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libe9_fault_tolerance-898532f9b3767c78.rmeta: crates/bench/benches/e9_fault_tolerance.rs Cargo.toml

crates/bench/benches/e9_fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
