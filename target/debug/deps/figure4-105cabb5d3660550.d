/root/repo/target/debug/deps/figure4-105cabb5d3660550.d: tests/tests/figure4.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4-105cabb5d3660550.rmeta: tests/tests/figure4.rs Cargo.toml

tests/tests/figure4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
