/root/repo/target/debug/deps/dm_services-9a914c8c3fc55365.d: crates/dm-services/src/lib.rs crates/dm-services/src/assoc_ws.rs crates/dm-services/src/attrsel_ws.rs crates/dm-services/src/classifier_ws.rs crates/dm-services/src/client.rs crates/dm-services/src/clusterer_ws.rs crates/dm-services/src/convert_ws.rs crates/dm-services/src/dataaccess_ws.rs crates/dm-services/src/deploy.rs crates/dm-services/src/j48_ws.rs crates/dm-services/src/plot_ws.rs crates/dm-services/src/preprocess_ws.rs crates/dm-services/src/session_ws.rs crates/dm-services/src/support.rs Cargo.toml

/root/repo/target/debug/deps/libdm_services-9a914c8c3fc55365.rmeta: crates/dm-services/src/lib.rs crates/dm-services/src/assoc_ws.rs crates/dm-services/src/attrsel_ws.rs crates/dm-services/src/classifier_ws.rs crates/dm-services/src/client.rs crates/dm-services/src/clusterer_ws.rs crates/dm-services/src/convert_ws.rs crates/dm-services/src/dataaccess_ws.rs crates/dm-services/src/deploy.rs crates/dm-services/src/j48_ws.rs crates/dm-services/src/plot_ws.rs crates/dm-services/src/preprocess_ws.rs crates/dm-services/src/session_ws.rs crates/dm-services/src/support.rs Cargo.toml

crates/dm-services/src/lib.rs:
crates/dm-services/src/assoc_ws.rs:
crates/dm-services/src/attrsel_ws.rs:
crates/dm-services/src/classifier_ws.rs:
crates/dm-services/src/client.rs:
crates/dm-services/src/clusterer_ws.rs:
crates/dm-services/src/convert_ws.rs:
crates/dm-services/src/dataaccess_ws.rs:
crates/dm-services/src/deploy.rs:
crates/dm-services/src/j48_ws.rs:
crates/dm-services/src/plot_ws.rs:
crates/dm-services/src/preprocess_ws.rs:
crates/dm-services/src/session_ws.rs:
crates/dm-services/src/support.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
