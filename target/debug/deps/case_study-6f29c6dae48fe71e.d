/root/repo/target/debug/deps/case_study-6f29c6dae48fe71e.d: tests/tests/case_study.rs

/root/repo/target/debug/deps/case_study-6f29c6dae48fe71e: tests/tests/case_study.rs

tests/tests/case_study.rs:
