/root/repo/target/debug/deps/probe_tmp-89c690d5d981cb02.d: tests/tests/probe_tmp.rs

/root/repo/target/debug/deps/probe_tmp-89c690d5d981cb02: tests/tests/probe_tmp.rs

tests/tests/probe_tmp.rs:
