/root/repo/target/debug/deps/patterns-a30e2cdc85e7d27f.d: tests/tests/patterns.rs Cargo.toml

/root/repo/target/debug/deps/libpatterns-a30e2cdc85e7d27f.rmeta: tests/tests/patterns.rs Cargo.toml

tests/tests/patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
