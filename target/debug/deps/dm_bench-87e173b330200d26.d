/root/repo/target/debug/deps/dm_bench-87e173b330200d26.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdm_bench-87e173b330200d26.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdm_bench-87e173b330200d26.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
