/root/repo/target/debug/deps/algorithm_inventory-8a6bb32f9cc752c8.d: tests/tests/algorithm_inventory.rs Cargo.toml

/root/repo/target/debug/deps/libalgorithm_inventory-8a6bb32f9cc752c8.rmeta: tests/tests/algorithm_inventory.rs Cargo.toml

tests/tests/algorithm_inventory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
