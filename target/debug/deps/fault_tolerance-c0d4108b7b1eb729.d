/root/repo/target/debug/deps/fault_tolerance-c0d4108b7b1eb729.d: tests/tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-c0d4108b7b1eb729: tests/tests/fault_tolerance.rs

tests/tests/fault_tolerance.rs:
