/root/repo/target/debug/deps/dm_services-25ce6cc9a0f14778.d: crates/dm-services/src/lib.rs crates/dm-services/src/assoc_ws.rs crates/dm-services/src/attrsel_ws.rs crates/dm-services/src/classifier_ws.rs crates/dm-services/src/client.rs crates/dm-services/src/clusterer_ws.rs crates/dm-services/src/convert_ws.rs crates/dm-services/src/dataaccess_ws.rs crates/dm-services/src/deploy.rs crates/dm-services/src/j48_ws.rs crates/dm-services/src/plot_ws.rs crates/dm-services/src/preprocess_ws.rs crates/dm-services/src/session_ws.rs crates/dm-services/src/support.rs

/root/repo/target/debug/deps/dm_services-25ce6cc9a0f14778: crates/dm-services/src/lib.rs crates/dm-services/src/assoc_ws.rs crates/dm-services/src/attrsel_ws.rs crates/dm-services/src/classifier_ws.rs crates/dm-services/src/client.rs crates/dm-services/src/clusterer_ws.rs crates/dm-services/src/convert_ws.rs crates/dm-services/src/dataaccess_ws.rs crates/dm-services/src/deploy.rs crates/dm-services/src/j48_ws.rs crates/dm-services/src/plot_ws.rs crates/dm-services/src/preprocess_ws.rs crates/dm-services/src/session_ws.rs crates/dm-services/src/support.rs

crates/dm-services/src/lib.rs:
crates/dm-services/src/assoc_ws.rs:
crates/dm-services/src/attrsel_ws.rs:
crates/dm-services/src/classifier_ws.rs:
crates/dm-services/src/client.rs:
crates/dm-services/src/clusterer_ws.rs:
crates/dm-services/src/convert_ws.rs:
crates/dm-services/src/dataaccess_ws.rs:
crates/dm-services/src/deploy.rs:
crates/dm-services/src/j48_ws.rs:
crates/dm-services/src/plot_ws.rs:
crates/dm-services/src/preprocess_ws.rs:
crates/dm-services/src/session_ws.rs:
crates/dm-services/src/support.rs:
