/root/repo/target/debug/deps/faehim-c75a2c6e4f70d6ed.d: crates/core/src/lib.rs crates/core/src/casestudy.rs crates/core/src/signal_tools.rs crates/core/src/toolkit.rs crates/core/src/tools.rs Cargo.toml

/root/repo/target/debug/deps/libfaehim-c75a2c6e4f70d6ed.rmeta: crates/core/src/lib.rs crates/core/src/casestudy.rs crates/core/src/signal_tools.rs crates/core/src/toolkit.rs crates/core/src/tools.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/casestudy.rs:
crates/core/src/signal_tools.rs:
crates/core/src/toolkit.rs:
crates/core/src/tools.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
