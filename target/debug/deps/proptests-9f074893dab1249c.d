/root/repo/target/debug/deps/proptests-9f074893dab1249c.d: tests/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9f074893dab1249c: tests/tests/proptests.rs

tests/tests/proptests.rs:
