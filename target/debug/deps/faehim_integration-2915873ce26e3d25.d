/root/repo/target/debug/deps/faehim_integration-2915873ce26e3d25.d: tests/src/lib.rs

/root/repo/target/debug/deps/faehim_integration-2915873ce26e3d25: tests/src/lib.rs

tests/src/lib.rs:
