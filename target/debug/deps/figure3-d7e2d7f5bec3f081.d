/root/repo/target/debug/deps/figure3-d7e2d7f5bec3f081.d: tests/tests/figure3.rs

/root/repo/target/debug/deps/figure3-d7e2d7f5bec3f081: tests/tests/figure3.rs

tests/tests/figure3.rs:
