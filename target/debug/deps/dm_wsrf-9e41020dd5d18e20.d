/root/repo/target/debug/deps/dm_wsrf-9e41020dd5d18e20.d: crates/dm-wsrf/src/lib.rs crates/dm-wsrf/src/container.rs crates/dm-wsrf/src/error.rs crates/dm-wsrf/src/lifecycle.rs crates/dm-wsrf/src/monitor.rs crates/dm-wsrf/src/registry.rs crates/dm-wsrf/src/resilience.rs crates/dm-wsrf/src/session.rs crates/dm-wsrf/src/soap.rs crates/dm-wsrf/src/transport.rs crates/dm-wsrf/src/wsdl.rs crates/dm-wsrf/src/xml.rs

/root/repo/target/debug/deps/dm_wsrf-9e41020dd5d18e20: crates/dm-wsrf/src/lib.rs crates/dm-wsrf/src/container.rs crates/dm-wsrf/src/error.rs crates/dm-wsrf/src/lifecycle.rs crates/dm-wsrf/src/monitor.rs crates/dm-wsrf/src/registry.rs crates/dm-wsrf/src/resilience.rs crates/dm-wsrf/src/session.rs crates/dm-wsrf/src/soap.rs crates/dm-wsrf/src/transport.rs crates/dm-wsrf/src/wsdl.rs crates/dm-wsrf/src/xml.rs

crates/dm-wsrf/src/lib.rs:
crates/dm-wsrf/src/container.rs:
crates/dm-wsrf/src/error.rs:
crates/dm-wsrf/src/lifecycle.rs:
crates/dm-wsrf/src/monitor.rs:
crates/dm-wsrf/src/registry.rs:
crates/dm-wsrf/src/resilience.rs:
crates/dm-wsrf/src/session.rs:
crates/dm-wsrf/src/soap.rs:
crates/dm-wsrf/src/transport.rs:
crates/dm-wsrf/src/wsdl.rs:
crates/dm-wsrf/src/xml.rs:
