/root/repo/target/debug/deps/e8_stream_vs_migrate-30a0691cdd39ae93.d: crates/bench/benches/e8_stream_vs_migrate.rs Cargo.toml

/root/repo/target/debug/deps/libe8_stream_vs_migrate-30a0691cdd39ae93.rmeta: crates/bench/benches/e8_stream_vs_migrate.rs Cargo.toml

crates/bench/benches/e8_stream_vs_migrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
