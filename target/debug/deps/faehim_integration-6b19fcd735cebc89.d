/root/repo/target/debug/deps/faehim_integration-6b19fcd735cebc89.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfaehim_integration-6b19fcd735cebc89.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
