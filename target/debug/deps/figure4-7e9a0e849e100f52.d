/root/repo/target/debug/deps/figure4-7e9a0e849e100f52.d: tests/tests/figure4.rs

/root/repo/target/debug/deps/figure4-7e9a0e849e100f52: tests/tests/figure4.rs

tests/tests/figure4.rs:
