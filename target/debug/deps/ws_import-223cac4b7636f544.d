/root/repo/target/debug/deps/ws_import-223cac4b7636f544.d: tests/tests/ws_import.rs Cargo.toml

/root/repo/target/debug/deps/libws_import-223cac4b7636f544.rmeta: tests/tests/ws_import.rs Cargo.toml

tests/tests/ws_import.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
