/root/repo/target/debug/deps/extensions-bed1d22d568f924a.d: tests/tests/extensions.rs

/root/repo/target/debug/deps/extensions-bed1d22d568f924a: tests/tests/extensions.rs

tests/tests/extensions.rs:
