/root/repo/target/debug/deps/dm_viz-5994fa548c6acc43.d: crates/dm-viz/src/lib.rs crates/dm-viz/src/ascii.rs crates/dm-viz/src/canvas.rs crates/dm-viz/src/plot.rs crates/dm-viz/src/svg.rs crates/dm-viz/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libdm_viz-5994fa548c6acc43.rmeta: crates/dm-viz/src/lib.rs crates/dm-viz/src/ascii.rs crates/dm-viz/src/canvas.rs crates/dm-viz/src/plot.rs crates/dm-viz/src/svg.rs crates/dm-viz/src/tree.rs Cargo.toml

crates/dm-viz/src/lib.rs:
crates/dm-viz/src/ascii.rs:
crates/dm-viz/src/canvas.rs:
crates/dm-viz/src/plot.rs:
crates/dm-viz/src/svg.rs:
crates/dm-viz/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
