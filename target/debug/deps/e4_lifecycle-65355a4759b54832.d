/root/repo/target/debug/deps/e4_lifecycle-65355a4759b54832.d: crates/bench/benches/e4_lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/libe4_lifecycle-65355a4759b54832.rmeta: crates/bench/benches/e4_lifecycle.rs Cargo.toml

crates/bench/benches/e4_lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
