/root/repo/target/debug/deps/algorithm_inventory-bd2e692f2e81f3f6.d: tests/tests/algorithm_inventory.rs

/root/repo/target/debug/deps/algorithm_inventory-bd2e692f2e81f3f6: tests/tests/algorithm_inventory.rs

tests/tests/algorithm_inventory.rs:
