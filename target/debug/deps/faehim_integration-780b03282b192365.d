/root/repo/target/debug/deps/faehim_integration-780b03282b192365.d: tests/src/lib.rs

/root/repo/target/debug/deps/libfaehim_integration-780b03282b192365.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libfaehim_integration-780b03282b192365.rmeta: tests/src/lib.rs

tests/src/lib.rs:
