/root/repo/target/debug/deps/toolkit_inventory-6d299503ce65fb63.d: tests/tests/toolkit_inventory.rs

/root/repo/target/debug/deps/toolkit_inventory-6d299503ce65fb63: tests/tests/toolkit_inventory.rs

tests/tests/toolkit_inventory.rs:
