/root/repo/target/debug/deps/dm_data-43506fcbf6a4de64.d: crates/dm-data/src/lib.rs crates/dm-data/src/arff.rs crates/dm-data/src/attribute.rs crates/dm-data/src/convert.rs crates/dm-data/src/corpus/mod.rs crates/dm-data/src/corpus/breast_cancer.rs crates/dm-data/src/corpus/synthetic.rs crates/dm-data/src/corpus/weather.rs crates/dm-data/src/csv.rs crates/dm-data/src/dataset.rs crates/dm-data/src/error.rs crates/dm-data/src/filters.rs crates/dm-data/src/split.rs crates/dm-data/src/stream.rs crates/dm-data/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libdm_data-43506fcbf6a4de64.rmeta: crates/dm-data/src/lib.rs crates/dm-data/src/arff.rs crates/dm-data/src/attribute.rs crates/dm-data/src/convert.rs crates/dm-data/src/corpus/mod.rs crates/dm-data/src/corpus/breast_cancer.rs crates/dm-data/src/corpus/synthetic.rs crates/dm-data/src/corpus/weather.rs crates/dm-data/src/csv.rs crates/dm-data/src/dataset.rs crates/dm-data/src/error.rs crates/dm-data/src/filters.rs crates/dm-data/src/split.rs crates/dm-data/src/stream.rs crates/dm-data/src/summary.rs Cargo.toml

crates/dm-data/src/lib.rs:
crates/dm-data/src/arff.rs:
crates/dm-data/src/attribute.rs:
crates/dm-data/src/convert.rs:
crates/dm-data/src/corpus/mod.rs:
crates/dm-data/src/corpus/breast_cancer.rs:
crates/dm-data/src/corpus/synthetic.rs:
crates/dm-data/src/corpus/weather.rs:
crates/dm-data/src/csv.rs:
crates/dm-data/src/dataset.rs:
crates/dm-data/src/error.rs:
crates/dm-data/src/filters.rs:
crates/dm-data/src/split.rs:
crates/dm-data/src/stream.rs:
crates/dm-data/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
