/root/repo/target/debug/deps/dm_viz-b68ec4d33e21b98c.d: crates/dm-viz/src/lib.rs crates/dm-viz/src/ascii.rs crates/dm-viz/src/canvas.rs crates/dm-viz/src/plot.rs crates/dm-viz/src/svg.rs crates/dm-viz/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libdm_viz-b68ec4d33e21b98c.rmeta: crates/dm-viz/src/lib.rs crates/dm-viz/src/ascii.rs crates/dm-viz/src/canvas.rs crates/dm-viz/src/plot.rs crates/dm-viz/src/svg.rs crates/dm-viz/src/tree.rs Cargo.toml

crates/dm-viz/src/lib.rs:
crates/dm-viz/src/ascii.rs:
crates/dm-viz/src/canvas.rs:
crates/dm-viz/src/plot.rs:
crates/dm-viz/src/svg.rs:
crates/dm-viz/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
