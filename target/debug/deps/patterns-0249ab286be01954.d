/root/repo/target/debug/deps/patterns-0249ab286be01954.d: tests/tests/patterns.rs

/root/repo/target/debug/deps/patterns-0249ab286be01954: tests/tests/patterns.rs

tests/tests/patterns.rs:
