/root/repo/target/debug/deps/dm_wsrf-b11acee4806f878f.d: crates/dm-wsrf/src/lib.rs crates/dm-wsrf/src/container.rs crates/dm-wsrf/src/error.rs crates/dm-wsrf/src/lifecycle.rs crates/dm-wsrf/src/monitor.rs crates/dm-wsrf/src/registry.rs crates/dm-wsrf/src/resilience.rs crates/dm-wsrf/src/session.rs crates/dm-wsrf/src/soap.rs crates/dm-wsrf/src/transport.rs crates/dm-wsrf/src/wsdl.rs crates/dm-wsrf/src/xml.rs Cargo.toml

/root/repo/target/debug/deps/libdm_wsrf-b11acee4806f878f.rmeta: crates/dm-wsrf/src/lib.rs crates/dm-wsrf/src/container.rs crates/dm-wsrf/src/error.rs crates/dm-wsrf/src/lifecycle.rs crates/dm-wsrf/src/monitor.rs crates/dm-wsrf/src/registry.rs crates/dm-wsrf/src/resilience.rs crates/dm-wsrf/src/session.rs crates/dm-wsrf/src/soap.rs crates/dm-wsrf/src/transport.rs crates/dm-wsrf/src/wsdl.rs crates/dm-wsrf/src/xml.rs Cargo.toml

crates/dm-wsrf/src/lib.rs:
crates/dm-wsrf/src/container.rs:
crates/dm-wsrf/src/error.rs:
crates/dm-wsrf/src/lifecycle.rs:
crates/dm-wsrf/src/monitor.rs:
crates/dm-wsrf/src/registry.rs:
crates/dm-wsrf/src/resilience.rs:
crates/dm-wsrf/src/session.rs:
crates/dm-wsrf/src/soap.rs:
crates/dm-wsrf/src/transport.rs:
crates/dm-wsrf/src/wsdl.rs:
crates/dm-wsrf/src/xml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
