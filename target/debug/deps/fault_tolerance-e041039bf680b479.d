/root/repo/target/debug/deps/fault_tolerance-e041039bf680b479.d: tests/tests/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerance-e041039bf680b479.rmeta: tests/tests/fault_tolerance.rs Cargo.toml

tests/tests/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
