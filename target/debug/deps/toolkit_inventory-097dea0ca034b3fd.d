/root/repo/target/debug/deps/toolkit_inventory-097dea0ca034b3fd.d: tests/tests/toolkit_inventory.rs Cargo.toml

/root/repo/target/debug/deps/libtoolkit_inventory-097dea0ca034b3fd.rmeta: tests/tests/toolkit_inventory.rs Cargo.toml

tests/tests/toolkit_inventory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
