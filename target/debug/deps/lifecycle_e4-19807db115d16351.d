/root/repo/target/debug/deps/lifecycle_e4-19807db115d16351.d: tests/tests/lifecycle_e4.rs Cargo.toml

/root/repo/target/debug/deps/liblifecycle_e4-19807db115d16351.rmeta: tests/tests/lifecycle_e4.rs Cargo.toml

tests/tests/lifecycle_e4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
