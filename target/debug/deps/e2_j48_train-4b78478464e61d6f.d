/root/repo/target/debug/deps/e2_j48_train-4b78478464e61d6f.d: crates/bench/benches/e2_j48_train.rs Cargo.toml

/root/repo/target/debug/deps/libe2_j48_train-4b78478464e61d6f.rmeta: crates/bench/benches/e2_j48_train.rs Cargo.toml

crates/bench/benches/e2_j48_train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
