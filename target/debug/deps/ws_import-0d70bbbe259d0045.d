/root/repo/target/debug/deps/ws_import-0d70bbbe259d0045.d: tests/tests/ws_import.rs

/root/repo/target/debug/deps/ws_import-0d70bbbe259d0045: tests/tests/ws_import.rs

tests/tests/ws_import.rs:
