/root/repo/target/debug/deps/proptests-7258b0a49d1bab96.d: tests/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-7258b0a49d1bab96.rmeta: tests/tests/proptests.rs Cargo.toml

tests/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
