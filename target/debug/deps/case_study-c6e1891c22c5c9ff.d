/root/repo/target/debug/deps/case_study-c6e1891c22c5c9ff.d: tests/tests/case_study.rs Cargo.toml

/root/repo/target/debug/deps/libcase_study-c6e1891c22c5c9ff.rmeta: tests/tests/case_study.rs Cargo.toml

tests/tests/case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
