/root/repo/target/debug/deps/dm_viz-7cb3b891e353d271.d: crates/dm-viz/src/lib.rs crates/dm-viz/src/ascii.rs crates/dm-viz/src/canvas.rs crates/dm-viz/src/plot.rs crates/dm-viz/src/svg.rs crates/dm-viz/src/tree.rs

/root/repo/target/debug/deps/libdm_viz-7cb3b891e353d271.rlib: crates/dm-viz/src/lib.rs crates/dm-viz/src/ascii.rs crates/dm-viz/src/canvas.rs crates/dm-viz/src/plot.rs crates/dm-viz/src/svg.rs crates/dm-viz/src/tree.rs

/root/repo/target/debug/deps/libdm_viz-7cb3b891e353d271.rmeta: crates/dm-viz/src/lib.rs crates/dm-viz/src/ascii.rs crates/dm-viz/src/canvas.rs crates/dm-viz/src/plot.rs crates/dm-viz/src/svg.rs crates/dm-viz/src/tree.rs

crates/dm-viz/src/lib.rs:
crates/dm-viz/src/ascii.rs:
crates/dm-viz/src/canvas.rs:
crates/dm-viz/src/plot.rs:
crates/dm-viz/src/svg.rs:
crates/dm-viz/src/tree.rs:
