/root/repo/target/debug/deps/faehim-56929ebc49ec26ac.d: crates/core/src/lib.rs crates/core/src/casestudy.rs crates/core/src/signal_tools.rs crates/core/src/toolkit.rs crates/core/src/tools.rs

/root/repo/target/debug/deps/faehim-56929ebc49ec26ac: crates/core/src/lib.rs crates/core/src/casestudy.rs crates/core/src/signal_tools.rs crates/core/src/toolkit.rs crates/core/src/tools.rs

crates/core/src/lib.rs:
crates/core/src/casestudy.rs:
crates/core/src/signal_tools.rs:
crates/core/src/toolkit.rs:
crates/core/src/tools.rs:
