/root/repo/target/release/deps/faehim_integration-cc7a4d76a02790b1.d: tests/src/lib.rs

/root/repo/target/release/deps/libfaehim_integration-cc7a4d76a02790b1.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libfaehim_integration-cc7a4d76a02790b1.rmeta: tests/src/lib.rs

tests/src/lib.rs:
