/root/repo/target/release/deps/faehim-e53b45239b49606b.d: crates/core/src/lib.rs crates/core/src/casestudy.rs crates/core/src/signal_tools.rs crates/core/src/toolkit.rs crates/core/src/tools.rs

/root/repo/target/release/deps/libfaehim-e53b45239b49606b.rlib: crates/core/src/lib.rs crates/core/src/casestudy.rs crates/core/src/signal_tools.rs crates/core/src/toolkit.rs crates/core/src/tools.rs

/root/repo/target/release/deps/libfaehim-e53b45239b49606b.rmeta: crates/core/src/lib.rs crates/core/src/casestudy.rs crates/core/src/signal_tools.rs crates/core/src/toolkit.rs crates/core/src/tools.rs

crates/core/src/lib.rs:
crates/core/src/casestudy.rs:
crates/core/src/signal_tools.rs:
crates/core/src/toolkit.rs:
crates/core/src/tools.rs:
