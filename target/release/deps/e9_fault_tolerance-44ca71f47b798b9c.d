/root/repo/target/release/deps/e9_fault_tolerance-44ca71f47b798b9c.d: crates/bench/benches/e9_fault_tolerance.rs

/root/repo/target/release/deps/e9_fault_tolerance-44ca71f47b798b9c: crates/bench/benches/e9_fault_tolerance.rs

crates/bench/benches/e9_fault_tolerance.rs:
