/root/repo/target/release/deps/dm_viz-37d1fe973e393d56.d: crates/dm-viz/src/lib.rs crates/dm-viz/src/ascii.rs crates/dm-viz/src/canvas.rs crates/dm-viz/src/plot.rs crates/dm-viz/src/svg.rs crates/dm-viz/src/tree.rs

/root/repo/target/release/deps/libdm_viz-37d1fe973e393d56.rlib: crates/dm-viz/src/lib.rs crates/dm-viz/src/ascii.rs crates/dm-viz/src/canvas.rs crates/dm-viz/src/plot.rs crates/dm-viz/src/svg.rs crates/dm-viz/src/tree.rs

/root/repo/target/release/deps/libdm_viz-37d1fe973e393d56.rmeta: crates/dm-viz/src/lib.rs crates/dm-viz/src/ascii.rs crates/dm-viz/src/canvas.rs crates/dm-viz/src/plot.rs crates/dm-viz/src/svg.rs crates/dm-viz/src/tree.rs

crates/dm-viz/src/lib.rs:
crates/dm-viz/src/ascii.rs:
crates/dm-viz/src/canvas.rs:
crates/dm-viz/src/plot.rs:
crates/dm-viz/src/svg.rs:
crates/dm-viz/src/tree.rs:
