/root/repo/target/release/deps/proptest-843231b6dbf6da96.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-843231b6dbf6da96.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-843231b6dbf6da96.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
