/root/repo/target/release/deps/dm_bench-795f3e2dd299e65e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdm_bench-795f3e2dd299e65e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdm_bench-795f3e2dd299e65e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
