/root/repo/target/release/deps/dm_workflow-13d81e4b7d4a716e.d: crates/dm-workflow/src/lib.rs crates/dm-workflow/src/engine.rs crates/dm-workflow/src/error.rs crates/dm-workflow/src/graph.rs crates/dm-workflow/src/group.rs crates/dm-workflow/src/iterate.rs crates/dm-workflow/src/patterns.rs crates/dm-workflow/src/toolbox.rs crates/dm-workflow/src/wsimport.rs crates/dm-workflow/src/xml.rs

/root/repo/target/release/deps/libdm_workflow-13d81e4b7d4a716e.rlib: crates/dm-workflow/src/lib.rs crates/dm-workflow/src/engine.rs crates/dm-workflow/src/error.rs crates/dm-workflow/src/graph.rs crates/dm-workflow/src/group.rs crates/dm-workflow/src/iterate.rs crates/dm-workflow/src/patterns.rs crates/dm-workflow/src/toolbox.rs crates/dm-workflow/src/wsimport.rs crates/dm-workflow/src/xml.rs

/root/repo/target/release/deps/libdm_workflow-13d81e4b7d4a716e.rmeta: crates/dm-workflow/src/lib.rs crates/dm-workflow/src/engine.rs crates/dm-workflow/src/error.rs crates/dm-workflow/src/graph.rs crates/dm-workflow/src/group.rs crates/dm-workflow/src/iterate.rs crates/dm-workflow/src/patterns.rs crates/dm-workflow/src/toolbox.rs crates/dm-workflow/src/wsimport.rs crates/dm-workflow/src/xml.rs

crates/dm-workflow/src/lib.rs:
crates/dm-workflow/src/engine.rs:
crates/dm-workflow/src/error.rs:
crates/dm-workflow/src/graph.rs:
crates/dm-workflow/src/group.rs:
crates/dm-workflow/src/iterate.rs:
crates/dm-workflow/src/patterns.rs:
crates/dm-workflow/src/toolbox.rs:
crates/dm-workflow/src/wsimport.rs:
crates/dm-workflow/src/xml.rs:
