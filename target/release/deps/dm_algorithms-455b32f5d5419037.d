/root/repo/target/release/deps/dm_algorithms-455b32f5d5419037.d: crates/dm-algorithms/src/lib.rs crates/dm-algorithms/src/associations/mod.rs crates/dm-algorithms/src/associations/apriori.rs crates/dm-algorithms/src/associations/fpgrowth.rs crates/dm-algorithms/src/attrsel/mod.rs crates/dm-algorithms/src/attrsel/evaluators.rs crates/dm-algorithms/src/attrsel/search.rs crates/dm-algorithms/src/attrsel/subset.rs crates/dm-algorithms/src/classifiers/mod.rs crates/dm-algorithms/src/classifiers/adaboost.rs crates/dm-algorithms/src/classifiers/bagging.rs crates/dm-algorithms/src/classifiers/decision_stump.rs crates/dm-algorithms/src/classifiers/ibk.rs crates/dm-algorithms/src/classifiers/j48.rs crates/dm-algorithms/src/classifiers/logistic.rs crates/dm-algorithms/src/classifiers/mlp.rs crates/dm-algorithms/src/classifiers/naive_bayes.rs crates/dm-algorithms/src/classifiers/one_r.rs crates/dm-algorithms/src/classifiers/prism.rs crates/dm-algorithms/src/classifiers/random_forest.rs crates/dm-algorithms/src/classifiers/random_tree.rs crates/dm-algorithms/src/classifiers/zero_r.rs crates/dm-algorithms/src/cluster/mod.rs crates/dm-algorithms/src/cluster/cobweb.rs crates/dm-algorithms/src/cluster/em.rs crates/dm-algorithms/src/cluster/farthest_first.rs crates/dm-algorithms/src/cluster/hierarchical.rs crates/dm-algorithms/src/cluster/kmeans.rs crates/dm-algorithms/src/error.rs crates/dm-algorithms/src/eval/mod.rs crates/dm-algorithms/src/options.rs crates/dm-algorithms/src/registry.rs crates/dm-algorithms/src/signal.rs crates/dm-algorithms/src/state.rs crates/dm-algorithms/src/tree.rs

/root/repo/target/release/deps/libdm_algorithms-455b32f5d5419037.rlib: crates/dm-algorithms/src/lib.rs crates/dm-algorithms/src/associations/mod.rs crates/dm-algorithms/src/associations/apriori.rs crates/dm-algorithms/src/associations/fpgrowth.rs crates/dm-algorithms/src/attrsel/mod.rs crates/dm-algorithms/src/attrsel/evaluators.rs crates/dm-algorithms/src/attrsel/search.rs crates/dm-algorithms/src/attrsel/subset.rs crates/dm-algorithms/src/classifiers/mod.rs crates/dm-algorithms/src/classifiers/adaboost.rs crates/dm-algorithms/src/classifiers/bagging.rs crates/dm-algorithms/src/classifiers/decision_stump.rs crates/dm-algorithms/src/classifiers/ibk.rs crates/dm-algorithms/src/classifiers/j48.rs crates/dm-algorithms/src/classifiers/logistic.rs crates/dm-algorithms/src/classifiers/mlp.rs crates/dm-algorithms/src/classifiers/naive_bayes.rs crates/dm-algorithms/src/classifiers/one_r.rs crates/dm-algorithms/src/classifiers/prism.rs crates/dm-algorithms/src/classifiers/random_forest.rs crates/dm-algorithms/src/classifiers/random_tree.rs crates/dm-algorithms/src/classifiers/zero_r.rs crates/dm-algorithms/src/cluster/mod.rs crates/dm-algorithms/src/cluster/cobweb.rs crates/dm-algorithms/src/cluster/em.rs crates/dm-algorithms/src/cluster/farthest_first.rs crates/dm-algorithms/src/cluster/hierarchical.rs crates/dm-algorithms/src/cluster/kmeans.rs crates/dm-algorithms/src/error.rs crates/dm-algorithms/src/eval/mod.rs crates/dm-algorithms/src/options.rs crates/dm-algorithms/src/registry.rs crates/dm-algorithms/src/signal.rs crates/dm-algorithms/src/state.rs crates/dm-algorithms/src/tree.rs

/root/repo/target/release/deps/libdm_algorithms-455b32f5d5419037.rmeta: crates/dm-algorithms/src/lib.rs crates/dm-algorithms/src/associations/mod.rs crates/dm-algorithms/src/associations/apriori.rs crates/dm-algorithms/src/associations/fpgrowth.rs crates/dm-algorithms/src/attrsel/mod.rs crates/dm-algorithms/src/attrsel/evaluators.rs crates/dm-algorithms/src/attrsel/search.rs crates/dm-algorithms/src/attrsel/subset.rs crates/dm-algorithms/src/classifiers/mod.rs crates/dm-algorithms/src/classifiers/adaboost.rs crates/dm-algorithms/src/classifiers/bagging.rs crates/dm-algorithms/src/classifiers/decision_stump.rs crates/dm-algorithms/src/classifiers/ibk.rs crates/dm-algorithms/src/classifiers/j48.rs crates/dm-algorithms/src/classifiers/logistic.rs crates/dm-algorithms/src/classifiers/mlp.rs crates/dm-algorithms/src/classifiers/naive_bayes.rs crates/dm-algorithms/src/classifiers/one_r.rs crates/dm-algorithms/src/classifiers/prism.rs crates/dm-algorithms/src/classifiers/random_forest.rs crates/dm-algorithms/src/classifiers/random_tree.rs crates/dm-algorithms/src/classifiers/zero_r.rs crates/dm-algorithms/src/cluster/mod.rs crates/dm-algorithms/src/cluster/cobweb.rs crates/dm-algorithms/src/cluster/em.rs crates/dm-algorithms/src/cluster/farthest_first.rs crates/dm-algorithms/src/cluster/hierarchical.rs crates/dm-algorithms/src/cluster/kmeans.rs crates/dm-algorithms/src/error.rs crates/dm-algorithms/src/eval/mod.rs crates/dm-algorithms/src/options.rs crates/dm-algorithms/src/registry.rs crates/dm-algorithms/src/signal.rs crates/dm-algorithms/src/state.rs crates/dm-algorithms/src/tree.rs

crates/dm-algorithms/src/lib.rs:
crates/dm-algorithms/src/associations/mod.rs:
crates/dm-algorithms/src/associations/apriori.rs:
crates/dm-algorithms/src/associations/fpgrowth.rs:
crates/dm-algorithms/src/attrsel/mod.rs:
crates/dm-algorithms/src/attrsel/evaluators.rs:
crates/dm-algorithms/src/attrsel/search.rs:
crates/dm-algorithms/src/attrsel/subset.rs:
crates/dm-algorithms/src/classifiers/mod.rs:
crates/dm-algorithms/src/classifiers/adaboost.rs:
crates/dm-algorithms/src/classifiers/bagging.rs:
crates/dm-algorithms/src/classifiers/decision_stump.rs:
crates/dm-algorithms/src/classifiers/ibk.rs:
crates/dm-algorithms/src/classifiers/j48.rs:
crates/dm-algorithms/src/classifiers/logistic.rs:
crates/dm-algorithms/src/classifiers/mlp.rs:
crates/dm-algorithms/src/classifiers/naive_bayes.rs:
crates/dm-algorithms/src/classifiers/one_r.rs:
crates/dm-algorithms/src/classifiers/prism.rs:
crates/dm-algorithms/src/classifiers/random_forest.rs:
crates/dm-algorithms/src/classifiers/random_tree.rs:
crates/dm-algorithms/src/classifiers/zero_r.rs:
crates/dm-algorithms/src/cluster/mod.rs:
crates/dm-algorithms/src/cluster/cobweb.rs:
crates/dm-algorithms/src/cluster/em.rs:
crates/dm-algorithms/src/cluster/farthest_first.rs:
crates/dm-algorithms/src/cluster/hierarchical.rs:
crates/dm-algorithms/src/cluster/kmeans.rs:
crates/dm-algorithms/src/error.rs:
crates/dm-algorithms/src/eval/mod.rs:
crates/dm-algorithms/src/options.rs:
crates/dm-algorithms/src/registry.rs:
crates/dm-algorithms/src/signal.rs:
crates/dm-algorithms/src/state.rs:
crates/dm-algorithms/src/tree.rs:
