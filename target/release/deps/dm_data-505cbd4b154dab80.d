/root/repo/target/release/deps/dm_data-505cbd4b154dab80.d: crates/dm-data/src/lib.rs crates/dm-data/src/arff.rs crates/dm-data/src/attribute.rs crates/dm-data/src/convert.rs crates/dm-data/src/corpus/mod.rs crates/dm-data/src/corpus/breast_cancer.rs crates/dm-data/src/corpus/synthetic.rs crates/dm-data/src/corpus/weather.rs crates/dm-data/src/csv.rs crates/dm-data/src/dataset.rs crates/dm-data/src/error.rs crates/dm-data/src/filters.rs crates/dm-data/src/split.rs crates/dm-data/src/stream.rs crates/dm-data/src/summary.rs

/root/repo/target/release/deps/libdm_data-505cbd4b154dab80.rlib: crates/dm-data/src/lib.rs crates/dm-data/src/arff.rs crates/dm-data/src/attribute.rs crates/dm-data/src/convert.rs crates/dm-data/src/corpus/mod.rs crates/dm-data/src/corpus/breast_cancer.rs crates/dm-data/src/corpus/synthetic.rs crates/dm-data/src/corpus/weather.rs crates/dm-data/src/csv.rs crates/dm-data/src/dataset.rs crates/dm-data/src/error.rs crates/dm-data/src/filters.rs crates/dm-data/src/split.rs crates/dm-data/src/stream.rs crates/dm-data/src/summary.rs

/root/repo/target/release/deps/libdm_data-505cbd4b154dab80.rmeta: crates/dm-data/src/lib.rs crates/dm-data/src/arff.rs crates/dm-data/src/attribute.rs crates/dm-data/src/convert.rs crates/dm-data/src/corpus/mod.rs crates/dm-data/src/corpus/breast_cancer.rs crates/dm-data/src/corpus/synthetic.rs crates/dm-data/src/corpus/weather.rs crates/dm-data/src/csv.rs crates/dm-data/src/dataset.rs crates/dm-data/src/error.rs crates/dm-data/src/filters.rs crates/dm-data/src/split.rs crates/dm-data/src/stream.rs crates/dm-data/src/summary.rs

crates/dm-data/src/lib.rs:
crates/dm-data/src/arff.rs:
crates/dm-data/src/attribute.rs:
crates/dm-data/src/convert.rs:
crates/dm-data/src/corpus/mod.rs:
crates/dm-data/src/corpus/breast_cancer.rs:
crates/dm-data/src/corpus/synthetic.rs:
crates/dm-data/src/corpus/weather.rs:
crates/dm-data/src/csv.rs:
crates/dm-data/src/dataset.rs:
crates/dm-data/src/error.rs:
crates/dm-data/src/filters.rs:
crates/dm-data/src/split.rs:
crates/dm-data/src/stream.rs:
crates/dm-data/src/summary.rs:
