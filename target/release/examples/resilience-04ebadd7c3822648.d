/root/repo/target/release/examples/resilience-04ebadd7c3822648.d: crates/core/../../examples/resilience.rs

/root/repo/target/release/examples/resilience-04ebadd7c3822648: crates/core/../../examples/resilience.rs

crates/core/../../examples/resilience.rs:
