/root/repo/target/release/examples/distributed_mining-7375028e0d90d6c0.d: crates/core/../../examples/distributed_mining.rs

/root/repo/target/release/examples/distributed_mining-7375028e0d90d6c0: crates/core/../../examples/distributed_mining.rs

crates/core/../../examples/distributed_mining.rs:
