/root/repo/target/release/examples/_probe-f1efa955d23ab60e.d: crates/core/../../examples/_probe.rs

/root/repo/target/release/examples/_probe-f1efa955d23ab60e: crates/core/../../examples/_probe.rs

crates/core/../../examples/_probe.rs:
