//! The attribute-selection Web Service, including the genetic search
//! service of §5.3: "The attribute selection process can also be
//! automated through the use of a genetic search service."

use crate::support::{algo_fault, dataset_with_class, text_arg};
use dm_algorithms::attrsel::{approaches, run_approach};
use dm_wsrf::container::{ServiceFault, WebService};
use dm_wsrf::soap::SoapValue;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};

/// The attribute-selection Web Service.
#[derive(Debug, Default)]
pub struct AttributeSelectionService;

impl AttributeSelectionService {
    /// Create the service.
    pub fn new() -> AttributeSelectionService {
        AttributeSelectionService
    }
}

impl WebService for AttributeSelectionService {
    fn name(&self) -> &str {
        "AttributeSelection"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("AttributeSelection", "")
            .operation(
                Operation::new("getApproaches", vec![], Part::new("approaches", "list"))
                    .doc("the 20 supported evaluator+search pairings"),
            )
            .operation(
                Operation::new(
                    "select",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("approach", "string"),
                        Part::new("attribute", "string"),
                    ],
                    Part::new("selected", "list"),
                )
                .doc("run an approach; returns the selected attribute names"),
            )
            .operation(
                Operation::new(
                    "geneticSearch",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("attribute", "string"),
                    ],
                    Part::new("selected", "list"),
                )
                .doc("the genetic search service used by the case study (§5.3)"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        let select = |approach: &str| -> Result<SoapValue, ServiceFault> {
            let arff = text_arg(args, "dataset")?;
            let attribute = text_arg(args, "attribute")?;
            let ds = dataset_with_class(arff, attribute)?;
            let picked = run_approach(approach, &ds, 7).map_err(algo_fault)?;
            Ok(SoapValue::List(
                picked
                    .iter()
                    .map(|&a| {
                        SoapValue::Text(
                            ds.attribute(a)
                                .map(|at| at.name().to_string())
                                .unwrap_or_else(|_| format!("#{a}")),
                        )
                    })
                    .collect(),
            ))
        };
        match operation {
            "getApproaches" => Ok(SoapValue::List(
                approaches()
                    .into_iter()
                    .map(|a| SoapValue::Text(a.name))
                    .collect(),
            )),
            "select" => {
                let approach = text_arg(args, "approach")?.to_string();
                select(&approach)
            }
            "geneticSearch" => select("CfsSubset+GeneticSearch"),
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_data::corpus::breast_cancer_arff;

    fn base_args() -> Vec<(String, SoapValue)> {
        vec![
            ("dataset".to_string(), SoapValue::Text(breast_cancer_arff())),
            ("attribute".to_string(), SoapValue::Text("Class".into())),
        ]
    }

    #[test]
    fn twenty_approaches_listed() {
        let s = AttributeSelectionService::new();
        let v = s.invoke("getApproaches", &[]).unwrap();
        assert_eq!(v.as_list().unwrap().len(), 20);
    }

    #[test]
    fn info_gain_ranker_orders_attributes() {
        let s = AttributeSelectionService::new();
        let mut args = base_args();
        args.push((
            "approach".to_string(),
            SoapValue::Text("InfoGain+Ranker".into()),
        ));
        let v = s.invoke("select", &args).unwrap();
        let names: Vec<&str> = v
            .as_list()
            .unwrap()
            .iter()
            .map(|x| x.as_text().unwrap())
            .collect();
        assert_eq!(names.len(), 9);
        // The strong attributes must rank above `breast`.
        let pos = |n: &str| names.iter().position(|&x| x == n).unwrap();
        assert!(pos("deg-malig") < pos("breast"));
    }

    #[test]
    fn genetic_search_selects_subset() {
        let s = AttributeSelectionService::new();
        let v = s.invoke("geneticSearch", &base_args()).unwrap();
        let names = v.as_list().unwrap();
        assert!(!names.is_empty());
        assert!(names.len() < 10);
    }

    #[test]
    fn unknown_approach_faults() {
        let s = AttributeSelectionService::new();
        let mut args = base_args();
        args.push(("approach".to_string(), SoapValue::Text("Bogus+Nope".into())));
        assert_eq!(s.invoke("select", &args).unwrap_err().code, "Client");
    }
}
