//! Shared helpers for the service implementations: argument accessors
//! and error-to-fault conversion.

use dm_algorithms::AlgoError;
use dm_data::DataError;
use dm_wsrf::container::ServiceFault;
use dm_wsrf::soap::SoapValue;
use dm_wsrf::trace::{child_span, SpanKind};

/// Run a service handler under a `Handler` span chained to the
/// container's current dispatch span (a no-op when no tracer is
/// current). Faults mark the span as errored.
pub fn traced_handler<T>(
    service: &str,
    operation: &str,
    body: impl FnOnce() -> Result<T, ServiceFault>,
) -> Result<T, ServiceFault> {
    let mut span = child_span(format!("{service}.{operation}"), SpanKind::Handler);
    let _current = span.as_ref().map(|s| s.make_current());
    let result = body();
    if let (Some(s), Err(fault)) = (span.as_mut(), &result) {
        s.set_error(format!("[{}] {}", fault.code, fault.message));
    }
    result
}

/// Convert a data error into a SOAP fault (caller errors are `Client`).
pub fn data_fault(e: DataError) -> ServiceFault {
    match e {
        DataError::Parse { .. }
        | DataError::UnknownLabel { .. }
        | DataError::UnknownAttribute(_)
        | DataError::Arity { .. }
        | DataError::InvalidParameter(_)
        | DataError::NoClass
        | DataError::Empty => ServiceFault::client(e.to_string()),
        _ => ServiceFault::server(e.to_string()),
    }
}

/// Convert an algorithm error into a SOAP fault.
pub fn algo_fault(e: AlgoError) -> ServiceFault {
    match e {
        AlgoError::Data(d) => data_fault(d),
        AlgoError::UnknownAlgorithm(_)
        | AlgoError::BadOption { .. }
        | AlgoError::Unsupported(_) => ServiceFault::client(e.to_string()),
        AlgoError::NotTrained | AlgoError::BadState(_) => ServiceFault::server(e.to_string()),
    }
}

/// Fetch a required string argument.
pub fn text_arg<'a>(args: &'a [(String, SoapValue)], name: &str) -> Result<&'a str, ServiceFault> {
    match args.iter().find(|(n, _)| n == name) {
        Some((_, SoapValue::Text(s))) => Ok(s),
        Some((_, other)) => Err(ServiceFault::client(format!(
            "argument {name:?} must be a string, got {}",
            other.type_name()
        ))),
        None => Err(ServiceFault::client(format!("missing argument {name:?}"))),
    }
}

/// Fetch an optional string argument (missing → `None`).
pub fn opt_text_arg<'a>(
    args: &'a [(String, SoapValue)],
    name: &str,
) -> Result<Option<&'a str>, ServiceFault> {
    match args.iter().find(|(n, _)| n == name) {
        None => Ok(None),
        Some((_, SoapValue::Text(s))) => Ok(Some(s)),
        Some((_, SoapValue::Null)) => Ok(None),
        Some((_, other)) => Err(ServiceFault::client(format!(
            "argument {name:?} must be a string, got {}",
            other.type_name()
        ))),
    }
}

/// Fetch a required integer argument.
pub fn int_arg(args: &[(String, SoapValue)], name: &str) -> Result<i64, ServiceFault> {
    match args.iter().find(|(n, _)| n == name) {
        Some((_, SoapValue::Int(i))) => Ok(*i),
        Some((_, other)) => Err(ServiceFault::client(format!(
            "argument {name:?} must be a long, got {}",
            other.type_name()
        ))),
        None => Err(ServiceFault::client(format!("missing argument {name:?}"))),
    }
}

/// Convert an algorithm-layer tree model into the visualisation layer's
/// [`dm_viz::TreeSpec`].
pub fn tree_to_spec(tree: &dm_algorithms::tree::TreeModel) -> dm_viz::TreeSpec {
    let mut spec = dm_viz::TreeSpec::new();
    for node in tree.nodes() {
        spec.add(node.label.clone(), node.edge.clone(), node.is_leaf);
    }
    for (i, node) in tree.nodes().iter().enumerate() {
        for &c in &node.children {
            spec.connect(i, c);
        }
    }
    spec
}

/// Render a tree model straight to SVG.
pub fn tree_to_svg(tree: &dm_algorithms::tree::TreeModel) -> String {
    tree_to_spec(tree).to_svg()
}

/// Parse an ARFF dataset argument and set its class by attribute name.
pub fn dataset_with_class(
    arff: &str,
    class_attribute: &str,
) -> Result<dm_data::Dataset, ServiceFault> {
    let mut ds = dm_data::arff::parse_arff(arff).map_err(data_fault)?;
    ds.set_class_by_name(class_attribute).map_err(data_fault)?;
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_arg_access() {
        let args = vec![("a".to_string(), SoapValue::Text("x".into()))];
        assert_eq!(text_arg(&args, "a").unwrap(), "x");
        assert!(text_arg(&args, "b").is_err());
        let bad = vec![("a".to_string(), SoapValue::Int(1))];
        assert!(text_arg(&bad, "a").is_err());
    }

    #[test]
    fn opt_text_arg_access() {
        let args = vec![("a".to_string(), SoapValue::Null)];
        assert_eq!(opt_text_arg(&args, "a").unwrap(), None);
        assert_eq!(opt_text_arg(&args, "b").unwrap(), None);
    }

    #[test]
    fn fault_codes() {
        assert_eq!(data_fault(DataError::Empty).code, "Client");
        assert_eq!(algo_fault(AlgoError::NotTrained).code, "Server");
        assert_eq!(
            algo_fault(AlgoError::UnknownAlgorithm("X".into())).code,
            "Client"
        );
    }

    #[test]
    fn dataset_with_class_parses() {
        let arff = "@relation t\n@attribute a {x,y}\n@attribute c {p,n}\n@data\nx,p\n";
        let ds = dataset_with_class(arff, "c").unwrap();
        assert_eq!(ds.class_index(), Some(1));
        assert!(dataset_with_class(arff, "nope").is_err());
        assert!(dataset_with_class("garbage", "c").is_err());
    }
}
