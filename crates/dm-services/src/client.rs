//! Typed client stubs: what Triana's generated per-operation tools do —
//! marshal arguments into SOAP calls over the (simulated) network and
//! unmarshal the results. Every client can optionally route through a
//! [`ResilientCaller`] so its calls get deadlines, backoff retries, and
//! circuit-breaker accounting.

use dm_wsrf::dataplane::CacheStats;
use dm_wsrf::error::Result;
use dm_wsrf::resilience::ResilientCaller;
use dm_wsrf::soap::SoapValue;
use dm_wsrf::trace::{current, SpanKind};
use dm_wsrf::transport::Network;
use std::sync::Arc;

fn text(v: SoapValue) -> Result<String> {
    Ok(v.as_text()?.to_string())
}

fn text_list(v: SoapValue) -> Result<Vec<String>> {
    v.as_list()?
        .iter()
        .map(|x| Ok(x.as_text()?.to_string()))
        .collect()
}

/// Index into a decoded response list, turning a too-short reply into a
/// typed `Malformed` error instead of an index panic. Every client that
/// unpacks a positional list goes through here: a truncated or
/// malformed response from a (simulated) wire must surface as a
/// `WsError`, never take the client process down.
fn list_item<'v>(list: &'v [SoapValue], index: usize, what: &str) -> Result<&'v SoapValue> {
    list.get(index).ok_or_else(|| {
        dm_wsrf::error::WsError::Malformed(format!(
            "{what}: expected at least {} items, got {}",
            index + 1,
            list.len()
        ))
    })
}

/// Floor for `retry_after_nanos=` back-pressure hints: 1 µs. A missing
/// or unparsable hint must still back off a real amount of virtual
/// time, not hot-spin the retry loop at 1 ns a lap.
const MIN_RETRY_NANOS: u64 = 1_000;

/// Extract the `retry_after_nanos=<n>` hint from a shed-fault message.
/// Only the leading digit run after the marker is parsed, so messages
/// that append diagnostics after the number (e.g. `retry_after_nanos=
/// 250000 (window 2)`) still yield 250000 rather than failing the parse
/// and collapsing to a 1 ns spin. Unparsable hints clamp to
/// [`MIN_RETRY_NANOS`].
fn retry_hint_nanos(message: &str) -> u64 {
    let tail = message.rsplit("retry_after_nanos=").next().unwrap_or("");
    let digits = tail
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..digits].parse().unwrap_or(0).max(MIN_RETRY_NANOS)
}

/// The transport handle shared by the typed clients: a target host and
/// either the bare network or a resilient caller over it.
#[derive(Clone)]
pub struct ClientChannel {
    network: Arc<Network>,
    host: String,
    resilience: Option<ResilientCaller>,
}

impl ClientChannel {
    /// A plain channel to `host` on `network`.
    pub fn new(network: Arc<Network>, host: &str) -> ClientChannel {
        ClientChannel {
            network,
            host: host.to_string(),
            resilience: None,
        }
    }

    /// Route every invocation through `caller` (deadline, retries with
    /// backoff on the virtual clock, circuit breakers).
    pub fn with_resilience(mut self, caller: ResilientCaller) -> ClientChannel {
        self.resilience = Some(caller);
        self
    }

    /// The target host.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Invoke `operation` on `service` at the channel's host.
    pub fn invoke(
        &self,
        service: &str,
        operation: &str,
        args: Vec<(String, SoapValue)>,
    ) -> Result<SoapValue> {
        // Open a SOAP-call span chained under the caller's current span
        // when one exists (e.g. a workflow task), or as a new root
        // trace for direct client calls. Making it current lets the
        // transport legs below nest under it.
        let mut span = self.network.tracer().map(|tracer| {
            let parent = current().map(|(_, ctx)| ctx);
            let mut s =
                tracer.start_span(format!("{service}.{operation}"), SpanKind::SoapCall, parent);
            s.set_attr("host", &self.host);
            s
        });
        let _current = span.as_ref().map(|s| s.make_current());
        let result = match &self.resilience {
            Some(caller) => caller.invoke(&self.host, service, operation, args),
            None => self.network.invoke(&self.host, service, operation, args),
        };
        if let (Some(s), Err(err)) = (span.as_mut(), &result) {
            s.set_error(err.to_string());
        }
        result
    }
}

/// Client for the general Classifier Web Service.
#[derive(Clone)]
pub struct ClassifierClient {
    channel: ClientChannel,
}

impl ClassifierClient {
    /// Point the client at `host` on `network`.
    pub fn new(network: Arc<Network>, host: &str) -> ClassifierClient {
        ClassifierClient {
            channel: ClientChannel::new(network, host),
        }
    }

    /// Route this client's calls through `caller` (deadlines, backoff
    /// retries, circuit breakers).
    pub fn with_resilience(mut self, caller: ResilientCaller) -> ClassifierClient {
        self.channel = self.channel.with_resilience(caller);
        self
    }

    /// `getClassifiers` — available classifier names.
    pub fn get_classifiers(&self) -> Result<Vec<String>> {
        text_list(
            self.channel
                .invoke("Classifier", "getClassifiers", vec![])?,
        )
    }

    /// `getOptions` — `(flag, name, description, default)` rows.
    pub fn get_options(&self, classifier: &str) -> Result<Vec<(String, String, String, String)>> {
        let v = self.channel.invoke(
            "Classifier",
            "getOptions",
            vec![("classifier".into(), SoapValue::Text(classifier.into()))],
        )?;
        v.as_list()?
            .iter()
            .map(|row| {
                let cells = row.as_list()?;
                Ok((
                    list_item(cells, 0, "getOptions row")?
                        .as_text()?
                        .to_string(),
                    list_item(cells, 1, "getOptions row")?
                        .as_text()?
                        .to_string(),
                    list_item(cells, 2, "getOptions row")?
                        .as_text()?
                        .to_string(),
                    list_item(cells, 3, "getOptions row")?
                        .as_text()?
                        .to_string(),
                ))
            })
            .collect()
    }

    /// `getCacheStats` — `(model, evaluation)` cache counters. Rows
    /// carry counts only, so `bytes` is always 0.
    pub fn get_cache_stats(&self) -> Result<(CacheStats, CacheStats)> {
        let v = self.channel.invoke("Classifier", "getCacheStats", vec![])?;
        let rows = v.as_list()?;
        let decode = |row: &SoapValue| -> Result<CacheStats> {
            let cells = row.as_list()?;
            Ok(CacheStats {
                lookups: list_item(cells, 0, "getCacheStats row")?.as_int()? as u64,
                hits: list_item(cells, 1, "getCacheStats row")?.as_int()? as u64,
                misses: list_item(cells, 2, "getCacheStats row")?.as_int()? as u64,
                insertions: list_item(cells, 3, "getCacheStats row")?.as_int()? as u64,
                evictions: list_item(cells, 4, "getCacheStats row")?.as_int()? as u64,
                entries: list_item(cells, 5, "getCacheStats row")?.as_int()? as usize,
                bytes: 0,
            })
        };
        Ok((
            decode(list_item(rows, 0, "getCacheStats")?)?,
            decode(list_item(rows, 1, "getCacheStats")?)?,
        ))
    }

    /// `classifyInstance` — the paper's four-input operation.
    pub fn classify_instance(
        &self,
        dataset_arff: &str,
        classifier: &str,
        options: &str,
        attribute: &str,
    ) -> Result<String> {
        text(self.channel.invoke(
            "Classifier",
            "classifyInstance",
            vec![
                ("dataset".into(), SoapValue::Text(dataset_arff.into())),
                ("classifier".into(), SoapValue::Text(classifier.into())),
                ("options".into(), SoapValue::Text(options.into())),
                ("attribute".into(), SoapValue::Text(attribute.into())),
            ],
        )?)
    }

    /// `classifyGraph` — SVG graph of a tree-shaped model.
    pub fn classify_graph(
        &self,
        dataset_arff: &str,
        classifier: &str,
        options: &str,
        attribute: &str,
    ) -> Result<String> {
        text(self.channel.invoke(
            "Classifier",
            "classifyGraph",
            vec![
                ("dataset".into(), SoapValue::Text(dataset_arff.into())),
                ("classifier".into(), SoapValue::Text(classifier.into())),
                ("options".into(), SoapValue::Text(options.into())),
                ("attribute".into(), SoapValue::Text(attribute.into())),
            ],
        )?)
    }

    /// `classifyInstances` — train (or reuse) the model and score a
    /// whole batch of instances in one envelope. `instances_arff` must
    /// share the training header; returns predicted class labels in row
    /// order. One SOAP round trip replaces N `classifyInstance` calls
    /// and the server scores the rows in parallel.
    pub fn classify_instances(
        &self,
        dataset_arff: &str,
        classifier: &str,
        options: &str,
        attribute: &str,
        instances_arff: &str,
    ) -> Result<Vec<String>> {
        text_list(self.channel.invoke(
            "Classifier",
            "classifyInstances",
            vec![
                ("dataset".into(), SoapValue::Text(dataset_arff.into())),
                ("classifier".into(), SoapValue::Text(classifier.into())),
                ("options".into(), SoapValue::Text(options.into())),
                ("attribute".into(), SoapValue::Text(attribute.into())),
                ("instances".into(), SoapValue::Text(instances_arff.into())),
            ],
        )?)
    }

    /// `crossValidate` — k-fold CV summary text.
    pub fn cross_validate(
        &self,
        dataset_arff: &str,
        classifier: &str,
        options: &str,
        attribute: &str,
        folds: usize,
    ) -> Result<String> {
        text(self.channel.invoke(
            "Classifier",
            "crossValidate",
            vec![
                ("dataset".into(), SoapValue::Text(dataset_arff.into())),
                ("classifier".into(), SoapValue::Text(classifier.into())),
                ("options".into(), SoapValue::Text(options.into())),
                ("attribute".into(), SoapValue::Text(attribute.into())),
                ("folds".into(), SoapValue::Int(folds as i64)),
            ],
        )?)
    }
}

/// Client for the dedicated J48 Web Service.
#[derive(Clone)]
pub struct J48Client {
    channel: ClientChannel,
}

impl J48Client {
    /// Point the client at `host` on `network`.
    pub fn new(network: Arc<Network>, host: &str) -> J48Client {
        J48Client {
            channel: ClientChannel::new(network, host),
        }
    }

    /// Route this client's calls through `caller` (deadlines, backoff
    /// retries, circuit breakers).
    pub fn with_resilience(mut self, caller: ResilientCaller) -> J48Client {
        self.channel = self.channel.with_resilience(caller);
        self
    }

    /// `classify` — returns the textual decision tree.
    pub fn classify(&self, dataset_arff: &str, attribute: &str, options: &str) -> Result<String> {
        text(self.channel.invoke(
            "J48",
            "classify",
            vec![
                ("dataset".into(), SoapValue::Text(dataset_arff.into())),
                ("attribute".into(), SoapValue::Text(attribute.into())),
                ("options".into(), SoapValue::Text(options.into())),
            ],
        )?)
    }

    /// `classifyGraph` — SVG tree.
    pub fn classify_graph(
        &self,
        dataset_arff: &str,
        attribute: &str,
        options: &str,
    ) -> Result<String> {
        text(self.channel.invoke(
            "J48",
            "classifyGraph",
            vec![
                ("dataset".into(), SoapValue::Text(dataset_arff.into())),
                ("attribute".into(), SoapValue::Text(attribute.into())),
                ("options".into(), SoapValue::Text(options.into())),
            ],
        )?)
    }

    /// `setLifecycle` — `"serialize-per-call"` or `"in-memory-harness"`.
    pub fn set_lifecycle(&self, policy: &str) -> Result<()> {
        self.channel.invoke(
            "J48",
            "setLifecycle",
            vec![("policy".into(), SoapValue::Text(policy.into()))],
        )?;
        Ok(())
    }

    /// `getLifecycleStats` — `(serialisations, deserialisations, hits)`.
    pub fn lifecycle_stats(&self) -> Result<(i64, i64, i64)> {
        let v = self.channel.invoke("J48", "getLifecycleStats", vec![])?;
        let list = v.as_list()?;
        Ok((
            list_item(list, 0, "getLifecycleStats")?.as_int()?,
            list_item(list, 1, "getLifecycleStats")?.as_int()?,
            list_item(list, 2, "getLifecycleStats")?.as_int()?,
        ))
    }
}

/// Client for the clustering services.
#[derive(Clone)]
pub struct ClustererClient {
    channel: ClientChannel,
}

impl ClustererClient {
    /// Point the client at `host` on `network`.
    pub fn new(network: Arc<Network>, host: &str) -> ClustererClient {
        ClustererClient {
            channel: ClientChannel::new(network, host),
        }
    }

    /// Route this client's calls through `caller` (deadlines, backoff
    /// retries, circuit breakers).
    pub fn with_resilience(mut self, caller: ResilientCaller) -> ClustererClient {
        self.channel = self.channel.with_resilience(caller);
        self
    }

    /// General service: available clusterer names.
    pub fn get_clusterers(&self) -> Result<Vec<String>> {
        text_list(self.channel.invoke("Clusterer", "getClusterers", vec![])?)
    }

    /// General service: build a named clusterer, returns the report.
    pub fn cluster(&self, dataset_arff: &str, clusterer: &str, options: &str) -> Result<String> {
        text(self.channel.invoke(
            "Clusterer",
            "cluster",
            vec![
                ("dataset".into(), SoapValue::Text(dataset_arff.into())),
                ("clusterer".into(), SoapValue::Text(clusterer.into())),
                ("options".into(), SoapValue::Text(options.into())),
            ],
        )?)
    }

    /// Dedicated Cobweb service: `getCobwebGraph` SVG.
    pub fn cobweb_graph(&self, dataset_arff: &str, options: &str) -> Result<String> {
        text(self.channel.invoke(
            "Cobweb",
            "getCobwebGraph",
            vec![
                ("dataset".into(), SoapValue::Text(dataset_arff.into())),
                ("options".into(), SoapValue::Text(options.into())),
            ],
        )?)
    }
}

/// Client for the data conversion and URL-reader services.
#[derive(Clone)]
pub struct ConvertClient {
    channel: ClientChannel,
}

impl ConvertClient {
    /// Point the client at `host` on `network`.
    pub fn new(network: Arc<Network>, host: &str) -> ConvertClient {
        ConvertClient {
            channel: ClientChannel::new(network, host),
        }
    }

    /// Route this client's calls through `caller` (deadlines, backoff
    /// retries, circuit breakers).
    pub fn with_resilience(mut self, caller: ResilientCaller) -> ConvertClient {
        self.channel = self.channel.with_resilience(caller);
        self
    }

    /// `csvToArff`.
    pub fn csv_to_arff(&self, csv: &str) -> Result<String> {
        text(self.channel.invoke(
            "DataConversion",
            "csvToArff",
            vec![("csv".into(), SoapValue::Text(csv.into()))],
        )?)
    }

    /// `summary` — the Figure-3 table.
    pub fn summary(&self, dataset: &str) -> Result<String> {
        text(self.channel.invoke(
            "DataConversion",
            "summary",
            vec![("dataset".into(), SoapValue::Text(dataset.into()))],
        )?)
    }

    /// `readArff` on the URL reader.
    pub fn read_arff(&self, url: &str) -> Result<String> {
        text(self.channel.invoke(
            "UrlReader",
            "readArff",
            vec![("url".into(), SoapValue::Text(url.into()))],
        )?)
    }
}

/// `sendChunk` acknowledgement: ingest progress at the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkAck {
    /// Total rows absorbed by the stream so far.
    pub rows_total: u64,
    /// Chunks admitted but not yet absorbed at the caller's clock.
    pub backlog_chunks: usize,
    /// Virtual time until the model has absorbed everything sent —
    /// the freshness lag E18 plots against window size.
    pub staleness: std::time::Duration,
}

/// Decode the `sendChunk` ack list, surfacing short or malformed acks
/// as typed errors (a truncated ack used to panic the client on
/// `ack[1]`).
fn decode_chunk_ack(v: &SoapValue) -> Result<ChunkAck> {
    let ack = v.as_list()?;
    Ok(ChunkAck {
        rows_total: list_item(ack, 0, "sendChunk ack")?.as_int()? as u64,
        backlog_chunks: list_item(ack, 1, "sendChunk ack")?.as_int()? as usize,
        staleness: std::time::Duration::from_nanos(
            list_item(ack, 2, "sendChunk ack")?.as_int()?.max(0) as u64,
        ),
    })
}

/// `streamStats` snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStatsSnapshot {
    /// Chunks absorbed (duplicates excluded).
    pub chunks: u64,
    /// Rows absorbed.
    pub rows: u64,
    /// In-flight chunks at the last timestamped call.
    pub backlog: usize,
    /// Sheds due to a full window.
    pub busy_rejections: u64,
    /// Most rows the service ever held resident at once.
    pub peak_resident_rows: u64,
}

/// Client for the streaming-ingest `DataStream` service: the producer
/// side of the E18 data plane. Chunks are timestamped with the
/// caller's virtual clock; when the service sheds with
/// `retry_after_nanos=…` the client sleeps that long on the virtual
/// clock and retries — co-operative back-pressure without threads.
#[derive(Clone)]
pub struct StreamClient {
    network: Arc<Network>,
    channel: ClientChannel,
}

impl StreamClient {
    /// Point the client at `host` on `network`.
    pub fn new(network: Arc<Network>, host: &str) -> StreamClient {
        StreamClient {
            channel: ClientChannel::new(Arc::clone(&network), host),
            network,
        }
    }

    /// Route this client's calls through `caller` (deadlines, backoff
    /// retries, circuit breakers).
    pub fn with_resilience(mut self, caller: ResilientCaller) -> StreamClient {
        self.channel = self.channel.with_resilience(caller);
        self
    }

    /// `openStream` — returns the stream id.
    pub fn open_stream(
        &self,
        header: &dm_data::stream::StreamHeader,
        learner: &str,
        options: &str,
        window: u64,
        row_cost: std::time::Duration,
    ) -> Result<String> {
        text(self.channel.invoke(
            "DataStream",
            "openStream",
            vec![
                ("header".into(), SoapValue::Bytes(header.to_bytes())),
                ("learner".into(), SoapValue::Text(learner.into())),
                ("options".into(), SoapValue::Text(options.into())),
                ("window".into(), SoapValue::Int(window as i64)),
                (
                    "rowNanos".into(),
                    SoapValue::Int(row_cost.as_nanos() as i64),
                ),
            ],
        )?)
    }

    /// `sendChunk` — push one columnar batch, waiting out back-pressure
    /// on the virtual clock when the service's window is full.
    pub fn send_chunk(
        &self,
        stream_id: &str,
        seq: u64,
        batch: &dm_data::stream::RecordBatch,
    ) -> Result<ChunkAck> {
        let bytes = batch.to_bytes();
        // Bounded retry: each shed tells us how long until a window
        // slot frees, so a handful of sleeps always suffices.
        let mut last_err = None;
        for _ in 0..16 {
            let at = self.network.now().as_nanos() as i64;
            let result = self.channel.invoke(
                "DataStream",
                "sendChunk",
                vec![
                    ("streamId".into(), SoapValue::Text(stream_id.into())),
                    ("seq".into(), SoapValue::Int(seq as i64)),
                    ("atNanos".into(), SoapValue::Int(at)),
                    ("chunk".into(), SoapValue::Bytes(bytes.clone())),
                ],
            );
            match result {
                Ok(v) => return decode_chunk_ack(&v),
                Err(dm_wsrf::error::WsError::Fault { code, message })
                    if code == "Server" && message.contains("retry_after_nanos=") =>
                {
                    let nanos = retry_hint_nanos(&message);
                    self.network
                        .advance_virtual_time(std::time::Duration::from_nanos(nanos));
                    last_err = Some(dm_wsrf::error::WsError::Fault { code, message });
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.expect("retry loop exits with an error"))
    }

    /// Stream a whole dataset: open, chunk, send with back-pressure,
    /// close. Returns `(stream_id, final ack)`.
    pub fn send_dataset(
        &self,
        ds: &dm_data::Dataset,
        chunk_rows: usize,
        learner: &str,
        options: &str,
        window: u64,
        row_cost: std::time::Duration,
    ) -> Result<(String, ChunkAck)> {
        let header = dm_data::stream::StreamHeader::of(ds);
        let id = self.open_stream(&header, learner, options, window, row_cost)?;
        let mut last = ChunkAck {
            rows_total: 0,
            backlog_chunks: 0,
            staleness: std::time::Duration::ZERO,
        };
        for (seq, batch) in dm_data::stream::chunk_dataset(ds, chunk_rows)
            .map_err(|e| dm_wsrf::error::WsError::Fault {
                code: "Client".into(),
                message: e.to_string(),
            })?
            .iter()
            .enumerate()
        {
            last = self.send_chunk(&id, seq as u64, batch)?;
        }
        self.close_stream(&id)?;
        Ok((id, last))
    }

    /// `classifyInstances` — label strings from the live model.
    pub fn classify_instances(&self, stream_id: &str, arff: &str) -> Result<Vec<String>> {
        text_list(self.channel.invoke(
            "DataStream",
            "classifyInstances",
            vec![
                ("streamId".into(), SoapValue::Text(stream_id.into())),
                ("instances".into(), SoapValue::Text(arff.into())),
            ],
        )?)
    }

    /// `classifyInstances` against a clustering stream — cluster ids.
    pub fn assign_clusters(&self, stream_id: &str, arff: &str) -> Result<Vec<usize>> {
        self.channel
            .invoke(
                "DataStream",
                "classifyInstances",
                vec![
                    ("streamId".into(), SoapValue::Text(stream_id.into())),
                    ("instances".into(), SoapValue::Text(arff.into())),
                ],
            )?
            .as_list()?
            .iter()
            .map(|v| Ok(v.as_int()? as usize))
            .collect()
    }

    /// `modelDescription`.
    pub fn model_description(&self, stream_id: &str) -> Result<String> {
        text(self.channel.invoke(
            "DataStream",
            "modelDescription",
            vec![("streamId".into(), SoapValue::Text(stream_id.into()))],
        )?)
    }

    /// `modelState` — the learner's exact encoded state.
    pub fn model_state(&self, stream_id: &str) -> Result<Vec<u8>> {
        Ok(self
            .channel
            .invoke(
                "DataStream",
                "modelState",
                vec![("streamId".into(), SoapValue::Text(stream_id.into()))],
            )?
            .as_bytes()?
            .to_vec())
    }

    /// `streamStats`.
    pub fn stream_stats(&self, stream_id: &str) -> Result<StreamStatsSnapshot> {
        let v = self.channel.invoke(
            "DataStream",
            "streamStats",
            vec![("streamId".into(), SoapValue::Text(stream_id.into()))],
        )?;
        let v = v.as_list()?;
        Ok(StreamStatsSnapshot {
            chunks: list_item(v, 0, "streamStats")?.as_int()? as u64,
            rows: list_item(v, 1, "streamStats")?.as_int()? as u64,
            backlog: list_item(v, 2, "streamStats")?.as_int()? as usize,
            busy_rejections: list_item(v, 3, "streamStats")?.as_int()? as u64,
            peak_resident_rows: list_item(v, 4, "streamStats")?.as_int()? as u64,
        })
    }

    /// `closeStream` — flush the learner and seal the stream.
    pub fn close_stream(&self, stream_id: &str) -> Result<()> {
        self.channel.invoke(
            "DataStream",
            "closeStream",
            vec![("streamId".into(), SoapValue::Text(stream_id.into()))],
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::deploy_faehim_suite;
    use dm_wsrf::container::{ServiceFault, WebService};
    use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn network() -> Arc<Network> {
        let net = Arc::new(Network::new());
        let host = net.add_host("miner");
        deploy_faehim_suite(&host).unwrap();
        net
    }

    /// Impersonates `DataStream.sendChunk` with a scripted reply:
    /// sheds the first call with a back-pressure hint that carries
    /// trailing diagnostics, then acks with a fixed (possibly
    /// truncated) list.
    struct ScriptedStream {
        calls: AtomicU32,
        shed_message: &'static str,
        ack: Vec<i64>,
    }

    impl WebService for ScriptedStream {
        fn name(&self) -> &str {
            "DataStream"
        }

        fn wsdl(&self) -> WsdlDocument {
            WsdlDocument::new("DataStream", "http://localhost/DataStream").operation(
                Operation::new(
                    "sendChunk",
                    vec![
                        Part::new("streamId", "string"),
                        Part::new("seq", "long"),
                        Part::new("atNanos", "long"),
                        Part::new("chunk", "base64Binary"),
                    ],
                    Part::new("ack", "list"),
                ),
            )
        }

        fn invoke(
            &self,
            operation: &str,
            _args: &[(String, SoapValue)],
        ) -> std::result::Result<SoapValue, ServiceFault> {
            match operation {
                "sendChunk" => {
                    if self.calls.fetch_add(1, Ordering::SeqCst) == 0
                        && !self.shed_message.is_empty()
                    {
                        Err(ServiceFault::server(self.shed_message))
                    } else {
                        Ok(SoapValue::List(
                            self.ack.iter().map(|&n| SoapValue::Int(n)).collect(),
                        ))
                    }
                }
                _ => Err(ServiceFault::client("no such operation")),
            }
        }
    }

    fn one_batch() -> dm_data::stream::RecordBatch {
        let ds = dm_data::corpus::nominal_classification(20, 2, 2, 2, 0.1, 5);
        dm_data::stream::chunk_dataset(&ds, 20).unwrap().remove(0)
    }

    #[test]
    fn classifier_client_end_to_end() {
        let net = network();
        let client = ClassifierClient::new(Arc::clone(&net), "miner");
        let names = client.get_classifiers().unwrap();
        assert!(names.contains(&"J48".to_string()));
        let options = client.get_options("J48").unwrap();
        assert!(options.iter().any(|(flag, ..)| flag == "-C"));
        let model = client
            .classify_instance(
                &dm_data::corpus::breast_cancer_arff(),
                "J48",
                "-C 0.25 -M 2",
                "Class",
            )
            .unwrap();
        assert!(model.contains("node-caps"));
    }

    #[test]
    fn j48_client_lifecycle_roundtrip() {
        let net = network();
        let client = J48Client::new(Arc::clone(&net), "miner");
        client.set_lifecycle("in-memory-harness").unwrap();
        client
            .classify(&dm_data::corpus::breast_cancer_arff(), "Class", "")
            .unwrap();
        client
            .classify(&dm_data::corpus::breast_cancer_arff(), "Class", "")
            .unwrap();
        let (ser, _, hits) = client.lifecycle_stats().unwrap();
        assert_eq!(ser, 0);
        assert_eq!(hits, 1);
        assert!(client.set_lifecycle("nonsense").is_err());
    }

    #[test]
    fn convert_client_summary() {
        let net = network();
        let client = ConvertClient::new(Arc::clone(&net), "miner");
        let arff = client
            .read_arff("http://www.ics.uci.edu/mlearn/breast-cancer.arff")
            .unwrap();
        let table = client.summary(&arff).unwrap();
        assert!(table.contains("Num Instances 286"));
    }

    #[test]
    fn retry_hint_parses_leading_digits_and_clamps_to_floor() {
        // The hint must survive trailing diagnostics after the number —
        // the pre-fix parse fed the whole suffixed tail to `parse()`,
        // failed, and fell back to a 1 ns spin.
        assert_eq!(
            retry_hint_nanos("stream window full (2 chunks in flight); retry_after_nanos=250000 (window 2, backlog 2)"),
            250_000
        );
        assert_eq!(retry_hint_nanos("retry_after_nanos=250000"), 250_000);
        // Unparsable or sub-floor hints clamp to the 1 µs floor rather
        // than hot-spinning the bounded retry loop.
        assert_eq!(retry_hint_nanos("retry_after_nanos=soon"), MIN_RETRY_NANOS);
        assert_eq!(retry_hint_nanos("retry_after_nanos=3"), MIN_RETRY_NANOS);
        assert_eq!(retry_hint_nanos("no hint at all"), MIN_RETRY_NANOS);
    }

    #[test]
    fn suffixed_retry_hint_backs_off_the_hinted_amount() {
        let net = Arc::new(Network::new());
        net.add_host("shed").deploy(Arc::new(ScriptedStream {
            calls: AtomicU32::new(0),
            shed_message:
                "stream window full (2 chunks in flight); retry_after_nanos=50000000 (window 2, backlog 2)",
            ack: vec![5, 0, 0],
        }));
        let client = StreamClient::new(Arc::clone(&net), "shed");
        let before = net.now();
        let ack = client.send_chunk("s", 0, &one_batch()).unwrap();
        assert_eq!(ack.rows_total, 5);
        // The hinted 50 ms dwarfs the wire time of the two calls, so
        // this asserts the *hint* was honoured; the pre-fix code slept
        // 1 ns and fails here.
        let waited = net.now() - before;
        assert!(
            waited >= std::time::Duration::from_millis(50),
            "client only backed off {waited:?} against a 50 ms hint"
        );
    }

    #[test]
    fn short_chunk_ack_is_a_typed_error_not_a_panic() {
        let net = Arc::new(Network::new());
        net.add_host("short").deploy(Arc::new(ScriptedStream {
            calls: AtomicU32::new(0),
            shed_message: "",
            ack: vec![5],
        }));
        let client = StreamClient::new(Arc::clone(&net), "short");
        // A one-element ack used to panic on `ack[1]`; it must surface
        // as a typed malformed-response error instead.
        let err = client.send_chunk("s", 0, &one_batch()).unwrap_err();
        assert!(
            matches!(&err, dm_wsrf::error::WsError::Malformed(m) if m.contains("sendChunk ack")),
            "expected Malformed, got {err:?}"
        );
    }

    #[test]
    fn stream_client_end_to_end_with_backpressure() {
        let net = network();
        let client = StreamClient::new(Arc::clone(&net), "miner");
        let ds = dm_data::corpus::nominal_classification(400, 4, 3, 2, 0.1, 5);
        // A 2-chunk window with a visible per-row cost forces the
        // client through the shed-and-retry path on the virtual clock.
        let (id, ack) = client
            .send_dataset(
                &ds,
                32,
                "HoeffdingTree",
                "",
                2,
                std::time::Duration::from_millis(5),
            )
            .unwrap();
        assert_eq!(ack.rows_total, 400);
        let stats = client.stream_stats(&id).unwrap();
        assert_eq!(stats.rows, 400);
        assert!(stats.busy_rejections > 0, "window never filled");
        // Peak resident memory is one chunk, not the dataset.
        assert!(stats.peak_resident_rows <= 32);
        // The served model answers over the same transport.
        let labels = client
            .classify_instances(&id, &dm_data::arff::write_arff(&ds))
            .unwrap();
        assert_eq!(labels.len(), 400);
        let state = client.model_state(&id).unwrap();
        assert!(!state.is_empty());
        assert!(client.model_description(&id).unwrap().contains("Hoeffding"));
    }

    #[test]
    fn clusterer_client_runs() {
        let net = network();
        let client = ClustererClient::new(Arc::clone(&net), "miner");
        assert!(client.get_clusterers().unwrap().len() >= 5);
        let ds = dm_data::corpus::gaussian_blobs(
            &[
                dm_data::corpus::BlobSpec {
                    center: vec![0.0],
                    stddev: 0.2,
                    count: 20,
                },
                dm_data::corpus::BlobSpec {
                    center: vec![9.0],
                    stddev: 0.2,
                    count: 20,
                },
            ],
            3,
        );
        let report = client
            .cluster(&dm_data::arff::write_arff(&ds), "SimpleKMeans", "-N 2")
            .unwrap();
        assert!(report.contains("Number of clusters: 2"));
    }
}
