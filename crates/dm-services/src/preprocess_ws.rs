//! The preprocessing Web Service — the "handling different types of
//! data" requirement (§3, category 1): discretisation, normalisation,
//! standardisation, missing-value replacement, attribute removal, and
//! resampling, each taking and returning ARFF so it slots anywhere in a
//! composed pipeline.

use crate::support::{data_fault, opt_text_arg, text_arg};
use dm_data::filters::{
    Discretize, Filter, Normalize, ReplaceMissing, Standardize, SupervisedDiscretize,
};
use dm_data::Dataset;
use dm_wsrf::container::{ServiceFault, WebService};
use dm_wsrf::soap::SoapValue;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};

/// The preprocessing Web Service.
#[derive(Debug, Default)]
pub struct PreprocessService;

impl PreprocessService {
    /// Create the service.
    pub fn new() -> PreprocessService {
        PreprocessService
    }
}

fn parse(arff: &str) -> Result<Dataset, ServiceFault> {
    dm_data::arff::parse_arff(arff).map_err(data_fault)
}

fn parse_with_class(arff: &str, class: Option<&str>) -> Result<Dataset, ServiceFault> {
    let mut ds = parse(arff)?;
    if let Some(name) = class {
        if !name.is_empty() {
            ds.set_class_by_name(name).map_err(data_fault)?;
        }
    }
    Ok(ds)
}

fn emit(ds: &Dataset) -> SoapValue {
    SoapValue::Text(dm_data::arff::write_arff(ds))
}

impl WebService for PreprocessService {
    fn name(&self) -> &str {
        "Preprocess"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("Preprocess", "")
            .operation(
                Operation::new(
                    "normalize",
                    vec![Part::new("dataset", "string")],
                    Part::new("arff", "string"),
                )
                .doc("min-max scale every numeric attribute to [0, 1]"),
            )
            .operation(
                Operation::new(
                    "standardize",
                    vec![Part::new("dataset", "string")],
                    Part::new("arff", "string"),
                )
                .doc("z-score every numeric attribute"),
            )
            .operation(
                Operation::new(
                    "replaceMissing",
                    vec![Part::new("dataset", "string")],
                    Part::new("arff", "string"),
                )
                .doc("impute missing values with the mode/mean"),
            )
            .operation(
                Operation::new(
                    "discretize",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("bins", "long"),
                        Part::new("class", "string"),
                    ],
                    Part::new("arff", "string"),
                )
                .doc("equal-width binning of numeric attributes"),
            )
            .operation(
                Operation::new(
                    "discretizeSupervised",
                    vec![Part::new("dataset", "string"), Part::new("class", "string")],
                    Part::new("arff", "string"),
                )
                .doc("entropy/MDL (Fayyad-Irani) supervised discretisation"),
            )
            .operation(
                Operation::new(
                    "removeAttributes",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("attributes", "string"),
                    ],
                    Part::new("arff", "string"),
                )
                .doc("drop the named (comma-separated) attributes"),
            )
            .operation(
                Operation::new(
                    "resample",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("fraction", "double"),
                        Part::new("seed", "long"),
                    ],
                    Part::new("arff", "string"),
                )
                .doc("seeded random (sub)sample"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        let arff = text_arg(args, "dataset")?;
        match operation {
            "normalize" => {
                let ds = parse(arff)?;
                Ok(emit(&Normalize::fit(&ds).apply(&ds).map_err(data_fault)?))
            }
            "standardize" => {
                let ds = parse(arff)?;
                Ok(emit(&Standardize::fit(&ds).apply(&ds).map_err(data_fault)?))
            }
            "replaceMissing" => {
                let ds = parse(arff)?;
                Ok(emit(
                    &ReplaceMissing::fit(&ds).apply(&ds).map_err(data_fault)?,
                ))
            }
            "discretize" => {
                let class = opt_text_arg(args, "class")?;
                let ds = parse_with_class(arff, class)?;
                let bins = args
                    .iter()
                    .find(|(n, _)| n == "bins")
                    .and_then(|(_, v)| v.as_int().ok())
                    .unwrap_or(10)
                    .clamp(2, 1000) as usize;
                let filter = Discretize::fit(&ds, bins).map_err(data_fault)?;
                Ok(emit(&filter.apply(&ds).map_err(data_fault)?))
            }
            "discretizeSupervised" => {
                let class = text_arg(args, "class")?;
                let ds = parse_with_class(arff, Some(class))?;
                let filter = SupervisedDiscretize::fit(&ds).map_err(data_fault)?;
                Ok(emit(&filter.apply(&ds).map_err(data_fault)?))
            }
            "removeAttributes" => {
                let ds = parse(arff)?;
                let names = text_arg(args, "attributes")?;
                let drop: Vec<usize> = names
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|name| {
                        ds.attribute_index(name.trim()).map_err(|_| {
                            ServiceFault::client(format!("no attribute named {name:?}"))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                Ok(emit(
                    &dm_data::filters::remove(&ds, &drop).map_err(data_fault)?,
                ))
            }
            "resample" => {
                let ds = parse(arff)?;
                let fraction = args
                    .iter()
                    .find(|(n, _)| n == "fraction")
                    .and_then(|(_, v)| v.as_double().ok())
                    .unwrap_or(1.0);
                let seed = args
                    .iter()
                    .find(|(n, _)| n == "seed")
                    .and_then(|(_, v)| v.as_int().ok())
                    .unwrap_or(1) as u64;
                Ok(emit(
                    &dm_data::filters::resample(&ds, fraction, seed).map_err(data_fault)?,
                ))
            }
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_arff() -> String {
        let mut ds = Dataset::new(
            "numbers",
            vec![
                dm_data::Attribute::numeric("x"),
                dm_data::Attribute::nominal("c", ["a", "b"]),
            ],
        );
        ds.push_labels(&["10", "a"]).unwrap();
        ds.push_labels(&["20", "b"]).unwrap();
        ds.push_labels(&["?", "a"]).unwrap();
        ds.push_labels(&["40", "b"]).unwrap();
        dm_data::arff::write_arff(&ds)
    }

    fn one(op: &str, extra: Vec<(String, SoapValue)>) -> Dataset {
        let s = PreprocessService::new();
        let mut args = vec![("dataset".to_string(), SoapValue::Text(numeric_arff()))];
        args.extend(extra);
        let out = s.invoke(op, &args).unwrap();
        dm_data::arff::parse_arff(out.as_text().unwrap()).unwrap()
    }

    #[test]
    fn normalize_scales() {
        let ds = one("normalize", vec![]);
        assert_eq!(ds.value(0, 0), 0.0);
        assert_eq!(ds.value(3, 0), 1.0);
        assert!(ds.instance(2).is_missing(0));
    }

    #[test]
    fn standardize_centres() {
        let ds = one("standardize", vec![]);
        let values: Vec<f64> = (0..4)
            .map(|r| ds.value(r, 0))
            .filter(|v| !v.is_nan())
            .collect();
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn replace_missing_fills() {
        let ds = one("replaceMissing", vec![]);
        assert!(!ds.has_missing(0));
    }

    #[test]
    fn discretize_bins() {
        let ds = one(
            "discretize",
            vec![
                ("bins".to_string(), SoapValue::Int(2)),
                ("class".to_string(), SoapValue::Text("c".into())),
            ],
        );
        assert!(ds.attribute(0).unwrap().is_nominal());
        assert_eq!(ds.attribute(0).unwrap().num_labels(), 2);
    }

    #[test]
    fn remove_attributes_by_name() {
        let ds = one(
            "removeAttributes",
            vec![("attributes".to_string(), SoapValue::Text("x".into()))],
        );
        assert_eq!(ds.num_attributes(), 1);
        assert_eq!(ds.attribute(0).unwrap().name(), "c");
    }

    #[test]
    fn resample_subsamples() {
        let ds = one(
            "resample",
            vec![
                ("fraction".to_string(), SoapValue::Double(0.5)),
                ("seed".to_string(), SoapValue::Int(3)),
            ],
        );
        assert_eq!(ds.num_instances(), 2);
    }

    #[test]
    fn pipeline_discretize_then_prism() {
        // Preprocessing makes numeric data usable by nominal-only
        // algorithms — the §3 "handling different types of data" chain.
        let s = PreprocessService::new();
        let numeric = dm_data::corpus::gaussian_blobs(
            &[
                dm_data::corpus::BlobSpec {
                    center: vec![0.0],
                    stddev: 0.2,
                    count: 20,
                },
                dm_data::corpus::BlobSpec {
                    center: vec![9.0],
                    stddev: 0.2,
                    count: 20,
                },
            ],
            4,
        );
        let out = s
            .invoke(
                "discretize",
                &[
                    (
                        "dataset".to_string(),
                        SoapValue::Text(dm_data::arff::write_arff(&numeric)),
                    ),
                    ("bins".to_string(), SoapValue::Int(4)),
                    ("class".to_string(), SoapValue::Text("cluster".into())),
                ],
            )
            .unwrap();
        let classifier = crate::classifier_ws::ClassifierService::new();
        let model = classifier
            .invoke(
                "classifyInstance",
                &[
                    ("dataset".to_string(), out),
                    ("classifier".to_string(), SoapValue::Text("Prism".into())),
                    ("options".to_string(), SoapValue::Text(String::new())),
                    ("attribute".to_string(), SoapValue::Text("cluster".into())),
                ],
            )
            .unwrap();
        assert!(model.as_text().unwrap().contains("Prism rules"));
    }

    #[test]
    fn supervised_discretize_over_the_wire() {
        let s = PreprocessService::new();
        let blobs = dm_data::corpus::gaussian_blobs(
            &[
                dm_data::corpus::BlobSpec {
                    center: vec![0.0],
                    stddev: 0.5,
                    count: 40,
                },
                dm_data::corpus::BlobSpec {
                    center: vec![10.0],
                    stddev: 0.5,
                    count: 40,
                },
            ],
            6,
        );
        let out = s
            .invoke(
                "discretizeSupervised",
                &[
                    (
                        "dataset".to_string(),
                        SoapValue::Text(dm_data::arff::write_arff(&blobs)),
                    ),
                    ("class".to_string(), SoapValue::Text("cluster".into())),
                ],
            )
            .unwrap();
        let ds = dm_data::arff::parse_arff(out.as_text().unwrap()).unwrap();
        // One informative cut → two bins, perfectly aligned with class.
        assert!(ds.attribute(0).unwrap().is_nominal());
        assert_eq!(ds.attribute(0).unwrap().num_labels(), 2);
    }

    #[test]
    fn bad_attribute_name_faults() {
        let s = PreprocessService::new();
        let err = s
            .invoke(
                "removeAttributes",
                &[
                    ("dataset".to_string(), SoapValue::Text(numeric_arff())),
                    ("attributes".to_string(), SoapValue::Text("nope".into())),
                ],
            )
            .unwrap_err();
        assert_eq!(err.code, "Client");
    }
}
