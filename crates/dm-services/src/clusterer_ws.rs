//! Clustering Web Services (§4.1): the dedicated **Cobweb** service
//! with `cluster` and `getCobwebGraph`, and a general Clusterer service
//! mirroring the general Classifier design (`getClusterers`,
//! `getOptions`, `cluster`).

use crate::support::{algo_fault, data_fault, opt_text_arg, text_arg, traced_handler, tree_to_svg};
use dm_algorithms::options::parse_options_string;
use dm_algorithms::registry::{clusterer_names, make_clusterer};
use dm_wsrf::container::{ServiceFault, WebService};
use dm_wsrf::soap::SoapValue;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};

fn parse_dataset(arff: &str) -> Result<dm_data::Dataset, ServiceFault> {
    dm_data::arff::parse_arff(arff).map_err(data_fault)
}

fn run_clusterer(
    name: &str,
    options: &str,
    arff: &str,
) -> Result<(Box<dyn dm_algorithms::cluster::Clusterer>, dm_data::Dataset), ServiceFault> {
    let ds = parse_dataset(arff)?;
    let mut clusterer = make_clusterer(name).map_err(algo_fault)?;
    for (flag, value) in parse_options_string(options) {
        clusterer.set_option(&flag, &value).map_err(algo_fault)?;
    }
    clusterer.build(&ds).map_err(algo_fault)?;
    Ok((clusterer, ds))
}

fn cluster_report(
    clusterer: &dyn dm_algorithms::cluster::Clusterer,
    ds: &dm_data::Dataset,
) -> Result<String, ServiceFault> {
    let k = clusterer.num_clusters().map_err(algo_fault)?;
    let mut counts = vec![0usize; k.max(1)];
    for r in 0..ds.num_instances() {
        let c = clusterer.cluster_instance(ds, r).map_err(algo_fault)?;
        if c >= counts.len() {
            counts.resize(c + 1, 0);
        }
        counts[c] += 1;
    }
    let mut out = clusterer.describe();
    out.push_str("\nClustered Instances\n");
    for (c, n) in counts.iter().enumerate() {
        if *n > 0 {
            out.push_str(&format!(
                "{c}\t{n} ({:.0}%)\n",
                100.0 * *n as f64 / ds.num_instances().max(1) as f64
            ));
        }
    }
    Ok(out)
}

/// The dedicated Cobweb Web Service.
#[derive(Debug, Default)]
pub struct CobwebService;

impl CobwebService {
    /// Create the service.
    pub fn new() -> CobwebService {
        CobwebService
    }
}

impl WebService for CobwebService {
    fn name(&self) -> &str {
        "Cobweb"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("Cobweb", "")
            .operation(
                Operation::new(
                    "cluster",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("options", "string"),
                    ],
                    Part::new("result", "string"),
                )
                .doc("apply the Cobweb algorithm; returns a textual clustering description"),
            )
            .operation(
                Operation::new(
                    "getCobwebGraph",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("options", "string"),
                    ],
                    Part::new("graph", "string"),
                )
                .doc("apply Cobweb and return the concept hierarchy as an SVG tree"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        traced_handler(self.name(), operation, || {
            let options = opt_text_arg(args, "options")?.unwrap_or("");
            match operation {
                "cluster" => {
                    let arff = text_arg(args, "dataset")?;
                    let (clusterer, ds) = run_clusterer("Cobweb", options, arff)?;
                    Ok(SoapValue::Text(cluster_report(clusterer.as_ref(), &ds)?))
                }
                "getCobwebGraph" => {
                    let arff = text_arg(args, "dataset")?;
                    let (clusterer, _) = run_clusterer("Cobweb", options, arff)?;
                    let tree = clusterer
                        .tree_model()
                        .ok_or_else(|| ServiceFault::server("Cobweb produced no hierarchy"))?;
                    Ok(SoapValue::Text(tree_to_svg(&tree)))
                }
                other => Err(ServiceFault::client(format!("no operation {other:?}"))),
            }
        })
    }
}

/// The general Clusterer Web Service.
#[derive(Debug, Default)]
pub struct ClustererService;

impl ClustererService {
    /// Create the service.
    pub fn new() -> ClustererService {
        ClustererService
    }
}

impl WebService for ClustererService {
    fn name(&self) -> &str {
        "Clusterer"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("Clusterer", "")
            .operation(
                Operation::new("getClusterers", vec![], Part::new("clusterers", "list"))
                    .doc("return the list of available clustering algorithms"),
            )
            .operation(
                Operation::new(
                    "getOptions",
                    vec![Part::new("clusterer", "string")],
                    Part::new("options", "list"),
                )
                .doc("return the options of a clustering algorithm"),
            )
            .operation(
                Operation::new(
                    "cluster",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("clusterer", "string"),
                        Part::new("options", "string"),
                    ],
                    Part::new("result", "string"),
                )
                .doc("build the named clusterer on an ARFF dataset"),
            )
            .operation(
                Operation::new(
                    "assignments",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("clusterer", "string"),
                        Part::new("options", "string"),
                    ],
                    Part::new("assignments", "list"),
                )
                .doc("per-instance cluster indices"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        traced_handler(self.name(), operation, || match operation {
            "getClusterers" => Ok(SoapValue::List(
                clusterer_names()
                    .into_iter()
                    .map(|n| SoapValue::Text(n.to_string()))
                    .collect(),
            )),
            "getOptions" => {
                let name = text_arg(args, "clusterer")?;
                let c = make_clusterer(name).map_err(algo_fault)?;
                Ok(SoapValue::List(
                    c.option_descriptors()
                        .into_iter()
                        .map(|d| {
                            SoapValue::List(vec![
                                SoapValue::Text(d.flag.to_string()),
                                SoapValue::Text(d.name.to_string()),
                                SoapValue::Text(d.description.to_string()),
                                SoapValue::Text(d.default.clone()),
                            ])
                        })
                        .collect(),
                ))
            }
            "cluster" => {
                let arff = text_arg(args, "dataset")?;
                let name = text_arg(args, "clusterer")?;
                let options = opt_text_arg(args, "options")?.unwrap_or("");
                let (clusterer, ds) = run_clusterer(name, options, arff)?;
                Ok(SoapValue::Text(cluster_report(clusterer.as_ref(), &ds)?))
            }
            "assignments" => {
                let arff = text_arg(args, "dataset")?;
                let name = text_arg(args, "clusterer")?;
                let options = opt_text_arg(args, "options")?.unwrap_or("");
                let (clusterer, ds) = run_clusterer(name, options, arff)?;
                let mut out = Vec::with_capacity(ds.num_instances());
                for r in 0..ds.num_instances() {
                    out.push(SoapValue::Int(
                        clusterer.cluster_instance(&ds, r).map_err(algo_fault)? as i64,
                    ));
                }
                Ok(SoapValue::List(out))
            }
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_data::corpus::{gaussian_blobs, BlobSpec};

    fn blobs_arff() -> String {
        let ds = gaussian_blobs(
            &[
                BlobSpec {
                    center: vec![0.0, 0.0],
                    stddev: 0.3,
                    count: 30,
                },
                BlobSpec {
                    center: vec![8.0, 8.0],
                    stddev: 0.3,
                    count: 30,
                },
            ],
            5,
        );
        dm_data::arff::write_arff(&ds)
    }

    #[test]
    fn cobweb_cluster_text() {
        let s = CobwebService::new();
        let v = s
            .invoke(
                "cluster",
                &[
                    ("dataset".to_string(), SoapValue::Text(blobs_arff())),
                    ("options".to_string(), SoapValue::Text("-A 0.3".into())),
                ],
            )
            .unwrap();
        let text = v.as_text().unwrap();
        assert!(text.contains("Cobweb"));
        assert!(text.contains("Clustered Instances"));
    }

    #[test]
    fn cobweb_graph_svg() {
        let s = CobwebService::new();
        let v = s
            .invoke(
                "getCobwebGraph",
                &[
                    ("dataset".to_string(), SoapValue::Text(blobs_arff())),
                    ("options".to_string(), SoapValue::Text("-A 0.3".into())),
                ],
            )
            .unwrap();
        assert!(v.as_text().unwrap().starts_with("<svg"));
    }

    #[test]
    fn general_service_lists_clusterers() {
        let s = ClustererService::new();
        let v = s.invoke("getClusterers", &[]).unwrap();
        let list = v.as_list().unwrap();
        assert!(list.iter().any(|x| x.as_text().unwrap() == "SimpleKMeans"));
        assert!(list.iter().any(|x| x.as_text().unwrap() == "Cobweb"));
    }

    #[test]
    fn general_service_runs_kmeans() {
        let s = ClustererService::new();
        let v = s
            .invoke(
                "assignments",
                &[
                    ("dataset".to_string(), SoapValue::Text(blobs_arff())),
                    (
                        "clusterer".to_string(),
                        SoapValue::Text("SimpleKMeans".into()),
                    ),
                    ("options".to_string(), SoapValue::Text("-N 2".into())),
                ],
            )
            .unwrap();
        let assignments = v.as_list().unwrap();
        assert_eq!(assignments.len(), 60);
        // The two blobs should be separated.
        let first = assignments[0].as_int().unwrap();
        let last = assignments[59].as_int().unwrap();
        assert_ne!(first, last);
    }

    #[test]
    fn get_options_for_kmeans() {
        let s = ClustererService::new();
        let v = s
            .invoke(
                "getOptions",
                &[(
                    "clusterer".to_string(),
                    SoapValue::Text("SimpleKMeans".into()),
                )],
            )
            .unwrap();
        assert!(!v.as_list().unwrap().is_empty());
    }

    #[test]
    fn unknown_clusterer_faults() {
        let s = ClustererService::new();
        let err = s
            .invoke(
                "cluster",
                &[
                    ("dataset".to_string(), SoapValue::Text(blobs_arff())),
                    ("clusterer".to_string(), SoapValue::Text("DBSCAN".into())),
                    ("options".to_string(), SoapValue::Text(String::new())),
                ],
            )
            .unwrap_err();
        assert_eq!(err.code, "Client");
    }
}
