//! Trained-model and evaluation-result caches for the Classifier
//! service.
//!
//! Training is by far the most expensive thing the suite does, and the
//! paper's workflows retrain on every invocation even when the dataset,
//! algorithm, and options have not changed (re-enacting the §5 case
//! study, re-running `classifyGraph` on the model `classifyInstance`
//! just built, …). [`ModelCache`] keys trained classifiers by
//! *(algorithm, options, class attribute, dataset content hash)* so a
//! repeat request reuses the model instead of retraining, and keeps a
//! parallel cache of cross-validation summaries (which train k models
//! per call and therefore gain even more).

use dm_algorithms::classifiers::Classifier;
use dm_wsrf::dataplane::{CacheStats, Hasher128, LruMap};
use parking_lot::Mutex;
use std::sync::Arc;

/// A trained classifier shared between cache and callers. The
/// [`Classifier`] trait is `Send` but not `Sync`, so concurrent
/// dispatches serialise on the mutex.
pub type SharedModel = Arc<Mutex<Box<dyn Classifier>>>;

/// Default number of trained models retained.
pub const DEFAULT_MODEL_CAPACITY: usize = 32;

/// Default number of cross-validation summaries retained.
pub const DEFAULT_EVAL_CAPACITY: usize = 64;

fn write_field(h: &mut Hasher128, field: &str) {
    h.write(&(field.len() as u64).to_le_bytes());
    h.write(field.as_bytes());
}

/// Cache key for a trained model: algorithm, options, class attribute,
/// and the dataset *content* (length-prefixed fields, so reshuffling
/// bytes between fields cannot collide).
pub fn model_key(classifier: &str, options: &str, attribute: &str, dataset: &str) -> u128 {
    let mut h = Hasher128::new();
    write_field(&mut h, classifier);
    write_field(&mut h, options);
    write_field(&mut h, attribute);
    write_field(&mut h, dataset);
    h.finish()
}

/// Cache key for a cross-validation summary: the model key plus the
/// fold count.
pub fn eval_key(
    classifier: &str,
    options: &str,
    attribute: &str,
    folds: i64,
    dataset: &str,
) -> u128 {
    let mut h = Hasher128::new();
    h.write(&model_key(classifier, options, attribute, dataset).to_le_bytes());
    h.write(&folds.to_le_bytes());
    h.finish()
}

/// Entry-bounded LRU caches of trained models and evaluation texts.
#[derive(Debug)]
pub struct ModelCache {
    models: LruMap<u128, SharedModel>,
    evals: LruMap<u128, Arc<str>>,
}

impl Default for ModelCache {
    fn default() -> ModelCache {
        ModelCache::new(DEFAULT_MODEL_CAPACITY, DEFAULT_EVAL_CAPACITY)
    }
}

impl ModelCache {
    /// Create a cache retaining at most `model_capacity` trained models
    /// and `eval_capacity` evaluation summaries.
    pub fn new(model_capacity: usize, eval_capacity: usize) -> ModelCache {
        ModelCache {
            models: LruMap::new(model_capacity),
            evals: LruMap::new(eval_capacity),
        }
    }

    /// Fetch a trained model (counts a hit or miss).
    pub fn get_model(&self, key: u128) -> Option<SharedModel> {
        self.models.get(&key)
    }

    /// Store a freshly trained model.
    pub fn insert_model(&self, key: u128, model: SharedModel) {
        self.models.insert(key, model);
    }

    /// Fetch a cached cross-validation summary.
    pub fn get_eval(&self, key: u128) -> Option<Arc<str>> {
        self.evals.get(&key)
    }

    /// Store a cross-validation summary.
    pub fn insert_eval(&self, key: u128, summary: Arc<str>) {
        self.evals.insert(key, summary);
    }

    /// Counter snapshot for the model cache.
    pub fn model_stats(&self) -> CacheStats {
        self.models.stats()
    }

    /// Counter snapshot for the evaluation cache.
    pub fn eval_stats(&self) -> CacheStats {
        self.evals.stats()
    }

    /// Drop every cached model and evaluation (counters survive).
    pub fn clear(&self) {
        self.models.clear();
        self.evals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_algorithms::registry::make_classifier;
    use dm_data::corpus::breast_cancer_arff;

    fn trained(name: &str) -> SharedModel {
        let ds = crate::support::dataset_with_class(&breast_cancer_arff(), "Class").unwrap();
        let mut m = make_classifier(name).unwrap();
        m.train(&ds).unwrap();
        Arc::new(Mutex::new(m))
    }

    #[test]
    fn keys_depend_on_every_field() {
        let base = model_key("J48", "-M 2", "Class", "@relation x");
        assert_ne!(base, model_key("ZeroR", "-M 2", "Class", "@relation x"));
        assert_ne!(base, model_key("J48", "-M 3", "Class", "@relation x"));
        assert_ne!(base, model_key("J48", "-M 2", "age", "@relation x"));
        assert_ne!(base, model_key("J48", "-M 2", "Class", "@relation y"));
        assert_eq!(base, model_key("J48", "-M 2", "Class", "@relation x"));
        // Field boundaries matter: shifting a byte between adjacent
        // fields must change the key.
        assert_ne!(
            model_key("J48x", "", "Class", "d"),
            model_key("J48", "x", "Class", "d")
        );
        // Eval keys fold in the fold count.
        assert_ne!(
            eval_key("J48", "", "Class", 5, "d"),
            eval_key("J48", "", "Class", 10, "d")
        );
    }

    #[test]
    fn model_cache_evicts_lru_and_retrains_transparently() {
        let cache = ModelCache::new(2, 2);
        let (a, b, c) = (
            model_key("ZeroR", "", "Class", "a"),
            model_key("ZeroR", "", "Class", "b"),
            model_key("ZeroR", "", "Class", "c"),
        );
        cache.insert_model(a, trained("ZeroR"));
        cache.insert_model(b, trained("ZeroR"));
        // Touch `a` so `b` is the least recently used, then overflow.
        assert!(cache.get_model(a).is_some());
        cache.insert_model(c, trained("ZeroR"));
        assert!(cache.get_model(a).is_some());
        assert!(cache.get_model(b).is_none(), "LRU entry must be evicted");
        assert!(cache.get_model(c).is_some());
        let stats = cache.model_stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits + stats.misses, stats.lookups);
        // Transparent recovery: the evicted key simply misses and the
        // caller retrains and reinserts.
        cache.insert_model(b, trained("ZeroR"));
        assert!(cache.get_model(b).is_some());
    }

    #[test]
    fn cached_model_is_usable_after_lookup() {
        let cache = ModelCache::default();
        let key = model_key("ZeroR", "", "Class", "bc");
        cache.insert_model(key, trained("ZeroR"));
        let model = cache.get_model(key).unwrap();
        let text = model.lock().describe();
        assert!(!text.is_empty());
    }

    #[test]
    fn eval_cache_round_trips() {
        let cache = ModelCache::new(2, 1);
        let k1 = eval_key("J48", "", "Class", 5, "d");
        let k2 = eval_key("J48", "", "Class", 10, "d");
        cache.insert_eval(k1, Arc::from("summary-5"));
        assert_eq!(cache.get_eval(k1).as_deref(), Some("summary-5"));
        cache.insert_eval(k2, Arc::from("summary-10"));
        // Capacity 1: the older summary was evicted.
        assert!(cache.get_eval(k1).is_none());
        assert_eq!(cache.eval_stats().evictions, 1);
    }
}
