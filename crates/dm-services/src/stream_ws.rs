//! The streaming-ingest Web Service: the paper's §3 requirement that
//! "the framework should allow the streaming of data from a remote
//! machine along with the capability to process the data locally …
//! when large volumes of data cannot be easily migrated", promoted to
//! first-class SOAP operations.
//!
//! A producer opens a stream with a serialised [`StreamHeader`]
//! (schema + dictionary state) and an online learner name, then pushes
//! columnar [`RecordBatch`] chunks through `sendChunk`. Each chunk is
//! validated against the header at receive time (ragged or
//! out-of-domain chunks fault instead of panicking), folded into the
//! long-lived model, and discarded — the service never materialises
//! the whole dataset, so resident memory is bounded by one chunk
//! (`streamStats` reports the high-water mark so tests can pin it).
//!
//! Back-pressure rides the virtual clock: the service models a bounded
//! in-flight window of chunks still being absorbed (`window` chunks,
//! each costing `rowNanos` per row of virtual processing time).
//! Because Web Services cannot read the simulated clock, the *caller*
//! timestamps every `sendChunk` with its current virtual time; the
//! service drains completed work up to that instant and sheds the
//! chunk with a retryable `Server` fault carrying `retry_after_nanos=…`
//! when the window is full. The model answers `classifyInstances`
//! (DAME-style long-lived serving) at any moment while ingest
//! continues; `modelState` exposes the learner's exact encoded state so
//! byte-identical streamed-vs-migrate determinism can be asserted over
//! the transport.
//!
//! Chunks travel as `SoapValue::Bytes`, so the PR 2 attachment-store
//! data plane substitutes repeated chunks with `DataRef` handles
//! automatically — re-sent chunks pass by reference, visible in
//! `WireStats::ref_substitutions`.

use crate::support::{algo_fault, data_fault, int_arg, text_arg, traced_handler};
use dm_algorithms::classifiers::{Classifier, HoeffdingTree};
use dm_algorithms::cluster::{Clusterer, IncrementalKMeans};
use dm_algorithms::options::{parse_options_string, Configurable};
use dm_algorithms::state::Stateful;
use dm_data::stream::{RecordBatch, RunningStats, StreamHeader};
use dm_data::Dataset;
use dm_wsrf::container::{ServiceFault, WebService};
use dm_wsrf::soap::SoapValue;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};

/// The online model consuming a stream.
enum OnlineModel {
    /// Mini-batch k-means (`cluster_instance` answers).
    KMeans(IncrementalKMeans),
    /// Hoeffding-tree classifier (`classifyInstances` answers labels).
    Hoeffding(HoeffdingTree),
    /// Per-attribute running statistics (no classification).
    Stats(RunningStats),
}

impl OnlineModel {
    fn absorb(&mut self, header: &StreamHeader, batch: &RecordBatch) -> Result<(), ServiceFault> {
        match self {
            // Learners consume the chunk as a small one-chunk dataset —
            // the only materialisation the service ever performs.
            OnlineModel::KMeans(km) => km
                .absorb(&chunk_dataset(header, batch)?)
                .map_err(algo_fault),
            OnlineModel::Hoeffding(ht) => ht
                .absorb(&chunk_dataset(header, batch)?)
                .map_err(algo_fault),
            OnlineModel::Stats(stats) => {
                stats.update(batch);
                Ok(())
            }
        }
    }

    fn flush(&mut self) -> Result<(), ServiceFault> {
        if let OnlineModel::KMeans(km) = self {
            km.flush().map_err(algo_fault)?;
        }
        Ok(())
    }

    fn describe(&self) -> String {
        match self {
            OnlineModel::KMeans(km) => km.describe(),
            OnlineModel::Hoeffding(ht) => ht.describe(),
            OnlineModel::Stats(stats) => format!(
                "RunningStats over {} attributes, {} rows",
                stats.mean.len(),
                stats.rows
            ),
        }
    }

    fn state(&self) -> Vec<u8> {
        match self {
            OnlineModel::KMeans(km) => km.encode_state(),
            OnlineModel::Hoeffding(ht) => ht.encode_state(),
            OnlineModel::Stats(stats) => {
                let mut w = dm_algorithms::state::StateWriter::new();
                w.put_f64_slice(&stats.count);
                w.put_f64_slice(&stats.mean);
                w.put_u64(stats.rows as u64);
                w.into_bytes()
            }
        }
    }
}

/// Materialise one chunk as a dataset carrying the stream schema.
fn chunk_dataset(header: &StreamHeader, batch: &RecordBatch) -> Result<Dataset, ServiceFault> {
    let mut ds = header.to_dataset();
    let mut buf = Vec::with_capacity(batch.num_columns());
    for r in 0..batch.num_rows() {
        batch.copy_row_into(r, &mut buf);
        ds.push_row_weighted(buf.clone(), batch.weights[r])
            .map_err(data_fault)?;
    }
    Ok(ds)
}

/// One open stream.
struct StreamSession {
    header: StreamHeader,
    model: OnlineModel,
    /// Bounded in-flight window: chunks admitted but not yet absorbed
    /// at the caller's clock.
    window: usize,
    /// Virtual processing cost per row.
    row_nanos: u64,
    /// Virtual completion deadlines of in-flight chunks.
    inflight: VecDeque<u64>,
    /// Completion deadline of the most recently admitted chunk.
    last_end: u64,
    /// Next expected chunk sequence number.
    next_seq: i64,
    rows: u64,
    chunks: u64,
    busy_rejections: u64,
    /// Most rows materialised at once (must stay ≈ one chunk).
    peak_resident_rows: u64,
    closed: bool,
}

impl StreamSession {
    /// Drop in-flight chunks whose virtual completion time has passed.
    fn drain(&mut self, now_nanos: u64) {
        while self.inflight.front().is_some_and(|&end| end <= now_nanos) {
            self.inflight.pop_front();
        }
    }
}

/// The streaming-ingest Web Service (service name `DataStream`).
pub struct DataStreamService {
    sessions: Mutex<BTreeMap<String, StreamSession>>,
    next_id: Mutex<u64>,
}

impl Default for DataStreamService {
    fn default() -> Self {
        DataStreamService::new()
    }
}

impl DataStreamService {
    /// Create an empty service.
    pub fn new() -> DataStreamService {
        DataStreamService {
            sessions: Mutex::new(BTreeMap::new()),
            next_id: Mutex::new(0),
        }
    }

    fn open_stream(&self, args: &[(String, SoapValue)]) -> Result<SoapValue, ServiceFault> {
        let header_bytes = match args.iter().find(|(n, _)| n == "header") {
            Some((_, v)) => v
                .as_bytes()
                .map_err(|e| ServiceFault::client(e.to_string()))?,
            None => return Err(ServiceFault::client("missing argument \"header\"")),
        };
        let header = StreamHeader::from_bytes(header_bytes).map_err(data_fault)?;
        let learner = text_arg(args, "learner")?;
        let options = crate::support::opt_text_arg(args, "options")?.unwrap_or("");
        let window = int_arg(args, "window")?;
        let row_nanos = int_arg(args, "rowNanos")?;
        if window < 1 {
            return Err(ServiceFault::client("window must be >= 1"));
        }
        if row_nanos < 0 {
            return Err(ServiceFault::client("rowNanos must be >= 0"));
        }
        let parsed = parse_options_string(options);
        let model = match learner {
            "IncrementalKMeans" => {
                let mut km = IncrementalKMeans::new();
                for (flag, value) in &parsed {
                    km.set_option(flag, value).map_err(algo_fault)?;
                }
                OnlineModel::KMeans(km)
            }
            "HoeffdingTree" => {
                let mut ht = HoeffdingTree::new();
                for (flag, value) in &parsed {
                    ht.set_option(flag, value).map_err(algo_fault)?;
                }
                OnlineModel::Hoeffding(ht)
            }
            "RunningStats" => OnlineModel::Stats(RunningStats::new(header.num_attributes())),
            other => {
                return Err(ServiceFault::client(format!(
                    "unknown online learner {other:?} (expected IncrementalKMeans, \
                     HoeffdingTree, or RunningStats)"
                )))
            }
        };
        let id = {
            let mut next = self.next_id.lock();
            *next += 1;
            format!("stream-{:04}", *next)
        };
        self.sessions.lock().insert(
            id.clone(),
            StreamSession {
                header,
                model,
                window: window as usize,
                row_nanos: row_nanos as u64,
                inflight: VecDeque::new(),
                last_end: 0,
                next_seq: 0,
                rows: 0,
                chunks: 0,
                busy_rejections: 0,
                peak_resident_rows: 0,
                closed: false,
            },
        );
        Ok(SoapValue::Text(id))
    }

    fn send_chunk(&self, args: &[(String, SoapValue)]) -> Result<SoapValue, ServiceFault> {
        let id = text_arg(args, "streamId")?;
        let seq = int_arg(args, "seq")?;
        let at_nanos = int_arg(args, "atNanos")?.max(0) as u64;
        let chunk_bytes = match args.iter().find(|(n, _)| n == "chunk") {
            Some((_, v)) => v
                .as_bytes()
                .map_err(|e| ServiceFault::client(e.to_string()))?,
            None => return Err(ServiceFault::client("missing argument \"chunk\"")),
        };
        let mut sessions = self.sessions.lock();
        let session = sessions
            .get_mut(id)
            .ok_or_else(|| ServiceFault::client(format!("unknown stream {id:?}")))?;
        if session.closed {
            return Err(ServiceFault::client(format!(
                "stream {id:?} is closed; sendChunk after closeStream"
            )));
        }
        // Duplicate delivery (a retried send whose first copy landed):
        // acknowledge idempotently without re-absorbing.
        if seq < session.next_seq {
            session.drain(at_nanos);
            return Ok(ack(session, at_nanos));
        }
        if seq > session.next_seq {
            return Err(ServiceFault::client(format!(
                "chunk sequence gap: got {seq}, expected {}",
                session.next_seq
            )));
        }
        session.drain(at_nanos);
        // Bounded in-flight window: shed with a retryable fault when
        // the consumer is still absorbing `window` chunks at the
        // caller's clock.
        if session.inflight.len() >= session.window {
            session.busy_rejections += 1;
            let retry_after = session
                .inflight
                .front()
                .map(|&end| end.saturating_sub(at_nanos))
                .unwrap_or(0)
                .max(1);
            return Err(ServiceFault::server(format!(
                "stream window full ({} chunks in flight); retry_after_nanos={retry_after}",
                session.inflight.len()
            )));
        }
        let batch = RecordBatch::from_bytes(chunk_bytes).map_err(data_fault)?;
        // Receive-time hardening: ragged buffers, kind mismatches, and
        // out-of-domain codes fault here, before the model sees a cell.
        batch.validate(&session.header).map_err(data_fault)?;
        let rows = batch.num_rows() as u64;
        let StreamSession { header, model, .. } = &mut *session;
        model.absorb(header, &batch)?;
        session.rows += rows;
        session.chunks += 1;
        session.peak_resident_rows = session.peak_resident_rows.max(rows);
        let start = at_nanos.max(session.last_end);
        let end = start + rows * session.row_nanos;
        session.last_end = end;
        session.inflight.push_back(end);
        session.next_seq += 1;
        Ok(ack(session, at_nanos))
    }

    fn classify(&self, args: &[(String, SoapValue)]) -> Result<SoapValue, ServiceFault> {
        let id = text_arg(args, "streamId")?;
        let arff = text_arg(args, "instances")?;
        let sessions = self.sessions.lock();
        let session = sessions
            .get(id)
            .ok_or_else(|| ServiceFault::client(format!("unknown stream {id:?}")))?;
        let mut ds = dm_data::arff::parse_arff(arff).map_err(data_fault)?;
        ds.set_class_index(session.header.class_index())
            .map_err(data_fault)?;
        match &session.model {
            OnlineModel::Hoeffding(ht) => {
                let class = session
                    .header
                    .class_index()
                    .ok_or_else(|| ServiceFault::server("stream header carries no class"))?;
                let attr = &session.header.attributes()[class];
                let out = (0..ds.num_instances())
                    .map(|r| {
                        let c = ht.predict(&ds, r).map_err(algo_fault)?;
                        Ok(SoapValue::Text(
                            attr.label(c).map_err(data_fault)?.to_string(),
                        ))
                    })
                    .collect::<Result<Vec<_>, ServiceFault>>()?;
                Ok(SoapValue::List(out))
            }
            OnlineModel::KMeans(km) => {
                let out = (0..ds.num_instances())
                    .map(|r| {
                        Ok(SoapValue::Int(
                            km.cluster_instance(&ds, r).map_err(algo_fault)? as i64,
                        ))
                    })
                    .collect::<Result<Vec<_>, ServiceFault>>()?;
                Ok(SoapValue::List(out))
            }
            OnlineModel::Stats(_) => Err(ServiceFault::client(
                "RunningStats streams do not support classifyInstances",
            )),
        }
    }

    fn with_session<T>(
        &self,
        id: &str,
        f: impl FnOnce(&mut StreamSession) -> Result<T, ServiceFault>,
    ) -> Result<T, ServiceFault> {
        let mut sessions = self.sessions.lock();
        let session = sessions
            .get_mut(id)
            .ok_or_else(|| ServiceFault::client(format!("unknown stream {id:?}")))?;
        f(session)
    }
}

/// Build the `sendChunk` acknowledgement list:
/// `[rowsTotal, backlogChunks, stalenessNanos]`.
fn ack(session: &StreamSession, at_nanos: u64) -> SoapValue {
    SoapValue::List(vec![
        SoapValue::Int(session.rows as i64),
        SoapValue::Int(session.inflight.len() as i64),
        SoapValue::Int(session.last_end.saturating_sub(at_nanos) as i64),
    ])
}

impl WebService for DataStreamService {
    fn name(&self) -> &str {
        "DataStream"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("DataStream", "")
            .operation(
                Operation::new(
                    "openStream",
                    vec![
                        Part::new("header", "base64Binary"),
                        Part::new("learner", "string"),
                        Part::new("options", "string"),
                        Part::new("window", "long"),
                        Part::new("rowNanos", "long"),
                    ],
                    Part::new("streamId", "string"),
                )
                .doc("open an ingest stream: schema header, online learner, in-flight window"),
            )
            .operation(
                Operation::new(
                    "sendChunk",
                    vec![
                        Part::new("streamId", "string"),
                        Part::new("seq", "long"),
                        Part::new("atNanos", "long"),
                        Part::new("chunk", "base64Binary"),
                    ],
                    Part::new("ack", "list"),
                )
                .doc("push one columnar chunk; faults with retry_after_nanos when the window is full"),
            )
            .operation(
                Operation::new(
                    "classifyInstances",
                    vec![
                        Part::new("streamId", "string"),
                        Part::new("instances", "string"),
                    ],
                    Part::new("labels", "list"),
                )
                .doc("score ARFF instances against the live model while ingest continues"),
            )
            .operation(
                Operation::new(
                    "modelDescription",
                    vec![Part::new("streamId", "string")],
                    Part::new("description", "string"),
                )
                .doc("textual description of the current model"),
            )
            .operation(
                Operation::new(
                    "modelState",
                    vec![Part::new("streamId", "string")],
                    Part::new("state", "base64Binary"),
                )
                .doc("exact encoded learner state (determinism checks, §4.5 lifecycle)"),
            )
            .operation(
                Operation::new(
                    "streamStats",
                    vec![Part::new("streamId", "string")],
                    Part::new("stats", "list"),
                )
                .doc("[chunks, rows, backlog, busyRejections, peakResidentRows]"),
            )
            .operation(
                Operation::new(
                    "closeStream",
                    vec![Part::new("streamId", "string")],
                    Part::new("ack", "string"),
                )
                .doc("flush the learner's tail buffer and seal the stream"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        traced_handler("DataStream", operation, || match operation {
            "openStream" => self.open_stream(args),
            "sendChunk" => self.send_chunk(args),
            "classifyInstances" => self.classify(args),
            "modelDescription" => {
                let id = text_arg(args, "streamId")?;
                self.with_session(id, |s| Ok(SoapValue::Text(s.model.describe())))
            }
            "modelState" => {
                let id = text_arg(args, "streamId")?;
                self.with_session(id, |s| Ok(SoapValue::Bytes(s.model.state())))
            }
            "streamStats" => {
                let id = text_arg(args, "streamId")?;
                self.with_session(id, |s| {
                    Ok(SoapValue::List(vec![
                        SoapValue::Int(s.chunks as i64),
                        SoapValue::Int(s.rows as i64),
                        SoapValue::Int(s.inflight.len() as i64),
                        SoapValue::Int(s.busy_rejections as i64),
                        SoapValue::Int(s.peak_resident_rows as i64),
                    ]))
                })
            }
            "closeStream" => {
                let id = text_arg(args, "streamId")?;
                self.with_session(id, |s| {
                    if s.closed {
                        return Err(ServiceFault::client(format!(
                            "stream {id:?} is already closed"
                        )));
                    }
                    s.model.flush()?;
                    s.closed = true;
                    Ok(SoapValue::Text("closed".into()))
                })
            }
            other => Err(ServiceFault::client(format!("unknown operation {other:?}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_data::arff::write_arff;
    use dm_data::corpus::nominal_classification;
    use dm_data::stream::chunk_dataset as chunk;

    fn open(svc: &DataStreamService, ds: &Dataset, learner: &str, window: i64) -> String {
        let header = StreamHeader::of(ds);
        let out = svc
            .invoke(
                "openStream",
                &[
                    ("header".into(), SoapValue::Bytes(header.to_bytes())),
                    ("learner".into(), SoapValue::Text(learner.into())),
                    ("options".into(), SoapValue::Text(String::new())),
                    ("window".into(), SoapValue::Int(window)),
                    ("rowNanos".into(), SoapValue::Int(1_000)),
                ],
            )
            .unwrap();
        out.as_text().unwrap().to_string()
    }

    fn send(
        svc: &DataStreamService,
        id: &str,
        seq: i64,
        at: i64,
        batch: &RecordBatch,
    ) -> Result<SoapValue, ServiceFault> {
        svc.invoke(
            "sendChunk",
            &[
                ("streamId".into(), SoapValue::Text(id.into())),
                ("seq".into(), SoapValue::Int(seq)),
                ("atNanos".into(), SoapValue::Int(at)),
                ("chunk".into(), SoapValue::Bytes(batch.to_bytes())),
            ],
        )
    }

    #[test]
    fn streamed_hoeffding_matches_local_train() {
        let ds = nominal_classification(600, 4, 3, 2, 0.1, 5);
        let svc = DataStreamService::new();
        let id = open(&svc, &ds, "HoeffdingTree", 1_000);
        for (i, batch) in chunk(&ds, 64).unwrap().iter().enumerate() {
            send(&svc, &id, i as i64, i as i64 * 10_000_000, batch).unwrap();
        }
        svc.invoke(
            "closeStream",
            &[("streamId".into(), SoapValue::Text(id.clone()))],
        )
        .unwrap();
        let state = svc
            .invoke(
                "modelState",
                &[("streamId".into(), SoapValue::Text(id.clone()))],
            )
            .unwrap();
        let mut local = HoeffdingTree::new();
        local.train(&ds).unwrap();
        assert_eq!(state.as_bytes().unwrap(), local.encode_state().as_slice());

        // The live model answers classifyInstances with label strings.
        let labels = svc
            .invoke(
                "classifyInstances",
                &[
                    ("streamId".into(), SoapValue::Text(id.clone())),
                    ("instances".into(), SoapValue::Text(write_arff(&ds))),
                ],
            )
            .unwrap();
        assert_eq!(labels.as_list().unwrap().len(), 600);
    }

    #[test]
    fn window_full_sheds_with_retry_hint() {
        let ds = nominal_classification(100, 4, 3, 2, 0.1, 5);
        let svc = DataStreamService::new();
        let id = open(&svc, &ds, "RunningStats", 2);
        let batches = chunk(&ds, 10).unwrap();
        // All sends at virtual time 0: the third must shed.
        send(&svc, &id, 0, 0, &batches[0]).unwrap();
        send(&svc, &id, 1, 0, &batches[1]).unwrap();
        let err = send(&svc, &id, 2, 0, &batches[2]).unwrap_err();
        assert_eq!(err.code, "Server");
        assert!(
            err.message.contains("retry_after_nanos="),
            "{}",
            err.message
        );
        // After the window drains on the virtual clock, the send lands.
        send(&svc, &id, 2, 60_000, &batches[2]).unwrap();
        // Duplicate delivery of an absorbed chunk acks idempotently:
        // no new rows counted, one busy rejection on the books.
        send(&svc, &id, 1, 70_000, &batches[1]).unwrap();
        let stats = svc
            .invoke(
                "streamStats",
                &[("streamId".into(), SoapValue::Text(id.clone()))],
            )
            .unwrap();
        let stats = stats.as_list().unwrap();
        assert_eq!(stats[0].as_int().unwrap(), 3); // chunks absorbed once each
        assert_eq!(stats[1].as_int().unwrap(), 30); // rows
        assert_eq!(stats[3].as_int().unwrap(), 1); // busy rejections
    }

    #[test]
    fn malformed_chunk_faults_across_service() {
        let ds = nominal_classification(20, 4, 3, 2, 0.1, 5);
        let svc = DataStreamService::new();
        let id = open(&svc, &ds, "RunningStats", 8);
        // A chunk from a different schema (wrong column count) is
        // rejected by receive-time validation against the header.
        let narrow = nominal_classification(20, 2, 3, 2, 0.1, 5);
        let wrong = RecordBatch::from_rows(&narrow, 0..5);
        let err = send(&svc, &id, 0, 0, &wrong).unwrap_err();
        assert_eq!(err.code, "Client");
        // Truncated bytes fault instead of panicking the container.
        let good = RecordBatch::from_rows(&ds, 0..5).to_bytes();
        let err = svc
            .invoke(
                "sendChunk",
                &[
                    ("streamId".into(), SoapValue::Text(id.clone())),
                    ("seq".into(), SoapValue::Int(0)),
                    ("atNanos".into(), SoapValue::Int(0)),
                    (
                        "chunk".into(),
                        SoapValue::Bytes(good[..good.len() / 2].to_vec()),
                    ),
                ],
            )
            .unwrap_err();
        assert_eq!(err.code, "Client");
    }

    #[test]
    fn send_after_close_faults() {
        let ds = nominal_classification(20, 4, 3, 2, 0.1, 5);
        let svc = DataStreamService::new();
        let id = open(&svc, &ds, "RunningStats", 8);
        let batches = chunk(&ds, 10).unwrap();
        send(&svc, &id, 0, 0, &batches[0]).unwrap();
        svc.invoke(
            "closeStream",
            &[("streamId".into(), SoapValue::Text(id.clone()))],
        )
        .unwrap();
        let err = send(&svc, &id, 1, 1_000_000, &batches[1]).unwrap_err();
        assert_eq!(err.code, "Client");
        assert!(err.message.contains("closed"), "{}", err.message);
    }

    #[test]
    fn sequence_gap_faults() {
        let ds = nominal_classification(20, 4, 3, 2, 0.1, 5);
        let svc = DataStreamService::new();
        let id = open(&svc, &ds, "RunningStats", 8);
        let batches = chunk(&ds, 10).unwrap();
        let err = send(&svc, &id, 3, 0, &batches[0]).unwrap_err();
        assert!(err.message.contains("sequence gap"), "{}", err.message);
    }
}
