//! The association-rules Web Service — the third algorithm family of
//! §1 ("1 classifiers, 2 clustering algorithms and 3 association
//! rules").

use crate::support::{algo_fault, data_fault, opt_text_arg, text_arg};
use dm_algorithms::options::parse_options_string;
use dm_algorithms::registry::{associator_names, make_associator};
use dm_wsrf::container::{ServiceFault, WebService};
use dm_wsrf::soap::SoapValue;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};

/// The association-rules Web Service.
#[derive(Debug, Default)]
pub struct AssociationService;

impl AssociationService {
    /// Create the service.
    pub fn new() -> AssociationService {
        AssociationService
    }
}

impl WebService for AssociationService {
    fn name(&self) -> &str {
        "Association"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("Association", "")
            .operation(
                Operation::new("getAssociators", vec![], Part::new("associators", "list"))
                    .doc("return the list of available association-rule miners"),
            )
            .operation(
                Operation::new(
                    "mine",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("associator", "string"),
                        Part::new("options", "string"),
                    ],
                    Part::new("rules", "list"),
                )
                .doc("mine association rules from an ARFF dataset"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        match operation {
            "getAssociators" => Ok(SoapValue::List(
                associator_names()
                    .into_iter()
                    .map(|n| SoapValue::Text(n.to_string()))
                    .collect(),
            )),
            "mine" => {
                let arff = text_arg(args, "dataset")?;
                let name = text_arg(args, "associator")?;
                let options = opt_text_arg(args, "options")?.unwrap_or("");
                let ds = dm_data::arff::parse_arff(arff).map_err(data_fault)?;
                let mut miner = make_associator(name).map_err(algo_fault)?;
                for (flag, value) in parse_options_string(options) {
                    miner.set_option(&flag, &value).map_err(algo_fault)?;
                }
                let rules = miner.mine(&ds).map_err(algo_fault)?;
                Ok(SoapValue::List(
                    rules
                        .iter()
                        .map(|r| SoapValue::Text(r.render(&ds)))
                        .collect(),
                ))
            }
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_data::corpus::market_baskets;

    fn baskets_arff() -> String {
        let ds = market_baskets(6, 200, &[(&[0, 1], 0.5)], 0.02, 9);
        dm_data::arff::write_arff(&ds)
    }

    #[test]
    fn lists_miners() {
        let s = AssociationService::new();
        let v = s.invoke("getAssociators", &[]).unwrap();
        let names: Vec<&str> = v
            .as_list()
            .unwrap()
            .iter()
            .map(|x| x.as_text().unwrap())
            .collect();
        assert_eq!(names, vec!["Apriori", "FPGrowth"]);
    }

    #[test]
    fn mines_rules_with_both_miners() {
        let s = AssociationService::new();
        for miner in ["Apriori", "FPGrowth"] {
            let v = s
                .invoke(
                    "mine",
                    &[
                        ("dataset".to_string(), SoapValue::Text(baskets_arff())),
                        ("associator".to_string(), SoapValue::Text(miner.into())),
                        (
                            "options".to_string(),
                            SoapValue::Text("-Z true -M 0.3 -C 0.7 -N 20".into()),
                        ),
                    ],
                )
                .unwrap();
            let rules = v.as_list().unwrap();
            assert!(!rules.is_empty(), "{miner} found no rules");
            assert!(
                rules.iter().any(|r| {
                    let t = r.as_text().unwrap();
                    t.contains("item0") && t.contains("item1")
                }),
                "{miner} missed the planted pair"
            );
        }
    }

    #[test]
    fn unknown_miner_faults() {
        let s = AssociationService::new();
        let err = s
            .invoke(
                "mine",
                &[
                    ("dataset".to_string(), SoapValue::Text(baskets_arff())),
                    ("associator".to_string(), SoapValue::Text("Eclat".into())),
                    ("options".to_string(), SoapValue::Text(String::new())),
                ],
            )
            .unwrap_err();
        assert_eq!(err.code, "Client");
    }

    #[test]
    fn numeric_dataset_faults_cleanly() {
        let s = AssociationService::new();
        let arff = "@relation n\n@attribute x numeric\n@data\n1\n";
        let err = s
            .invoke(
                "mine",
                &[
                    ("dataset".to_string(), SoapValue::Text(arff.into())),
                    ("associator".to_string(), SoapValue::Text("Apriori".into())),
                    ("options".to_string(), SoapValue::Text(String::new())),
                ],
            )
            .unwrap_err();
        assert_eq!(err.code, "Client");
    }
}
