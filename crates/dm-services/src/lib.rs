//! # dm-services — the FAEHIM data-mining Web Services
//!
//! This crate implements every Web Service the paper describes (§4),
//! as [`dm_wsrf::container::WebService`] implementations plus typed
//! client stubs:
//!
//! * [`classifier_ws`] — the **general Classifier Web Service** with
//!   `getClassifiers`, `getOptions`, and `classifyInstance` (4 inputs:
//!   dataset in ARFF, classifier name, options, class attribute name),
//!   plus `crossValidate` for the "testing the discovered knowledge"
//!   requirement;
//! * [`j48_ws`] — the dedicated **J48 Web Service** with `classify` and
//!   `classifyGraph`, backed by the §4.5 instance lifecycle (this is
//!   the service whose repeated invocation exposed the serialisation
//!   penalty measured by experiment E4);
//! * [`clusterer_ws`] — the **Cobweb Web Service** (`cluster`,
//!   `getCobwebGraph`) and a general Clusterer service;
//! * [`assoc_ws`] — association-rule mining;
//! * [`attrsel_ws`] — attribute selection, including the **genetic
//!   search** service of §5.3;
//! * [`convert_ws`] — CSV↔ARFF conversion, dataset summaries
//!   (Figure 3), and the URL reader that fetches "the data file from a
//!   URL and convert\[s\] this into a format suitable for analysis";
//! * [`plot_ws`] — the GNUPlot-substitute 2-D plotter and the
//!   Mathematica-substitute `plot3D` returning image bytes;
//! * [`stream_ws`] — the **streaming ingest** service (E18): columnar
//!   chunk upload with bounded in-flight windows, online learners, and
//!   live `classifyInstances` serving over the open stream;
//! * [`client`] — typed stubs that invoke the services over the
//!   simulated network (what Triana's generated tools did);
//! * [`deploy`] — one-call deployment of the full FAEHIM suite onto a
//!   host, with UDDI registration.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assoc_ws;
pub mod attrsel_ws;
pub mod classifier_ws;
pub mod client;
pub mod clusterer_ws;
pub mod convert_ws;
pub mod dataaccess_ws;
pub mod deploy;
pub mod j48_ws;
pub mod model_cache;
pub mod plot_ws;
pub mod preprocess_ws;
pub mod session_ws;
pub mod stream_ws;
mod support;

pub use deploy::{deploy_faehim_suite, publish_suite};

/// Is `operation` on `service` a pure function of its arguments (no
/// side effects, deterministic output)? This is the service metadata
/// that lets the workflow engine memoise imported tools
/// (`dm_workflow::graph::Tool::is_pure`): everything in the simulated
/// suite is seeded and deterministic, so the impure set is exactly the
/// operations with observable state — session storage, lifecycle
/// counters, and cache statistics.
pub fn is_pure_operation(service: &str, operation: &str) -> bool {
    match service {
        // All session state lives server-side.
        "Session" => false,
        // Lifecycle mode is service state; its stats are counters.
        "J48" => !matches!(operation, "setLifecycle" | "getLifecycleStats"),
        // Cache counters change on every trained-model lookup.
        "Classifier" => operation != "getCacheStats",
        // Every streaming operation mutates or reads live stream state.
        "DataStream" => false,
        "Cobweb" | "Clusterer" | "Association" | "AttributeSelection" | "Preprocess"
        | "DataConversion" | "UrlReader" | "DataAccess" | "Plot" | "Math" => true,
        _ => false,
    }
}

/// Convenience re-exports.
pub mod prelude {
    pub use crate::classifier_ws::ClassifierService;
    pub use crate::client::{
        ClassifierClient, ClustererClient, ConvertClient, J48Client, StreamClient,
    };
    pub use crate::deploy::{deploy_faehim_suite, publish_suite};
    pub use crate::is_pure_operation;
    pub use crate::j48_ws::J48Service;
    pub use crate::model_cache::ModelCache;
}
