//! Relational data access — the paper's stated future work: "Work is
//! underway to include access to relational databases through the
//! OGSA-DAI services available in GridMiner" (§5.4).
//!
//! [`DataAccessService`] is the OGSA-DAI-style data service: named
//! relational *resources* (tables) are registered with the service;
//! clients discover them (`listResources`), inspect their schemas
//! (`getSchema`), and run projection/selection queries whose results
//! are delivered as ARFF — ready to feed `classifyInstance` directly.
//!
//! The query language is the conjunctive fragment OGSA-DAI activities
//! most commonly encoded: `attr=value` terms joined by `;`, with an
//! optional projection list and row limit. Numeric comparisons support
//! `=`, `<`, `>`.

use crate::support::{data_fault, opt_text_arg, text_arg};
use dm_data::{Dataset, Value};
use dm_wsrf::container::{ServiceFault, WebService};
use dm_wsrf::soap::SoapValue;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// One parsed condition term.
#[derive(Debug, Clone, PartialEq)]
enum Term {
    NominalEq { attr: usize, value: usize },
    NumericCmp { attr: usize, op: char, value: f64 },
}

fn parse_where(ds: &Dataset, clause: &str) -> Result<Vec<Term>, ServiceFault> {
    let mut terms = Vec::new();
    for raw in clause.split(';') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let (op, pos) = ['=', '<', '>']
            .iter()
            .filter_map(|&op| raw.find(op).map(|p| (op, p)))
            .min_by_key(|&(_, p)| p)
            .ok_or_else(|| ServiceFault::client(format!("condition {raw:?} has no =, < or >")))?;
        let (name, value) = (raw[..pos].trim(), raw[pos + 1..].trim());
        let attr = ds
            .attribute_index(name)
            .map_err(|_| ServiceFault::client(format!("no column named {name:?}")))?;
        let spec = ds.attribute(attr).map_err(data_fault)?;
        if spec.is_nominal() {
            if op != '=' {
                return Err(ServiceFault::client(format!(
                    "column {name:?} is nominal; only = is supported"
                )));
            }
            let value = spec.label_index(value).ok_or_else(|| {
                ServiceFault::client(format!("{value:?} not in domain of {name:?}"))
            })?;
            terms.push(Term::NominalEq { attr, value });
        } else {
            let value: f64 = value.parse().map_err(|_| {
                ServiceFault::client(format!("{value:?} is not numeric for column {name:?}"))
            })?;
            terms.push(Term::NumericCmp { attr, op, value });
        }
    }
    Ok(terms)
}

fn matches(ds: &Dataset, row: usize, terms: &[Term]) -> bool {
    terms.iter().all(|t| match *t {
        Term::NominalEq { attr, value } => {
            let v = ds.value(row, attr);
            !Value::is_missing(v) && Value::as_index(v) == value
        }
        Term::NumericCmp { attr, op, value } => {
            let v = ds.value(row, attr);
            if Value::is_missing(v) {
                return false;
            }
            match op {
                '=' => (v - value).abs() < 1e-12,
                '<' => v < value,
                _ => v > value,
            }
        }
    })
}

/// The OGSA-DAI-style relational data service.
#[derive(Debug, Default)]
pub struct DataAccessService {
    resources: RwLock<BTreeMap<String, Dataset>>,
}

impl DataAccessService {
    /// Create with no resources.
    pub fn new() -> DataAccessService {
        DataAccessService::default()
    }

    /// Create with the standard corpus registered: the case-study
    /// `breast_cancer` table plus a synthetic `transactions` table.
    pub fn with_standard_resources() -> DataAccessService {
        let s = DataAccessService::new();
        s.register("breast_cancer", dm_data::corpus::breast_cancer());
        s.register(
            "transactions",
            dm_data::corpus::market_baskets(8, 300, &[(&[0, 1], 0.4)], 0.05, 21),
        );
        s
    }

    /// Register (or replace) a resource.
    pub fn register<N: Into<String>>(&self, name: N, table: Dataset) {
        self.resources.write().insert(name.into(), table);
    }

    fn resource(&self, name: &str) -> Result<Dataset, ServiceFault> {
        self.resources
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceFault::client(format!("no resource named {name:?}")))
    }
}

impl WebService for DataAccessService {
    fn name(&self) -> &str {
        "DataAccess"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("DataAccess", "")
            .operation(
                Operation::new("listResources", vec![], Part::new("resources", "list"))
                    .doc("names of the registered relational resources"),
            )
            .operation(
                Operation::new(
                    "getSchema",
                    vec![Part::new("resource", "string")],
                    Part::new("schema", "list"),
                )
                .doc("column names and types of a resource"),
            )
            .operation(
                Operation::new(
                    "query",
                    vec![
                        Part::new("resource", "string"),
                        Part::new("select", "string"),
                        Part::new("where", "string"),
                        Part::new("limit", "long"),
                    ],
                    Part::new("arff", "string"),
                )
                .doc("projection/selection query; result delivered as ARFF"),
            )
            .operation(
                Operation::new(
                    "rowCount",
                    vec![
                        Part::new("resource", "string"),
                        Part::new("where", "string"),
                    ],
                    Part::new("count", "long"),
                )
                .doc("number of rows matching a condition"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        match operation {
            "listResources" => Ok(SoapValue::List(
                self.resources
                    .read()
                    .keys()
                    .map(|k| SoapValue::Text(k.clone()))
                    .collect(),
            )),
            "getSchema" => {
                let ds = self.resource(text_arg(args, "resource")?)?;
                Ok(SoapValue::List(
                    ds.attributes()
                        .iter()
                        .map(|a| {
                            SoapValue::List(vec![
                                SoapValue::Text(a.name().to_string()),
                                SoapValue::Text(a.arff_type()),
                            ])
                        })
                        .collect(),
                ))
            }
            "query" => {
                let ds = self.resource(text_arg(args, "resource")?)?;
                let select = opt_text_arg(args, "select")?
                    .unwrap_or("")
                    .trim()
                    .to_string();
                let clause = opt_text_arg(args, "where")?.unwrap_or("");
                let limit = args
                    .iter()
                    .find(|(n, _)| n == "limit")
                    .and_then(|(_, v)| v.as_int().ok())
                    .unwrap_or(i64::MAX)
                    .max(0) as usize;
                let terms = parse_where(&ds, clause)?;
                let rows: Vec<usize> = (0..ds.num_instances())
                    .filter(|&r| matches(&ds, r, &terms))
                    .take(limit)
                    .collect();
                let mut result = ds.select_rows(&rows);
                if !select.is_empty() {
                    let keep: Vec<usize> = select
                        .split(',')
                        .map(|name| {
                            ds.attribute_index(name.trim()).map_err(|_| {
                                ServiceFault::client(format!("no column named {name:?}"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    result = dm_data::filters::project(&result, &keep).map_err(data_fault)?;
                }
                Ok(SoapValue::Text(dm_data::arff::write_arff(&result)))
            }
            "rowCount" => {
                let ds = self.resource(text_arg(args, "resource")?)?;
                let clause = opt_text_arg(args, "where")?.unwrap_or("");
                let terms = parse_where(&ds, clause)?;
                let count = (0..ds.num_instances())
                    .filter(|&r| matches(&ds, r, &terms))
                    .count();
                Ok(SoapValue::Int(count as i64))
            }
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> DataAccessService {
        DataAccessService::with_standard_resources()
    }

    #[test]
    fn list_and_schema() {
        let s = service();
        let resources = s.invoke("listResources", &[]).unwrap();
        let names: Vec<&str> = resources
            .as_list()
            .unwrap()
            .iter()
            .map(|v| v.as_text().unwrap())
            .collect();
        assert_eq!(names, vec!["breast_cancer", "transactions"]);

        let schema = s
            .invoke(
                "getSchema",
                &[(
                    "resource".to_string(),
                    SoapValue::Text("breast_cancer".into()),
                )],
            )
            .unwrap();
        let cols = schema.as_list().unwrap();
        assert_eq!(cols.len(), 10);
        let first = cols[0].as_list().unwrap();
        assert_eq!(first[0].as_text().unwrap(), "age");
    }

    #[test]
    fn query_selection_and_projection() {
        let s = service();
        let arff = s
            .invoke(
                "query",
                &[
                    (
                        "resource".to_string(),
                        SoapValue::Text("breast_cancer".into()),
                    ),
                    (
                        "select".to_string(),
                        SoapValue::Text("node-caps, Class".into()),
                    ),
                    ("where".to_string(), SoapValue::Text("node-caps=yes".into())),
                    ("limit".to_string(), SoapValue::Int(1000)),
                ],
            )
            .unwrap();
        let ds = dm_data::arff::parse_arff(arff.as_text().unwrap()).unwrap();
        assert_eq!(ds.num_attributes(), 2);
        assert_eq!(ds.num_instances(), 56); // 25 + 31 from the pinned table
        for r in 0..ds.num_instances() {
            assert_eq!(ds.instance(r).label(0), Some("yes"));
        }
    }

    #[test]
    fn row_count_with_conjunction() {
        let s = service();
        let count = s
            .invoke(
                "rowCount",
                &[
                    (
                        "resource".to_string(),
                        SoapValue::Text("breast_cancer".into()),
                    ),
                    (
                        "where".to_string(),
                        SoapValue::Text("node-caps=yes; Class=recurrence-events".into()),
                    ),
                ],
            )
            .unwrap();
        assert_eq!(count.as_int().unwrap(), 31); // pinned contingency cell
    }

    #[test]
    fn limit_truncates() {
        let s = service();
        let arff = s
            .invoke(
                "query",
                &[
                    (
                        "resource".to_string(),
                        SoapValue::Text("breast_cancer".into()),
                    ),
                    ("select".to_string(), SoapValue::Text(String::new())),
                    ("where".to_string(), SoapValue::Text(String::new())),
                    ("limit".to_string(), SoapValue::Int(7)),
                ],
            )
            .unwrap();
        let ds = dm_data::arff::parse_arff(arff.as_text().unwrap()).unwrap();
        assert_eq!(ds.num_instances(), 7);
        assert_eq!(ds.num_attributes(), 10);
    }

    #[test]
    fn numeric_comparisons() {
        let s = DataAccessService::new();
        let mut table = Dataset::new(
            "readings",
            vec![
                dm_data::Attribute::numeric("value"),
                dm_data::Attribute::nominal("ok", ["n", "y"]),
            ],
        );
        for i in 0..20 {
            table
                .push_row(vec![i as f64, f64::from(u8::from(i >= 10))])
                .unwrap();
        }
        s.register("readings", table);
        let count = s
            .invoke(
                "rowCount",
                &[
                    ("resource".to_string(), SoapValue::Text("readings".into())),
                    (
                        "where".to_string(),
                        SoapValue::Text("value>4.5; value<10".into()),
                    ),
                ],
            )
            .unwrap();
        assert_eq!(count.as_int().unwrap(), 5); // 5..=9
    }

    #[test]
    fn query_result_feeds_classifier() {
        // The future-work pipeline: DataAccess.query → classifyInstance.
        let s = service();
        let arff = s
            .invoke(
                "query",
                &[
                    (
                        "resource".to_string(),
                        SoapValue::Text("breast_cancer".into()),
                    ),
                    ("select".to_string(), SoapValue::Text(String::new())),
                    ("where".to_string(), SoapValue::Text(String::new())),
                    ("limit".to_string(), SoapValue::Int(i64::MAX)),
                ],
            )
            .unwrap();
        let classifier = crate::classifier_ws::ClassifierService::new();
        let model = classifier
            .invoke(
                "classifyInstance",
                &[
                    ("dataset".to_string(), arff),
                    ("classifier".to_string(), SoapValue::Text("J48".into())),
                    ("options".to_string(), SoapValue::Text(String::new())),
                    ("attribute".to_string(), SoapValue::Text("Class".into())),
                ],
            )
            .unwrap();
        assert!(model.as_text().unwrap().contains("node-caps"));
    }

    #[test]
    fn bad_queries_fault() {
        let s = service();
        let bad = |args: Vec<(String, SoapValue)>| s.invoke("query", &args).unwrap_err().code;
        assert_eq!(
            bad(vec![(
                "resource".to_string(),
                SoapValue::Text("nope".into())
            )]),
            "Client"
        );
        assert_eq!(
            bad(vec![
                (
                    "resource".to_string(),
                    SoapValue::Text("breast_cancer".into())
                ),
                ("select".to_string(), SoapValue::Text("bogus_col".into())),
                ("where".to_string(), SoapValue::Text(String::new())),
            ]),
            "Client"
        );
        assert_eq!(
            bad(vec![
                (
                    "resource".to_string(),
                    SoapValue::Text("breast_cancer".into())
                ),
                ("select".to_string(), SoapValue::Text(String::new())),
                ("where".to_string(), SoapValue::Text("age!adult".into())),
            ]),
            "Client"
        );
        assert_eq!(
            bad(vec![
                (
                    "resource".to_string(),
                    SoapValue::Text("breast_cancer".into())
                ),
                ("select".to_string(), SoapValue::Text(String::new())),
                ("where".to_string(), SoapValue::Text("node-caps<yes".into())),
            ]),
            "Client"
        );
    }
}
