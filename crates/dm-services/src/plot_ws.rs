//! Plotting Web Services (§4.2): the GNUPlot-substitute 2-D plotter and
//! the Mathematica-substitute `plot3D` ("plot data points sent as a CSV
//! file in three dimension and return the plotted graph as an image
//! file").

use crate::support::{data_fault, text_arg};
use dm_wsrf::container::{ServiceFault, WebService};
use dm_wsrf::soap::SoapValue;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};

fn csv_columns(csv: &str, want: usize) -> Result<Vec<Vec<f64>>, ServiceFault> {
    let ds = dm_data::csv::parse_csv(csv).map_err(data_fault)?;
    if ds.num_attributes() < want {
        return Err(ServiceFault::client(format!(
            "need {want} numeric columns, got {}",
            ds.num_attributes()
        )));
    }
    let mut cols = vec![Vec::with_capacity(ds.num_instances()); want];
    for r in 0..ds.num_instances() {
        for (c, col) in cols.iter_mut().enumerate() {
            let v = ds.value(r, c);
            if !ds.attributes()[c].is_numeric() || v.is_nan() {
                return Err(ServiceFault::client(format!(
                    "column {} must be numeric and complete",
                    ds.attributes()[c].name()
                )));
            }
            col.push(v);
        }
    }
    Ok(cols)
}

/// The 2-D plotting Web Service (GNUPlot substitute).
#[derive(Debug, Default)]
pub struct PlotService;

impl PlotService {
    /// Create the service.
    pub fn new() -> PlotService {
        PlotService
    }
}

impl WebService for PlotService {
    fn name(&self) -> &str {
        "Plot"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("Plot", "")
            .operation(
                Operation::new(
                    "scatter",
                    vec![Part::new("csv", "string"), Part::new("title", "string")],
                    Part::new("svg", "string"),
                )
                .doc("scatter plot of the first two numeric CSV columns"),
            )
            .operation(
                Operation::new(
                    "line",
                    vec![Part::new("csv", "string"), Part::new("title", "string")],
                    Part::new("svg", "string"),
                )
                .doc("line plot of the first two numeric CSV columns"),
            )
            .operation(
                Operation::new(
                    "histogram",
                    vec![
                        Part::new("csv", "string"),
                        Part::new("title", "string"),
                        Part::new("bins", "long"),
                    ],
                    Part::new("svg", "string"),
                )
                .doc("histogram of the first numeric CSV column"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        let csv = text_arg(args, "csv")?;
        let title = crate::support::opt_text_arg(args, "title")?.unwrap_or("plot");
        match operation {
            "scatter" | "line" => {
                let cols = csv_columns(csv, 2)?;
                let points: Vec<(f64, f64)> = cols[0]
                    .iter()
                    .zip(&cols[1])
                    .map(|(&x, &y)| (x, y))
                    .collect();
                let series = if operation == "scatter" {
                    dm_viz::Series::scatter("data", points)
                } else {
                    dm_viz::Series::line("data", points)
                };
                Ok(SoapValue::Text(
                    dm_viz::Chart::new(title)
                        .labels("x", "y")
                        .with(series)
                        .to_svg(),
                ))
            }
            "histogram" => {
                let bins = crate::support::int_arg(args, "bins")
                    .unwrap_or(10)
                    .clamp(2, 200) as usize;
                let cols = csv_columns(csv, 1)?;
                let values = &cols[0];
                let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let span = (max - min).max(1e-12);
                let mut counts = vec![0.0f64; bins];
                for &v in values {
                    let b = (((v - min) / span) * bins as f64) as usize;
                    counts[b.min(bins - 1)] += 1.0;
                }
                let points: Vec<(f64, f64)> = counts
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| (min + span * (i as f64 + 0.5) / bins as f64, c))
                    .collect();
                let mut chart = dm_viz::Chart::new(title).labels("value", "count");
                chart.y_from_zero = true;
                Ok(SoapValue::Text(
                    chart.with(dm_viz::Series::bars("count", points)).to_svg(),
                ))
            }
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

/// The Mathematica-substitute Web Service; its "most important
/// operation" is `plot3D` (§4.2), returning raster image bytes.
#[derive(Debug, Default)]
pub struct MathService;

impl MathService {
    /// Create the service.
    pub fn new() -> MathService {
        MathService
    }
}

impl WebService for MathService {
    fn name(&self) -> &str {
        "Math"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("Math", "")
            .operation(
                Operation::new(
                    "plot3D",
                    vec![
                        Part::new("csv", "string"),
                        Part::new("width", "long"),
                        Part::new("height", "long"),
                    ],
                    Part::new("image", "base64Binary"),
                )
                .doc("plot 3-D CSV points and return the graph as an image (PPM raster)"),
            )
            .operation(
                Operation::new(
                    "statistics",
                    vec![Part::new("csv", "string")],
                    Part::new("stats", "list"),
                )
                .doc("per-column mean and standard deviation"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        match operation {
            "plot3D" => {
                let csv = text_arg(args, "csv")?;
                let width = crate::support::int_arg(args, "width")
                    .unwrap_or(640)
                    .clamp(16, 4096) as usize;
                let height = crate::support::int_arg(args, "height")
                    .unwrap_or(480)
                    .clamp(16, 4096) as usize;
                let cols = csv_columns(csv, 3)?;
                let points: Vec<(f64, f64, f64)> = (0..cols[0].len())
                    .map(|i| (cols[0][i], cols[1][i], cols[2][i]))
                    .collect();
                let canvas = dm_viz::canvas::plot3d(&points, width, height);
                Ok(SoapValue::Bytes(canvas.to_ppm()))
            }
            "statistics" => {
                let csv = text_arg(args, "csv")?;
                let ds = dm_data::csv::parse_csv(csv).map_err(data_fault)?;
                let mut out = Vec::new();
                for a in 0..ds.num_attributes() {
                    if !ds.attributes()[a].is_numeric() {
                        continue;
                    }
                    let values: Vec<f64> = (0..ds.num_instances())
                        .map(|r| ds.value(r, a))
                        .filter(|v| !v.is_nan())
                        .collect();
                    let n = values.len().max(1) as f64;
                    let mean = values.iter().sum::<f64>() / n;
                    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
                    out.push(SoapValue::List(vec![
                        SoapValue::Text(ds.attributes()[a].name().to_string()),
                        SoapValue::Double(mean),
                        SoapValue::Double(var.sqrt()),
                    ]));
                }
                Ok(SoapValue::List(out))
            }
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy_csv() -> String {
        let mut s = String::from("x,y\n");
        for i in 0..50 {
            s.push_str(&format!("{i},{}\n", i * i));
        }
        s
    }

    fn xyz_csv() -> String {
        let mut s = String::from("x,y,z\n");
        for i in 0..100 {
            let t = i as f64 / 10.0;
            s.push_str(&format!("{t},{},{}\n", t.sin(), t.cos()));
        }
        s
    }

    #[test]
    fn scatter_and_line_render() {
        let s = PlotService::new();
        for op in ["scatter", "line"] {
            let v = s
                .invoke(
                    op,
                    &[
                        ("csv".to_string(), SoapValue::Text(xy_csv())),
                        ("title".to_string(), SoapValue::Text("squares".into())),
                    ],
                )
                .unwrap();
            assert!(v.as_text().unwrap().starts_with("<svg"), "{op}");
        }
    }

    #[test]
    fn histogram_renders() {
        let s = PlotService::new();
        let v = s
            .invoke(
                "histogram",
                &[
                    ("csv".to_string(), SoapValue::Text(xy_csv())),
                    ("title".to_string(), SoapValue::Text("hist".into())),
                    ("bins".to_string(), SoapValue::Int(8)),
                ],
            )
            .unwrap();
        assert!(v.as_text().unwrap().contains("<rect"));
    }

    #[test]
    fn plot3d_returns_ppm_image() {
        let s = MathService::new();
        let v = s
            .invoke(
                "plot3D",
                &[
                    ("csv".to_string(), SoapValue::Text(xyz_csv())),
                    ("width".to_string(), SoapValue::Int(200)),
                    ("height".to_string(), SoapValue::Int(150)),
                ],
            )
            .unwrap();
        let image = v.as_bytes().unwrap();
        assert!(image.starts_with(b"P6\n200 150\n255\n"));
        assert_eq!(image.len(), 15 + 200 * 150 * 3);
    }

    #[test]
    fn plot3d_needs_three_columns() {
        let s = MathService::new();
        let err = s
            .invoke("plot3D", &[("csv".to_string(), SoapValue::Text(xy_csv()))])
            .unwrap_err();
        assert_eq!(err.code, "Client");
    }

    #[test]
    fn statistics_per_column() {
        let s = MathService::new();
        let v = s
            .invoke(
                "statistics",
                &[("csv".to_string(), SoapValue::Text(xy_csv()))],
            )
            .unwrap();
        let stats = v.as_list().unwrap();
        assert_eq!(stats.len(), 2);
        let x = stats[0].as_list().unwrap();
        assert_eq!(x[0].as_text().unwrap(), "x");
        assert!((x[1].as_double().unwrap() - 24.5).abs() < 1e-9);
    }

    #[test]
    fn non_numeric_column_faults() {
        let s = PlotService::new();
        let err = s
            .invoke(
                "scatter",
                &[("csv".to_string(), SoapValue::Text("a,b\nx,1\n".into()))],
            )
            .unwrap_err();
        assert_eq!(err.code, "Client");
    }
}
