//! The session-management Web Service (§5.4: "data translation,
//! visualisation and session management"): exposes
//! [`dm_wsrf::session::SessionManager`] over SOAP so an interactive
//! workflow can carry state (selected classifier, option string,
//! intermediate models) across Web Service calls.

use crate::support::text_arg;
use dm_wsrf::container::{ServiceFault, WebService};
use dm_wsrf::session::SessionManager;
use dm_wsrf::soap::SoapValue;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};
use std::time::Duration;

/// The session-management Web Service.
pub struct SessionService {
    manager: SessionManager,
}

impl Default for SessionService {
    fn default() -> Self {
        SessionService::new(Duration::from_secs(30 * 60))
    }
}

impl SessionService {
    /// Create with an explicit idle TTL.
    pub fn new(ttl: Duration) -> SessionService {
        SessionService {
            manager: SessionManager::new(ttl),
        }
    }

    /// The underlying manager (for tests and local callers).
    pub fn manager(&self) -> &SessionManager {
        &self.manager
    }
}

fn not_found(e: dm_wsrf::WsError) -> ServiceFault {
    ServiceFault::client(e.to_string())
}

impl WebService for SessionService {
    fn name(&self) -> &str {
        "Session"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("Session", "")
            .operation(
                Operation::new("createSession", vec![], Part::new("sessionId", "string"))
                    .doc("open a session and return its id"),
            )
            .operation(
                Operation::new(
                    "putAttribute",
                    vec![
                        Part::new("sessionId", "string"),
                        Part::new("key", "string"),
                        Part::new("value", "string"),
                    ],
                    Part::new("ack", "string"),
                )
                .doc("store a string attribute in the session"),
            )
            .operation(
                Operation::new(
                    "getAttribute",
                    vec![Part::new("sessionId", "string"), Part::new("key", "string")],
                    Part::new("value", "string"),
                )
                .doc("fetch an attribute (nil when unset)"),
            )
            .operation(
                Operation::new(
                    "listAttributes",
                    vec![Part::new("sessionId", "string")],
                    Part::new("keys", "list"),
                )
                .doc("attribute names stored in the session"),
            )
            .operation(
                Operation::new(
                    "closeSession",
                    vec![Part::new("sessionId", "string")],
                    Part::new("ack", "string"),
                )
                .doc("discard the session and its state"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        match operation {
            "createSession" => Ok(SoapValue::Text(self.manager.create())),
            "putAttribute" => {
                let id = text_arg(args, "sessionId")?;
                let key = text_arg(args, "key")?;
                let value = args
                    .iter()
                    .find(|(n, _)| n == "value")
                    .map(|(_, v)| v.clone())
                    .unwrap_or(SoapValue::Null);
                self.manager.put(id, key, value).map_err(not_found)?;
                Ok(SoapValue::Text("ok".into()))
            }
            "getAttribute" => {
                let id = text_arg(args, "sessionId")?;
                let key = text_arg(args, "key")?;
                Ok(self
                    .manager
                    .get(id, key)
                    .map_err(not_found)?
                    .unwrap_or(SoapValue::Null))
            }
            "listAttributes" => {
                let id = text_arg(args, "sessionId")?;
                Ok(SoapValue::List(
                    self.manager
                        .keys(id)
                        .map_err(not_found)?
                        .into_iter()
                        .map(SoapValue::Text)
                        .collect(),
                ))
            }
            "closeSession" => {
                let id = text_arg(args, "sessionId")?;
                if self.manager.close(id) {
                    Ok(SoapValue::Text("ok".into()))
                } else {
                    Err(ServiceFault::client(format!("no session {id:?}")))
                }
            }
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interactive_sequence_carries_state() {
        let s = SessionService::default();
        let id = s.invoke("createSession", &[]).unwrap();
        let id = id.as_text().unwrap().to_string();

        // The interactive sequence: remember the selected classifier
        // and options between calls.
        s.invoke(
            "putAttribute",
            &[
                ("sessionId".to_string(), SoapValue::Text(id.clone())),
                ("key".to_string(), SoapValue::Text("classifier".into())),
                ("value".to_string(), SoapValue::Text("J48".into())),
            ],
        )
        .unwrap();
        s.invoke(
            "putAttribute",
            &[
                ("sessionId".to_string(), SoapValue::Text(id.clone())),
                ("key".to_string(), SoapValue::Text("options".into())),
                ("value".to_string(), SoapValue::Text("-C 0.25 -M 2".into())),
            ],
        )
        .unwrap();
        let got = s
            .invoke(
                "getAttribute",
                &[
                    ("sessionId".to_string(), SoapValue::Text(id.clone())),
                    ("key".to_string(), SoapValue::Text("classifier".into())),
                ],
            )
            .unwrap();
        assert_eq!(got, SoapValue::Text("J48".into()));
        let keys = s
            .invoke(
                "listAttributes",
                &[("sessionId".to_string(), SoapValue::Text(id.clone()))],
            )
            .unwrap();
        assert_eq!(keys.as_list().unwrap().len(), 2);
        s.invoke(
            "closeSession",
            &[("sessionId".to_string(), SoapValue::Text(id.clone()))],
        )
        .unwrap();
        let err = s
            .invoke(
                "getAttribute",
                &[
                    ("sessionId".to_string(), SoapValue::Text(id)),
                    ("key".to_string(), SoapValue::Text("classifier".into())),
                ],
            )
            .unwrap_err();
        assert_eq!(err.code, "Client");
    }

    #[test]
    fn unset_attribute_is_nil() {
        let s = SessionService::default();
        let id = s
            .invoke("createSession", &[])
            .unwrap()
            .as_text()
            .unwrap()
            .to_string();
        let got = s
            .invoke(
                "getAttribute",
                &[
                    ("sessionId".to_string(), SoapValue::Text(id)),
                    ("key".to_string(), SoapValue::Text("missing".into())),
                ],
            )
            .unwrap();
        assert_eq!(got, SoapValue::Null);
    }

    #[test]
    fn unknown_session_faults() {
        let s = SessionService::default();
        let err = s
            .invoke(
                "closeSession",
                &[("sessionId".to_string(), SoapValue::Text("bogus".into()))],
            )
            .unwrap_err();
        assert_eq!(err.code, "Client");
    }
}
