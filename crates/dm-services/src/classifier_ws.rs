//! The general Classifier Web Service (§4.1):
//!
//! > "we have opted to implement a general Classifier Web Service to
//! > act as a wrapper for a complete set of classifiers available in
//! > WEKA. The general Classifier Web Service has the following
//! > operations: (1) getClassifiers, (2) getOptions and
//! > (3) ClassifyInstance."
//!
//! `classifyInstance` takes the paper's four inputs — dataset (ARFF),
//! classifier name, options string, and the attribute to classify on —
//! and returns the textual model. `classifyGraph` returns the tree as
//! SVG when the model is tree-shaped, and `crossValidate` covers the
//! "testing the discovered knowledge" requirement.

use crate::model_cache::{eval_key, model_key, ModelCache, SharedModel};
use crate::support::{
    algo_fault, dataset_with_class, int_arg, opt_text_arg, text_arg, traced_handler,
};
use dm_algorithms::options::parse_options_string;
use dm_algorithms::registry::{classifier_names, make_classifier};
use dm_wsrf::container::{ServiceFault, WebService};
use dm_wsrf::dataplane::CacheStats;
use dm_wsrf::soap::SoapValue;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};
use parking_lot::Mutex;
use std::sync::Arc;

/// The general Classifier Web Service.
#[derive(Debug, Default)]
pub struct ClassifierService {
    cache: ModelCache,
}

impl ClassifierService {
    /// Create the service with the default model/evaluation cache.
    pub fn new() -> ClassifierService {
        ClassifierService::default()
    }

    /// Create the service with explicit cache capacities (entries, not
    /// bytes). A capacity of 1 effectively keeps only the latest model.
    pub fn with_cache(model_capacity: usize, eval_capacity: usize) -> ClassifierService {
        ClassifierService {
            cache: ModelCache::new(model_capacity, eval_capacity),
        }
    }

    /// The trained-model / evaluation cache (counters, clearing).
    pub fn cache(&self) -> &ModelCache {
        &self.cache
    }

    /// Train (or fetch from cache) the model described by the standard
    /// four arguments: dataset, classifier, options, attribute.
    fn trained_model(&self, args: &[(String, SoapValue)]) -> Result<SharedModel, ServiceFault> {
        let arff = text_arg(args, "dataset")?;
        let name = text_arg(args, "classifier")?;
        let options = opt_text_arg(args, "options")?.unwrap_or("");
        let attribute = text_arg(args, "attribute")?;
        let key = model_key(name, options, attribute, arff);
        if let Some(model) = self.cache.get_model(key) {
            return Ok(model);
        }
        let ds = dataset_with_class(arff, attribute)?;
        let mut model = make_classifier(name).map_err(algo_fault)?;
        for (flag, value) in parse_options_string(options) {
            model.set_option(&flag, &value).map_err(algo_fault)?;
        }
        model.train(&ds).map_err(algo_fault)?;
        let shared: SharedModel = Arc::new(Mutex::new(model));
        self.cache.insert_model(key, Arc::clone(&shared));
        Ok(shared)
    }
}

fn stats_row(stats: &CacheStats) -> SoapValue {
    SoapValue::List(vec![
        SoapValue::Int(stats.lookups as i64),
        SoapValue::Int(stats.hits as i64),
        SoapValue::Int(stats.misses as i64),
        SoapValue::Int(stats.insertions as i64),
        SoapValue::Int(stats.evictions as i64),
        SoapValue::Int(stats.entries as i64),
    ])
}

impl WebService for ClassifierService {
    fn name(&self) -> &str {
        "Classifier"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("Classifier", "")
            .operation(
                Operation::new("getClassifiers", vec![], Part::new("classifiers", "list"))
                    .doc("return the list of available classifiers known to the service"),
            )
            .operation(
                Operation::new(
                    "getOptions",
                    vec![Part::new("classifier", "string")],
                    Part::new("options", "list"),
                )
                .doc("return the required and optional properties of a classifier"),
            )
            .operation(
                Operation::new(
                    "classifyInstance",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("classifier", "string"),
                        Part::new("options", "string"),
                        Part::new("attribute", "string"),
                    ],
                    Part::new("model", "string"),
                )
                .doc("train the named classifier on an ARFF dataset and return the textual model"),
            )
            .operation(
                Operation::new(
                    "classifyGraph",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("classifier", "string"),
                        Part::new("options", "string"),
                        Part::new("attribute", "string"),
                    ],
                    Part::new("graph", "string"),
                )
                .doc("train and return a graphical (SVG) rendering of a tree-shaped model"),
            )
            .operation(
                Operation::new(
                    "classifyInstances",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("classifier", "string"),
                        Part::new("options", "string"),
                        Part::new("attribute", "string"),
                        Part::new("instances", "string"),
                    ],
                    Part::new("predictions", "list"),
                )
                .doc(
                    "train (or reuse) the model and score a whole batch of instances in one \
                     envelope; returns predicted class labels in row order",
                ),
            )
            .operation(
                Operation::new(
                    "crossValidate",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("classifier", "string"),
                        Part::new("options", "string"),
                        Part::new("attribute", "string"),
                        Part::new("folds", "long"),
                    ],
                    Part::new("evaluation", "string"),
                )
                .doc("stratified k-fold cross-validation summary"),
            )
            .operation(
                Operation::new("getCacheStats", vec![], Part::new("stats", "list"))
                    .doc("trained-model and evaluation cache counters"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        traced_handler(self.name(), operation, || match operation {
            "getClassifiers" => Ok(SoapValue::List(
                classifier_names()
                    .into_iter()
                    .map(|n| SoapValue::Text(n.to_string()))
                    .collect(),
            )),
            "getOptions" => {
                let name = text_arg(args, "classifier")?;
                let model = make_classifier(name).map_err(algo_fault)?;
                Ok(SoapValue::List(
                    model
                        .option_descriptors()
                        .into_iter()
                        .map(|d| {
                            SoapValue::List(vec![
                                SoapValue::Text(d.flag.to_string()),
                                SoapValue::Text(d.name.to_string()),
                                SoapValue::Text(d.description.to_string()),
                                SoapValue::Text(d.default.clone()),
                            ])
                        })
                        .collect(),
                ))
            }
            "classifyInstance" => {
                let model = self.trained_model(args)?;
                let text = model.lock().describe();
                Ok(SoapValue::Text(text))
            }
            "classifyGraph" => {
                let model = self.trained_model(args)?;
                let model = model.lock();
                let tree = model.tree_model().ok_or_else(|| {
                    ServiceFault::client(format!(
                        "classifier {:?} does not produce a tree graph",
                        model.name()
                    ))
                })?;
                Ok(SoapValue::Text(crate::support::tree_to_svg(&tree)))
            }
            "classifyInstances" => {
                // One envelope, N instances: amortise the SOAP round
                // trip and score rows in parallel on the compute pool.
                let model = self.trained_model(args)?;
                let attribute = text_arg(args, "attribute")?;
                let instances_arff = text_arg(args, "instances")?;
                let batch = dataset_with_class(instances_arff, attribute)?;
                let labels = batch
                    .class_attribute()
                    .map_err(crate::support::data_fault)?
                    .labels()
                    .to_vec();
                let guard = model.lock();
                let trained: &dyn dm_algorithms::classifiers::Classifier = &**guard;
                let predictions = trained.predict_batch(&batch).map_err(algo_fault)?;
                let mut out = Vec::with_capacity(predictions.len());
                for idx in predictions {
                    let label = labels.get(idx).ok_or_else(|| {
                        ServiceFault::server(format!("predicted class index {idx} out of range"))
                    })?;
                    out.push(SoapValue::Text(label.clone()));
                }
                Ok(SoapValue::List(out))
            }
            "crossValidate" => {
                let arff = text_arg(args, "dataset")?;
                let name = text_arg(args, "classifier")?;
                let options = opt_text_arg(args, "options")?.unwrap_or("").to_string();
                let attribute = text_arg(args, "attribute")?;
                let folds_arg = int_arg(args, "folds")?;
                let key = eval_key(name, &options, attribute, folds_arg, arff);
                if let Some(summary) = self.cache.get_eval(key) {
                    return Ok(SoapValue::Text(summary.to_string()));
                }
                let folds = folds_arg.clamp(2, 100) as usize;
                let ds = dataset_with_class(arff, attribute)?;
                let name = name.to_string();
                let eval = dm_algorithms::eval::cross_validate(
                    || {
                        let mut m = make_classifier(&name)?;
                        for (flag, value) in parse_options_string(&options) {
                            m.set_option(&flag, &value)?;
                        }
                        Ok(m)
                    },
                    &ds,
                    folds,
                    1,
                )
                .map_err(algo_fault)?;
                let summary = eval.summary();
                self.cache.insert_eval(key, Arc::from(summary.as_str()));
                Ok(SoapValue::Text(summary))
            }
            "getCacheStats" => Ok(SoapValue::List(vec![
                stats_row(&self.cache.model_stats()),
                stats_row(&self.cache.eval_stats()),
            ])),
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_data::corpus::breast_cancer_arff;

    fn args_for(classifier: &str) -> Vec<(String, SoapValue)> {
        vec![
            ("dataset".to_string(), SoapValue::Text(breast_cancer_arff())),
            (
                "classifier".to_string(),
                SoapValue::Text(classifier.to_string()),
            ),
            ("options".to_string(), SoapValue::Text(String::new())),
            (
                "attribute".to_string(),
                SoapValue::Text("Class".to_string()),
            ),
        ]
    }

    #[test]
    fn get_classifiers_lists_registry() {
        let s = ClassifierService::new();
        let v = s.invoke("getClassifiers", &[]).unwrap();
        let list = v.as_list().unwrap();
        assert!(list.len() >= 13);
        assert!(list.iter().any(|x| x.as_text().unwrap() == "J48"));
    }

    #[test]
    fn get_options_for_j48() {
        let s = ClassifierService::new();
        let v = s
            .invoke(
                "getOptions",
                &[("classifier".to_string(), SoapValue::Text("J48".into()))],
            )
            .unwrap();
        let opts = v.as_list().unwrap();
        assert_eq!(opts.len(), 3); // -C, -M, -U
        let first = opts[0].as_list().unwrap();
        assert_eq!(first[0].as_text().unwrap(), "-C");
    }

    #[test]
    fn classify_instance_breast_cancer_j48() {
        // The case study path: classify the breast-cancer set with J48.
        let s = ClassifierService::new();
        let v = s.invoke("classifyInstance", &args_for("J48")).unwrap();
        let text = v.as_text().unwrap();
        assert!(text.contains("node-caps"), "root split missing:\n{text}");
        assert!(text.contains("Number of Leaves"));
    }

    #[test]
    fn classify_with_options() {
        let s = ClassifierService::new();
        let mut args = args_for("J48");
        args[2].1 = SoapValue::Text("-M 30".into());
        let v = s.invoke("classifyInstance", &args).unwrap();
        assert!(v.as_text().unwrap().contains("J48"));
    }

    #[test]
    fn classify_graph_returns_svg() {
        let s = ClassifierService::new();
        let v = s.invoke("classifyGraph", &args_for("J48")).unwrap();
        let svg = v.as_text().unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("node-caps"));
    }

    #[test]
    fn graph_for_non_tree_model_faults() {
        let s = ClassifierService::new();
        let err = s
            .invoke("classifyGraph", &args_for("NaiveBayes"))
            .unwrap_err();
        assert_eq!(err.code, "Client");
    }

    #[test]
    fn cross_validate_summary() {
        let s = ClassifierService::new();
        let mut args = args_for("ZeroR");
        args.push(("folds".to_string(), SoapValue::Int(5)));
        let v = s.invoke("crossValidate", &args).unwrap();
        let text = v.as_text().unwrap();
        assert!(text.contains("Correctly Classified"));
        assert!(text.contains("Confusion Matrix"));
    }

    #[test]
    fn unknown_classifier_faults() {
        let s = ClassifierService::new();
        let err = s.invoke("classifyInstance", &args_for("C5.0")).unwrap_err();
        assert_eq!(err.code, "Client");
    }

    #[test]
    fn bad_dataset_faults() {
        let s = ClassifierService::new();
        let args = vec![
            ("dataset".to_string(), SoapValue::Text("not arff".into())),
            ("classifier".to_string(), SoapValue::Text("J48".into())),
            ("options".to_string(), SoapValue::Text(String::new())),
            ("attribute".to_string(), SoapValue::Text("Class".into())),
        ];
        assert_eq!(
            s.invoke("classifyInstance", &args).unwrap_err().code,
            "Client"
        );
    }

    #[test]
    fn wsdl_has_seven_operations() {
        let s = ClassifierService::new();
        let wsdl = s.wsdl();
        assert_eq!(wsdl.operations.len(), 7);
        assert_eq!(
            wsdl.find_operation("classifyInstance")
                .unwrap()
                .inputs
                .len(),
            4
        );
        assert_eq!(
            wsdl.find_operation("classifyInstances")
                .unwrap()
                .inputs
                .len(),
            5
        );
        assert!(wsdl.find_operation("getCacheStats").is_ok());
    }

    #[test]
    fn classify_instances_batch_matches_single_scoring() {
        let s = ClassifierService::new();
        let mut args = args_for("J48");
        // Score the training set itself as the batch.
        args.push((
            "instances".to_string(),
            SoapValue::Text(breast_cancer_arff()),
        ));
        let v = s.invoke("classifyInstances", &args).unwrap();
        let preds = v.as_list().unwrap();
        assert_eq!(preds.len(), 286);
        let valid = ["no-recurrence-events", "recurrence-events"];
        assert!(preds.iter().all(|p| valid.contains(&p.as_text().unwrap())));
        // Byte-identical envelopes at every pool size.
        for threads in [1, 2, 8] {
            let again = dm_algorithms::pool::with_threads(threads, || {
                s.invoke("classifyInstances", &args).unwrap()
            });
            assert_eq!(again, v, "threads={threads}");
        }
    }

    #[test]
    fn classify_instances_requires_instances_argument() {
        let s = ClassifierService::new();
        let err = s.invoke("classifyInstances", &args_for("J48")).unwrap_err();
        assert_eq!(err.code, "Client");
        assert!(err.message.contains("instances"));
    }

    #[test]
    fn repeat_classification_reuses_the_trained_model() {
        let s = ClassifierService::new();
        let cold = s.invoke("classifyInstance", &args_for("J48")).unwrap();
        // classifyGraph on the same (dataset, classifier, options,
        // attribute) reuses the cached model rather than retraining.
        s.invoke("classifyGraph", &args_for("J48")).unwrap();
        let warm = s.invoke("classifyInstance", &args_for("J48")).unwrap();
        assert_eq!(cold, warm, "cached model must reproduce the output");
        let stats = s.cache().model_stats();
        assert_eq!(stats.lookups, 3);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.hits + stats.misses, stats.lookups);
    }

    #[test]
    fn changed_options_miss_the_model_cache() {
        let s = ClassifierService::new();
        s.invoke("classifyInstance", &args_for("J48")).unwrap();
        let mut args = args_for("J48");
        args[2].1 = SoapValue::Text("-M 30".into());
        s.invoke("classifyInstance", &args).unwrap();
        let stats = s.cache().model_stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn cross_validation_results_are_cached() {
        let s = ClassifierService::new();
        let mut args = args_for("ZeroR");
        args.push(("folds".to_string(), SoapValue::Int(5)));
        let cold = s.invoke("crossValidate", &args).unwrap();
        let warm = s.invoke("crossValidate", &args).unwrap();
        assert_eq!(cold, warm);
        let stats = s.cache().eval_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn cache_stats_operation_reports_counters() {
        let s = ClassifierService::new();
        s.invoke("classifyInstance", &args_for("J48")).unwrap();
        s.invoke("classifyInstance", &args_for("J48")).unwrap();
        let v = s.invoke("getCacheStats", &[]).unwrap();
        let rows = v.as_list().unwrap();
        assert_eq!(rows.len(), 2);
        let models = rows[0].as_list().unwrap();
        // [lookups, hits, misses, insertions, evictions, entries]
        assert_eq!(models[0], SoapValue::Int(2));
        assert_eq!(models[1], SoapValue::Int(1));
        assert_eq!(models[2], SoapValue::Int(1));
        assert_eq!(models[5], SoapValue::Int(1));
    }
}
