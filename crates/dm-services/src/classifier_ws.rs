//! The general Classifier Web Service (§4.1):
//!
//! > "we have opted to implement a general Classifier Web Service to
//! > act as a wrapper for a complete set of classifiers available in
//! > WEKA. The general Classifier Web Service has the following
//! > operations: (1) getClassifiers, (2) getOptions and
//! > (3) ClassifyInstance."
//!
//! `classifyInstance` takes the paper's four inputs — dataset (ARFF),
//! classifier name, options string, and the attribute to classify on —
//! and returns the textual model. `classifyGraph` returns the tree as
//! SVG when the model is tree-shaped, and `crossValidate` covers the
//! "testing the discovered knowledge" requirement.

use crate::support::{algo_fault, dataset_with_class, int_arg, opt_text_arg, text_arg};
use dm_algorithms::options::parse_options_string;
use dm_algorithms::registry::{classifier_names, make_classifier};
use dm_wsrf::container::{ServiceFault, WebService};
use dm_wsrf::soap::SoapValue;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};

/// The general Classifier Web Service.
#[derive(Debug, Default)]
pub struct ClassifierService;

impl ClassifierService {
    /// Create the service.
    pub fn new() -> ClassifierService {
        ClassifierService
    }

    fn build_model(
        args: &[(String, SoapValue)],
    ) -> Result<
        (
            Box<dyn dm_algorithms::classifiers::Classifier>,
            dm_data::Dataset,
        ),
        ServiceFault,
    > {
        let arff = text_arg(args, "dataset")?;
        let name = text_arg(args, "classifier")?;
        let options = opt_text_arg(args, "options")?.unwrap_or("");
        let attribute = text_arg(args, "attribute")?;
        let ds = dataset_with_class(arff, attribute)?;
        let mut model = make_classifier(name).map_err(algo_fault)?;
        for (flag, value) in parse_options_string(options) {
            model.set_option(&flag, &value).map_err(algo_fault)?;
        }
        model.train(&ds).map_err(algo_fault)?;
        Ok((model, ds))
    }
}

impl WebService for ClassifierService {
    fn name(&self) -> &str {
        "Classifier"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("Classifier", "")
            .operation(
                Operation::new("getClassifiers", vec![], Part::new("classifiers", "list"))
                    .doc("return the list of available classifiers known to the service"),
            )
            .operation(
                Operation::new(
                    "getOptions",
                    vec![Part::new("classifier", "string")],
                    Part::new("options", "list"),
                )
                .doc("return the required and optional properties of a classifier"),
            )
            .operation(
                Operation::new(
                    "classifyInstance",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("classifier", "string"),
                        Part::new("options", "string"),
                        Part::new("attribute", "string"),
                    ],
                    Part::new("model", "string"),
                )
                .doc("train the named classifier on an ARFF dataset and return the textual model"),
            )
            .operation(
                Operation::new(
                    "classifyGraph",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("classifier", "string"),
                        Part::new("options", "string"),
                        Part::new("attribute", "string"),
                    ],
                    Part::new("graph", "string"),
                )
                .doc("train and return a graphical (SVG) rendering of a tree-shaped model"),
            )
            .operation(
                Operation::new(
                    "crossValidate",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("classifier", "string"),
                        Part::new("options", "string"),
                        Part::new("attribute", "string"),
                        Part::new("folds", "long"),
                    ],
                    Part::new("evaluation", "string"),
                )
                .doc("stratified k-fold cross-validation summary"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        match operation {
            "getClassifiers" => Ok(SoapValue::List(
                classifier_names()
                    .into_iter()
                    .map(|n| SoapValue::Text(n.to_string()))
                    .collect(),
            )),
            "getOptions" => {
                let name = text_arg(args, "classifier")?;
                let model = make_classifier(name).map_err(algo_fault)?;
                Ok(SoapValue::List(
                    model
                        .option_descriptors()
                        .into_iter()
                        .map(|d| {
                            SoapValue::List(vec![
                                SoapValue::Text(d.flag.to_string()),
                                SoapValue::Text(d.name.to_string()),
                                SoapValue::Text(d.description.to_string()),
                                SoapValue::Text(d.default.clone()),
                            ])
                        })
                        .collect(),
                ))
            }
            "classifyInstance" => {
                let (model, _) = Self::build_model(args)?;
                Ok(SoapValue::Text(model.describe()))
            }
            "classifyGraph" => {
                let (model, _) = Self::build_model(args)?;
                let tree = model.tree_model().ok_or_else(|| {
                    ServiceFault::client(format!(
                        "classifier {:?} does not produce a tree graph",
                        model.name()
                    ))
                })?;
                Ok(SoapValue::Text(crate::support::tree_to_svg(&tree)))
            }
            "crossValidate" => {
                let arff = text_arg(args, "dataset")?;
                let name = text_arg(args, "classifier")?;
                let options = opt_text_arg(args, "options")?.unwrap_or("").to_string();
                let attribute = text_arg(args, "attribute")?;
                let folds = int_arg(args, "folds")?.clamp(2, 100) as usize;
                let ds = dataset_with_class(arff, attribute)?;
                let name = name.to_string();
                let eval = dm_algorithms::eval::cross_validate(
                    || {
                        let mut m = make_classifier(&name)?;
                        for (flag, value) in parse_options_string(&options) {
                            m.set_option(&flag, &value)?;
                        }
                        Ok(m)
                    },
                    &ds,
                    folds,
                    1,
                )
                .map_err(algo_fault)?;
                Ok(SoapValue::Text(eval.summary()))
            }
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_data::corpus::breast_cancer_arff;

    fn args_for(classifier: &str) -> Vec<(String, SoapValue)> {
        vec![
            ("dataset".to_string(), SoapValue::Text(breast_cancer_arff())),
            (
                "classifier".to_string(),
                SoapValue::Text(classifier.to_string()),
            ),
            ("options".to_string(), SoapValue::Text(String::new())),
            (
                "attribute".to_string(),
                SoapValue::Text("Class".to_string()),
            ),
        ]
    }

    #[test]
    fn get_classifiers_lists_registry() {
        let s = ClassifierService::new();
        let v = s.invoke("getClassifiers", &[]).unwrap();
        let list = v.as_list().unwrap();
        assert!(list.len() >= 13);
        assert!(list.iter().any(|x| x.as_text().unwrap() == "J48"));
    }

    #[test]
    fn get_options_for_j48() {
        let s = ClassifierService::new();
        let v = s
            .invoke(
                "getOptions",
                &[("classifier".to_string(), SoapValue::Text("J48".into()))],
            )
            .unwrap();
        let opts = v.as_list().unwrap();
        assert_eq!(opts.len(), 3); // -C, -M, -U
        let first = opts[0].as_list().unwrap();
        assert_eq!(first[0].as_text().unwrap(), "-C");
    }

    #[test]
    fn classify_instance_breast_cancer_j48() {
        // The case study path: classify the breast-cancer set with J48.
        let s = ClassifierService::new();
        let v = s.invoke("classifyInstance", &args_for("J48")).unwrap();
        let text = v.as_text().unwrap();
        assert!(text.contains("node-caps"), "root split missing:\n{text}");
        assert!(text.contains("Number of Leaves"));
    }

    #[test]
    fn classify_with_options() {
        let s = ClassifierService::new();
        let mut args = args_for("J48");
        args[2].1 = SoapValue::Text("-M 30".into());
        let v = s.invoke("classifyInstance", &args).unwrap();
        assert!(v.as_text().unwrap().contains("J48"));
    }

    #[test]
    fn classify_graph_returns_svg() {
        let s = ClassifierService::new();
        let v = s.invoke("classifyGraph", &args_for("J48")).unwrap();
        let svg = v.as_text().unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("node-caps"));
    }

    #[test]
    fn graph_for_non_tree_model_faults() {
        let s = ClassifierService::new();
        let err = s
            .invoke("classifyGraph", &args_for("NaiveBayes"))
            .unwrap_err();
        assert_eq!(err.code, "Client");
    }

    #[test]
    fn cross_validate_summary() {
        let s = ClassifierService::new();
        let mut args = args_for("ZeroR");
        args.push(("folds".to_string(), SoapValue::Int(5)));
        let v = s.invoke("crossValidate", &args).unwrap();
        let text = v.as_text().unwrap();
        assert!(text.contains("Correctly Classified"));
        assert!(text.contains("Confusion Matrix"));
    }

    #[test]
    fn unknown_classifier_faults() {
        let s = ClassifierService::new();
        let err = s.invoke("classifyInstance", &args_for("C5.0")).unwrap_err();
        assert_eq!(err.code, "Client");
    }

    #[test]
    fn bad_dataset_faults() {
        let s = ClassifierService::new();
        let args = vec![
            ("dataset".to_string(), SoapValue::Text("not arff".into())),
            ("classifier".to_string(), SoapValue::Text("J48".into())),
            ("options".to_string(), SoapValue::Text(String::new())),
            ("attribute".to_string(), SoapValue::Text("Class".into())),
        ];
        assert_eq!(
            s.invoke("classifyInstance", &args).unwrap_err().code,
            "Client"
        );
    }

    #[test]
    fn wsdl_has_five_operations() {
        let s = ClassifierService::new();
        let wsdl = s.wsdl();
        assert_eq!(wsdl.operations.len(), 5);
        assert_eq!(
            wsdl.find_operation("classifyInstance")
                .unwrap()
                .inputs
                .len(),
            4
        );
    }
}
