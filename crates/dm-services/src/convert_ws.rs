//! Data-handling Web Services (§4.3, §5.3): format conversion
//! (CSV↔ARFF), dataset summaries (the Figure-3 table), attribute
//! listing for the attributeSelector tool, and the URL reader — "a Web
//! Service to read the data file from a URL and convert this into a
//! format suitable for analysis". The URL reader resolves against a
//! registered URL→content map (the offline stand-in for the UCI
//! repository; see DESIGN.md).

use crate::support::{data_fault, text_arg};
use dm_data::convert::{convert, DataFormat};
use dm_data::summary::DatasetSummary;
use dm_wsrf::container::{ServiceFault, WebService};
use dm_wsrf::soap::SoapValue;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};
use parking_lot::RwLock;
use std::collections::HashMap;

/// The data conversion / inspection Web Service.
#[derive(Debug, Default)]
pub struct DataConversionService;

impl DataConversionService {
    /// Create the service.
    pub fn new() -> DataConversionService {
        DataConversionService
    }
}

impl WebService for DataConversionService {
    fn name(&self) -> &str {
        "DataConversion"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("DataConversion", "")
            .operation(
                Operation::new(
                    "csvToArff",
                    vec![Part::new("csv", "string")],
                    Part::new("arff", "string"),
                )
                .doc("convert CSV (e.g. exported from MS-Excel) to ARFF"),
            )
            .operation(
                Operation::new(
                    "arffToCsv",
                    vec![Part::new("arff", "string")],
                    Part::new("csv", "string"),
                )
                .doc("convert ARFF to CSV"),
            )
            .operation(
                Operation::new(
                    "summary",
                    vec![Part::new("dataset", "string")],
                    Part::new("summary", "string"),
                )
                .doc("the per-attribute summary table (Figure 3)"),
            )
            .operation(
                Operation::new(
                    "attributes",
                    vec![Part::new("dataset", "string")],
                    Part::new("attributes", "list"),
                )
                .doc("attribute names, for the attributeSelector tool"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        match operation {
            "csvToArff" => {
                let csv = text_arg(args, "csv")?;
                let arff = convert(csv, DataFormat::Csv, DataFormat::Arff).map_err(data_fault)?;
                Ok(SoapValue::Text(arff))
            }
            "arffToCsv" => {
                let arff = text_arg(args, "arff")?;
                let csv = convert(arff, DataFormat::Arff, DataFormat::Csv).map_err(data_fault)?;
                Ok(SoapValue::Text(csv))
            }
            "summary" => {
                let text = text_arg(args, "dataset")?;
                let format = DataFormat::sniff(text);
                let ds = dm_data::convert::parse(format, text).map_err(data_fault)?;
                Ok(SoapValue::Text(DatasetSummary::of(&ds).to_table_string()))
            }
            "attributes" => {
                let text = text_arg(args, "dataset")?;
                let format = DataFormat::sniff(text);
                let ds = dm_data::convert::parse(format, text).map_err(data_fault)?;
                Ok(SoapValue::List(
                    ds.attributes()
                        .iter()
                        .map(|a| SoapValue::Text(a.name().to_string()))
                        .collect(),
                ))
            }
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

/// The URL-reader Web Service: fetches a registered URL's content and
/// (optionally) converts it to ARFF. Content is registered up front —
/// the paper's service fetched from the live UCI repository; offline,
/// the corpus generators provide the bytes (substitution documented in
/// DESIGN.md).
#[derive(Debug, Default)]
pub struct UrlReaderService {
    content: RwLock<HashMap<String, String>>,
}

impl UrlReaderService {
    /// Create with no registered URLs.
    pub fn new() -> UrlReaderService {
        UrlReaderService::default()
    }

    /// Create with the standard corpus URLs registered (the UCI
    /// breast-cancer dataset of the case study).
    pub fn with_standard_corpus() -> UrlReaderService {
        let s = UrlReaderService::new();
        s.register(
            "http://www.ics.uci.edu/mlearn/breast-cancer.arff",
            dm_data::corpus::breast_cancer_arff(),
        );
        s
    }

    /// Register content for a URL.
    pub fn register<U: Into<String>, C: Into<String>>(&self, url: U, content: C) {
        self.content.write().insert(url.into(), content.into());
    }
}

impl WebService for UrlReaderService {
    fn name(&self) -> &str {
        "UrlReader"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("UrlReader", "")
            .operation(
                Operation::new(
                    "readUrl",
                    vec![Part::new("url", "string")],
                    Part::new("content", "string"),
                )
                .doc("fetch raw content from a URL"),
            )
            .operation(
                Operation::new(
                    "readArff",
                    vec![Part::new("url", "string")],
                    Part::new("arff", "string"),
                )
                .doc("fetch a dataset from a URL and convert it into ARFF"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        let url = text_arg(args, "url")?;
        let content = self
            .content
            .read()
            .get(url)
            .cloned()
            .ok_or_else(|| ServiceFault::client(format!("404: no content at {url:?}")))?;
        match operation {
            "readUrl" => Ok(SoapValue::Text(content)),
            "readArff" => {
                let format = DataFormat::sniff(&content);
                let arff = convert(&content, format, DataFormat::Arff).map_err(data_fault)?;
                Ok(SoapValue::Text(arff))
            }
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_arff_roundtrip() {
        let s = DataConversionService::new();
        let v = s
            .invoke(
                "csvToArff",
                &[("csv".to_string(), SoapValue::Text("a,b\n1,x\n2,y\n".into()))],
            )
            .unwrap();
        let arff = v.as_text().unwrap().to_string();
        assert!(arff.contains("@attribute a numeric"));
        let v2 = s
            .invoke("arffToCsv", &[("arff".to_string(), SoapValue::Text(arff))])
            .unwrap();
        assert!(v2.as_text().unwrap().starts_with("a,b"));
    }

    #[test]
    fn summary_reproduces_figure3_header() {
        let s = DataConversionService::new();
        let v = s
            .invoke(
                "summary",
                &[(
                    "dataset".to_string(),
                    SoapValue::Text(dm_data::corpus::breast_cancer_arff()),
                )],
            )
            .unwrap();
        let table = v.as_text().unwrap();
        assert!(table.contains("Num Instances 286"));
        assert!(table.contains("Missing values 9 / 0.3%"));
        assert!(table.contains("node-caps"));
    }

    #[test]
    fn attributes_listed() {
        let s = DataConversionService::new();
        let v = s
            .invoke(
                "attributes",
                &[(
                    "dataset".to_string(),
                    SoapValue::Text(dm_data::corpus::breast_cancer_arff()),
                )],
            )
            .unwrap();
        let names: Vec<&str> = v
            .as_list()
            .unwrap()
            .iter()
            .map(|x| x.as_text().unwrap())
            .collect();
        assert_eq!(names.len(), 10);
        assert!(names.contains(&"node-caps"));
    }

    #[test]
    fn url_reader_serves_registered_content() {
        let s = UrlReaderService::with_standard_corpus();
        let v = s
            .invoke(
                "readArff",
                &[(
                    "url".to_string(),
                    SoapValue::Text("http://www.ics.uci.edu/mlearn/breast-cancer.arff".into()),
                )],
            )
            .unwrap();
        assert!(v.as_text().unwrap().contains("@relation breast-cancer"));
    }

    #[test]
    fn url_reader_404() {
        let s = UrlReaderService::new();
        let err = s
            .invoke(
                "readUrl",
                &[("url".to_string(), SoapValue::Text("http://nope".into()))],
            )
            .unwrap_err();
        assert!(err.message.contains("404"));
    }

    #[test]
    fn url_reader_converts_csv_content() {
        let s = UrlReaderService::new();
        s.register("http://example/x.csv", "a,b\n1,2\n");
        let v = s
            .invoke(
                "readArff",
                &[(
                    "url".to_string(),
                    SoapValue::Text("http://example/x.csv".into()),
                )],
            )
            .unwrap();
        assert!(v.as_text().unwrap().contains("@relation"));
    }

    #[test]
    fn bad_csv_faults() {
        let s = DataConversionService::new();
        let err = s
            .invoke(
                "csvToArff",
                &[("csv".to_string(), SoapValue::Text("".into()))],
            )
            .unwrap_err();
        assert_eq!(err.code, "Client");
    }
}
