//! One-call deployment of the FAEHIM service suite onto a container
//! host, and UDDI publication — what installing the toolkit's WAR files
//! into Tomcat plus jUDDI registration did on the paper's testbed
//! (§4.6).

use crate::assoc_ws::AssociationService;
use crate::attrsel_ws::AttributeSelectionService;
use crate::classifier_ws::ClassifierService;
use crate::clusterer_ws::{ClustererService, CobwebService};
use crate::convert_ws::{DataConversionService, UrlReaderService};
use crate::j48_ws::J48Service;
use crate::plot_ws::{MathService, PlotService};
use dm_wsrf::container::ServiceContainer;
use dm_wsrf::error::Result;
use dm_wsrf::registry::{ServiceEntry, UddiRegistry};

/// Deploy every FAEHIM Web Service into `container`. Returns the list
/// of deployed service names.
pub fn deploy_faehim_suite(container: &ServiceContainer) -> Result<Vec<String>> {
    container.deploy(std::sync::Arc::new(ClassifierService::new()));
    container.deploy(std::sync::Arc::new(J48Service::new()?));
    container.deploy(std::sync::Arc::new(CobwebService::new()));
    container.deploy(std::sync::Arc::new(ClustererService::new()));
    container.deploy(std::sync::Arc::new(AssociationService::new()));
    container.deploy(std::sync::Arc::new(AttributeSelectionService::new()));
    container.deploy(std::sync::Arc::new(DataConversionService::new()));
    container.deploy(std::sync::Arc::new(UrlReaderService::with_standard_corpus()));
    container.deploy(std::sync::Arc::new(PlotService::new()));
    container.deploy(std::sync::Arc::new(MathService::new()));
    container.deploy(std::sync::Arc::new(
        crate::dataaccess_ws::DataAccessService::with_standard_resources(),
    ));
    container.deploy(std::sync::Arc::new(
        crate::session_ws::SessionService::default(),
    ));
    container.deploy(std::sync::Arc::new(
        crate::preprocess_ws::PreprocessService::new(),
    ));
    container.deploy(std::sync::Arc::new(
        crate::stream_ws::DataStreamService::new(),
    ));
    Ok(container.deployed())
}

/// Category tags per service, used for UDDI publication.
fn categories_of(service: &str) -> Vec<String> {
    let cats: &[&str] = match service {
        "Classifier" | "J48" => &["datamining", "classifier"],
        "Cobweb" | "Clusterer" => &["datamining", "clustering"],
        "Association" => &["datamining", "association-rules"],
        "AttributeSelection" => &["datamining", "attribute-selection"],
        "DataConversion" | "UrlReader" | "Preprocess" => &["data-handling"],
        "DataStream" => &["data-handling", "streaming"],
        "DataAccess" => &["data-handling", "relational"],
        "Session" => &["session-management"],
        "Plot" | "Math" => &["visualisation"],
        _ => &["misc"],
    };
    cats.iter().map(|s| s.to_string()).collect()
}

/// Publish every service deployed on `container` into `registry`.
pub fn publish_suite(container: &ServiceContainer, registry: &UddiRegistry) -> Result<()> {
    for name in container.deployed() {
        let wsdl = container.wsdl_of(&name)?;
        registry.publish(ServiceEntry {
            name: name.clone(),
            host: container.host().to_string(),
            wsdl_url: format!("{}?wsdl", wsdl.endpoint),
            categories: categories_of(&name),
            description: wsdl
                .operations
                .first()
                .map(|o| o.documentation.clone())
                .unwrap_or_default(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_deploys_fourteen_services() {
        let c = ServiceContainer::new("host-a");
        let names = deploy_faehim_suite(&c).unwrap();
        assert_eq!(names.len(), 14);
        for expected in [
            "Classifier",
            "J48",
            "Cobweb",
            "Clusterer",
            "Association",
            "AttributeSelection",
            "DataConversion",
            "UrlReader",
            "DataAccess",
            "Session",
            "Plot",
            "Math",
            "DataStream",
        ] {
            assert!(names.contains(&expected.to_string()), "{expected} missing");
        }
    }

    #[test]
    fn publication_fills_registry() {
        let c = ServiceContainer::new("host-a");
        deploy_faehim_suite(&c).unwrap();
        let registry = UddiRegistry::new();
        publish_suite(&c, &registry).unwrap();
        assert_eq!(registry.len(), 14);
        let classifiers = registry.find_by_category("classifier");
        assert_eq!(classifiers.len(), 2);
        assert!(classifiers[0].wsdl_url.ends_with("?wsdl"));
        assert_eq!(registry.find_by_category("visualisation").len(), 2);
        assert_eq!(registry.find_by_category("streaming").len(), 1);
    }
}
