//! The dedicated J48 Web Service (§4.1) with the §4.5 instance
//! lifecycle.
//!
//! Operations: `classify` (textual decision tree), `classifyGraph`
//! (SVG rendering — Figure 4), `predict` (label unseen instances with
//! the current model), and the lifecycle controls `setLifecycle` /
//! `getLifecycleStats` used by experiment E4.
//!
//! The model instance is managed by a [`LifecycleManager`]: under
//! `SerializePerCall` every invocation re-builds the J48 object from
//! its serialised state on disk and serialises it back afterwards —
//! exactly the behaviour the paper observed as "a significant
//! performance penalty" — while `InMemoryHarness` reproduces the
//! paper's fix.

use crate::support::{algo_fault, dataset_with_class, opt_text_arg, text_arg, tree_to_svg};
use dm_algorithms::classifiers::{Classifier, J48};
use dm_algorithms::options::{parse_options_string, Configurable};
use dm_algorithms::state::Stateful;
use dm_wsrf::container::{ServiceFault, WebService};
use dm_wsrf::lifecycle::{LifecycleManager, LifecyclePolicy};
use dm_wsrf::soap::SoapValue;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};

/// The J48 Web Service.
pub struct J48Service {
    lifecycle: LifecycleManager,
}

impl J48Service {
    /// Create with the default Axis-like `SerializePerCall` lifecycle.
    pub fn new() -> Result<J48Service, dm_wsrf::WsError> {
        Ok(J48Service {
            lifecycle: LifecycleManager::new(LifecyclePolicy::SerializePerCall)?,
        })
    }

    /// Create with an explicit lifecycle policy.
    pub fn with_policy(policy: LifecyclePolicy) -> Result<J48Service, dm_wsrf::WsError> {
        Ok(J48Service {
            lifecycle: LifecycleManager::new(policy)?,
        })
    }

    /// `(serialisations, deserialisations, cache hits)` so far.
    pub fn lifecycle_stats(&self) -> (u64, u64, u64) {
        self.lifecycle.stats()
    }

    /// Run `f` against the managed J48 instance under the current
    /// lifecycle policy.
    fn with_model<R>(
        &self,
        f: impl FnOnce(&mut J48) -> Result<R, ServiceFault>,
    ) -> Result<R, ServiceFault> {
        self.lifecycle
            .with_instance(
                "j48-model",
                J48::new,
                |bytes| {
                    let mut model = J48::new();
                    model
                        .decode_state(bytes)
                        .map_err(|e| dm_wsrf::WsError::Store(e.to_string()))?;
                    Ok(model)
                },
                |model| model.encode_state(),
                f,
            )
            .map_err(|e| ServiceFault::server(e.to_string()))?
    }

    fn train_args(
        args: &[(String, SoapValue)],
    ) -> Result<(dm_data::Dataset, Vec<(String, String)>), ServiceFault> {
        let arff = text_arg(args, "dataset")?;
        let attribute = text_arg(args, "attribute")?;
        let options = opt_text_arg(args, "options")?.unwrap_or("");
        let ds = dataset_with_class(arff, attribute)?;
        Ok((ds, parse_options_string(options)))
    }
}

impl WebService for J48Service {
    fn name(&self) -> &str {
        "J48"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("J48", "")
            .operation(
                Operation::new(
                    "classify",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("attribute", "string"),
                        Part::new("options", "string"),
                    ],
                    Part::new("model", "string"),
                )
                .doc("apply the J48 (C4.5) algorithm; returns the textual decision tree"),
            )
            .operation(
                Operation::new(
                    "classifyGraph",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("attribute", "string"),
                        Part::new("options", "string"),
                    ],
                    Part::new("graph", "string"),
                )
                .doc("apply J48 and return the decision tree as an SVG graph"),
            )
            .operation(
                Operation::new(
                    "predict",
                    vec![
                        Part::new("dataset", "string"),
                        Part::new("attribute", "string"),
                    ],
                    Part::new("predictions", "list"),
                )
                .doc("label the given instances with the previously built tree"),
            )
            .operation(
                Operation::new(
                    "setLifecycle",
                    vec![Part::new("policy", "string")],
                    Part::new("ack", "string"),
                )
                .doc("switch between serialize-per-call and the in-memory harness (§4.5)"),
            )
            .operation(
                Operation::new("getLifecycleStats", vec![], Part::new("stats", "list"))
                    .doc("serialisations / deserialisations / cache hits"),
            )
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> Result<SoapValue, ServiceFault> {
        match operation {
            "classify" => {
                let (ds, options) = Self::train_args(args)?;
                self.with_model(|model| {
                    for (flag, value) in &options {
                        model.set_option(flag, value).map_err(algo_fault)?;
                    }
                    model.train(&ds).map_err(algo_fault)?;
                    Ok(SoapValue::Text(model.describe()))
                })
            }
            "classifyGraph" => {
                let (ds, options) = Self::train_args(args)?;
                self.with_model(|model| {
                    for (flag, value) in &options {
                        model.set_option(flag, value).map_err(algo_fault)?;
                    }
                    model.train(&ds).map_err(algo_fault)?;
                    let tree = model
                        .tree_model()
                        .ok_or_else(|| ServiceFault::server("training produced no tree"))?;
                    Ok(SoapValue::Text(tree_to_svg(&tree)))
                })
            }
            "predict" => {
                let arff = text_arg(args, "dataset")?;
                let attribute = text_arg(args, "attribute")?;
                let ds = dataset_with_class(arff, attribute)?;
                self.with_model(|model| {
                    let class_attr = ds.class_attribute().map_err(crate::support::data_fault)?;
                    let labels: Vec<String> = class_attr.labels().to_vec();
                    let mut out = Vec::with_capacity(ds.num_instances());
                    for r in 0..ds.num_instances() {
                        let c = model.predict(&ds, r).map_err(algo_fault)?;
                        out.push(SoapValue::Text(
                            labels.get(c).cloned().unwrap_or_else(|| format!("#{c}")),
                        ));
                    }
                    Ok(SoapValue::List(out))
                })
            }
            "setLifecycle" => {
                let policy = text_arg(args, "policy")?;
                let policy = match policy {
                    "serialize-per-call" => LifecyclePolicy::SerializePerCall,
                    "in-memory-harness" => LifecyclePolicy::InMemoryHarness,
                    other => {
                        return Err(ServiceFault::client(format!(
                        "unknown lifecycle {other:?} (want serialize-per-call | in-memory-harness)"
                    )))
                    }
                };
                self.lifecycle.set_policy(policy);
                Ok(SoapValue::Text("ok".into()))
            }
            "getLifecycleStats" => {
                let (ser, de, hits) = self.lifecycle.stats();
                Ok(SoapValue::List(vec![
                    SoapValue::Int(ser as i64),
                    SoapValue::Int(de as i64),
                    SoapValue::Int(hits as i64),
                ]))
            }
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_data::corpus::breast_cancer_arff;

    fn classify_args() -> Vec<(String, SoapValue)> {
        vec![
            ("dataset".to_string(), SoapValue::Text(breast_cancer_arff())),
            ("attribute".to_string(), SoapValue::Text("Class".into())),
            ("options".to_string(), SoapValue::Text(String::new())),
        ]
    }

    #[test]
    fn classify_reproduces_figure4_root() {
        let s = J48Service::new().unwrap();
        let v = s.invoke("classify", &classify_args()).unwrap();
        assert!(v.as_text().unwrap().contains("node-caps"));
    }

    #[test]
    fn classify_graph_svg() {
        let s = J48Service::new().unwrap();
        let v = s.invoke("classifyGraph", &classify_args()).unwrap();
        let svg = v.as_text().unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("node-caps"));
    }

    #[test]
    fn per_call_lifecycle_serialises_every_invocation() {
        let s = J48Service::new().unwrap();
        for _ in 0..3 {
            s.invoke("classify", &classify_args()).unwrap();
        }
        let (ser, de, hits) = s.lifecycle_stats();
        assert_eq!(ser, 3);
        assert_eq!(de, 2);
        assert_eq!(hits, 0);
    }

    #[test]
    fn harness_lifecycle_avoids_serialisation() {
        let s = J48Service::with_policy(LifecyclePolicy::InMemoryHarness).unwrap();
        for _ in 0..3 {
            s.invoke("classify", &classify_args()).unwrap();
        }
        let (ser, de, hits) = s.lifecycle_stats();
        assert_eq!(ser, 0);
        assert_eq!(de, 0);
        assert_eq!(hits, 2);
    }

    #[test]
    fn lifecycle_switch_via_operation() {
        let s = J48Service::new().unwrap();
        s.invoke(
            "setLifecycle",
            &[(
                "policy".to_string(),
                SoapValue::Text("in-memory-harness".into()),
            )],
        )
        .unwrap();
        s.invoke("classify", &classify_args()).unwrap();
        s.invoke("classify", &classify_args()).unwrap();
        let stats = s.invoke("getLifecycleStats", &[]).unwrap();
        let list = stats.as_list().unwrap();
        assert_eq!(list[0].as_int().unwrap(), 0); // no serialisations
        assert!(s
            .invoke(
                "setLifecycle",
                &[("policy".to_string(), SoapValue::Text("bogus".into()))]
            )
            .is_err());
    }

    #[test]
    fn predict_after_classify() {
        let s = J48Service::with_policy(LifecyclePolicy::InMemoryHarness).unwrap();
        s.invoke("classify", &classify_args()).unwrap();
        let v = s
            .invoke(
                "predict",
                &[
                    ("dataset".to_string(), SoapValue::Text(breast_cancer_arff())),
                    ("attribute".to_string(), SoapValue::Text("Class".into())),
                ],
            )
            .unwrap();
        let predictions = v.as_list().unwrap();
        assert_eq!(predictions.len(), 286);
        assert!(predictions.iter().all(|p| matches!(
            p.as_text().unwrap(),
            "no-recurrence-events" | "recurrence-events"
        )));
    }

    #[test]
    fn predict_persists_model_across_calls_per_call_policy() {
        // Under serialize-per-call, the trained tree must survive via
        // disk state between classify and predict.
        let s = J48Service::new().unwrap();
        s.invoke("classify", &classify_args()).unwrap();
        let v = s
            .invoke(
                "predict",
                &[
                    ("dataset".to_string(), SoapValue::Text(breast_cancer_arff())),
                    ("attribute".to_string(), SoapValue::Text("Class".into())),
                ],
            )
            .unwrap();
        assert_eq!(v.as_list().unwrap().len(), 286);
    }

    #[test]
    fn unknown_operation_faults() {
        let s = J48Service::new().unwrap();
        assert_eq!(s.invoke("bogus", &[]).unwrap_err().code, "Client");
    }
}
