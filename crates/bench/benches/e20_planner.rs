//! E20 — cost- and locality-aware composition planning: the QoS
//! knapsack planner vs. naive-random and round-robin placement under
//! the E14 overload harness on an E19-style four-host fleet.
//!
//! Each arrival is a four-step mining chain — normalise → rank →
//! train → evaluate — where every step reads the *same* ~16 KiB
//! dataset and hands a small hint forward (the Sadeghiram
//! data-intensive regime: heavy shared input, light intermediate
//! results). Every host deploys all four services behind the E14
//! capacity model (2 workers × 2 ms ⇒ μ = 1000 ops/s per host);
//! open-loop Pareto arrivals offer 4 ops every ~2 ms ⇒ 2000 ops/s —
//! 2× one host's capacity — so placement decides who queues.
//!
//! Three strategies bind each chain to hosts:
//!   * planned — `dm_workflow::planner` over a fresh `CostModel`
//!     snapshot per arrival (queue depth, latency tails, shed rate)
//!     with candidates from the gossip registry's live view;
//!   * round-robin — rotate hosts per step, never co-locating;
//!   * random — a seeded uniform host per step.
//!
//! The planner co-locates the chain on the least-loaded host, so the
//! shared dataset crosses the wire once and the remaining steps ride
//! `DataRef` handles; random/round-robin re-ship it. A second phase
//! degrades one host to a quarter of its throughput: the oblivious
//! baselines keep feeding it blind and shed, while the planner prices
//! the queue it can see and routes around. Asserted: planned moves
//! ≥2× fewer wire bytes than both baselines, beats random on perceived
//! p99 and mean makespan (and both baselines on the degraded fleet),
//! replans byte-identically under the same seed, and mines
//! byte-identical outputs across strategies, planner seeds, fleet
//! health, and compute-pool widths 1 and 4.
//!
//! `FAEHIM_E20_SMOKE=1` shrinks the workload for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_algorithms::classifiers::{Classifier, J48};
use dm_algorithms::pool::{parallel_map, with_threads};
use dm_bench::banner;
use dm_data::corpus::nominal_classification;
use dm_data::Dataset;
use dm_workflow::planner::{Goal, GoalStep, Planner};
use dm_wsrf::container::{CapacityConfig, ServiceFault, WebService};
use dm_wsrf::costmodel::CostModel;
use dm_wsrf::fleet::{splitmix64, GossipConfig, GossipRegistry};
use dm_wsrf::registry::ServiceEntry;
use dm_wsrf::soap::SoapValue;
use dm_wsrf::transport::{DataPlaneConfig, Network, WireStats};
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const HOSTS: [&str; 4] = ["dm-a", "dm-b", "dm-c", "dm-d"];
/// `(service, operation, category)` for the four chain steps.
const STEPS: [(&str, &str, &str); 4] = [
    ("Prep", "normalise", "data-handling"),
    ("Select", "rank", "feature-selection"),
    ("Mine", "train", "classifier"),
    ("Eval", "evaluate", "evaluation"),
];
const WORKERS: usize = 2;
const SERVICE_TIME: Duration = Duration::from_millis(2);
/// Degraded-phase service time for the last host: μ drops to 250 ops/s
/// against the ~500 ops/s an oblivious strategy keeps sending it.
const SLOW_SERVICE_TIME: Duration = Duration::from_millis(8);
const QUEUE_LIMIT: usize = 8;
/// Dataset payload shipped to every step: 1024 × 16 hex chars.
const PAYLOAD_BYTES: usize = 16 * 1024;
/// Mean offered inter-arrival: 4 ops per chain every 2 ms ⇒ 2000 ops/s
/// = 2× one host's μ = workers / service_time = 1000 ops/s.
const BASE_INTERARRIVAL: f64 = 2e-3;
const PARETO_ALPHA: f64 = 1.5;
const ARRIVAL_SEED: u64 = 0xA220;
const PAYLOAD_SEED: u64 = 0xB220;
const PLANNER_SEED: u64 = 0xE20;
/// Client-perceived cost of a shed chain (retry-later), as in E19.
const SHED_PENALTY: Duration = Duration::from_millis(25);
/// Gossip heartbeats are fresh for the whole (≈2 s virtual) run.
const FRESHNESS: Duration = Duration::from_secs(300);

fn smoke() -> bool {
    std::env::var("FAEHIM_E20_SMOKE").is_ok()
}

fn arrivals() -> u32 {
    if smoke() {
        200
    } else {
        800
    }
}

/// FNV-1a over a string: the services' deterministic content hash.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn arg<'a>(args: &'a [(String, SoapValue)], name: &str) -> Result<&'a str, ServiceFault> {
    args.iter()
        .find(|(n, _)| n == name)
        .and_then(|(_, v)| v.as_text().ok())
        .ok_or_else(|| ServiceFault::client(format!("missing {name}")))
}

fn chain_wsdl(service: &str, operation: &str, returns: &str) -> WsdlDocument {
    WsdlDocument::new(service, format!("http://localhost/{service}")).operation(Operation::new(
        operation,
        vec![Part::new("dataset", "string"), Part::new("hint", "string")],
        Part::new("result", returns),
    ))
}

/// Steps 1–2: small deterministic digests of the heavy shared dataset.
struct DigestService {
    service: &'static str,
    operation: &'static str,
    tag: &'static str,
}

impl WebService for DigestService {
    fn name(&self) -> &str {
        self.service
    }

    fn wsdl(&self) -> WsdlDocument {
        chain_wsdl(self.service, self.operation, "string")
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> std::result::Result<SoapValue, ServiceFault> {
        if operation != self.operation {
            return Err(ServiceFault::client(format!("no operation {operation:?}")));
        }
        let digest = fnv1a(arg(args, "dataset")?) ^ fnv1a(arg(args, "hint")?);
        Ok(SoapValue::Text(format!("{}:{digest:016x}", self.tag)))
    }
}

/// Step 3: a J48 trained per host on the same deterministic corpus
/// (every replica holds an identical model) fingerprints the dataset
/// by scoring 64 content-addressed rows through the shared compute
/// pool — the stage the pool-width cross-check leans on.
struct MineService {
    model: J48,
    data: Dataset,
}

fn mine_service() -> Arc<dyn WebService> {
    let data = nominal_classification(200, 4, 3, 2, 0.05, 11);
    let mut model = J48::new();
    model
        .train(&data)
        .expect("J48 trains on the synthetic corpus");
    Arc::new(MineService { model, data })
}

impl WebService for MineService {
    fn name(&self) -> &str {
        "Mine"
    }

    fn wsdl(&self) -> WsdlDocument {
        chain_wsdl("Mine", "train", "string")
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> std::result::Result<SoapValue, ServiceFault> {
        if operation != "train" {
            return Err(ServiceFault::client(format!("no operation {operation:?}")));
        }
        let h = fnv1a(arg(args, "dataset")?) ^ fnv1a(arg(args, "hint")?);
        let rows = self.data.num_instances();
        let labels = parallel_map(64, |k| {
            let row = (splitmix64(h ^ k as u64) as usize) % rows;
            self.model.predict(&self.data, row).unwrap_or(0)
        });
        let digest = labels.iter().enumerate().fold(h, |acc, (k, &l)| {
            splitmix64(acc ^ ((k as u64) << 32) ^ l as u64)
        });
        Ok(SoapValue::Text(format!("model:{digest:016x}")))
    }
}

/// Step 4: folds the dataset and the model fingerprint into the
/// chain's final label — the value the byte-identity checks compare.
struct EvalService;

impl WebService for EvalService {
    fn name(&self) -> &str {
        "Eval"
    }

    fn wsdl(&self) -> WsdlDocument {
        chain_wsdl("Eval", "evaluate", "long")
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> std::result::Result<SoapValue, ServiceFault> {
        if operation != "evaluate" {
            return Err(ServiceFault::client(format!("no operation {operation:?}")));
        }
        let score = splitmix64(fnv1a(arg(args, "dataset")?) ^ fnv1a(arg(args, "hint")?));
        Ok(SoapValue::Int((score >> 1) as i64))
    }
}

/// A per-arrival distinct ~16 KiB dataset (hex text, so envelope
/// escaping cannot inflate it): cross-arrival `DataRef` dedup never
/// fires, only genuine within-chain co-location saves bytes.
fn payload(i: u32) -> String {
    let words = PAYLOAD_BYTES / 16;
    let mut s = String::with_capacity(PAYLOAD_BYTES);
    for k in 0..words {
        let draw = splitmix64(PAYLOAD_SEED ^ (u64::from(i) * words as u64 + k as u64));
        s.push_str(&format!("{draw:016x}"));
    }
    s
}

/// Deterministic heavy-tailed inter-arrival (E19's generator, sans the
/// diurnal ramp): Pareto(α) scaled to the base mean, capped at 50×.
fn interarrival(i: u32) -> Duration {
    let u = ((splitmix64(ARRIVAL_SEED.wrapping_add(u64::from(i))) >> 11) as f64
        / (1u64 << 53) as f64)
        .max(1e-12);
    let x_m = BASE_INTERARRIVAL * (PARETO_ALPHA - 1.0) / PARETO_ALPHA;
    Duration::from_secs_f64((x_m / u.powf(1.0 / PARETO_ALPHA)).min(50.0 * BASE_INTERARRIVAL))
}

/// Four hosts, each deploying the whole chain behind the E14 capacity
/// model, with the data plane on and a converged gossip mesh
/// advertising every replica. With `slow_last`, the final host runs at
/// a quarter throughput — the heterogeneity the planner's telemetry
/// sees and the oblivious baselines cannot.
fn fleet(slow_last: bool) -> (Network, GossipRegistry) {
    let net = Network::new();
    for host in HOSTS {
        let container = net.add_host(host);
        container.deploy(Arc::new(DigestService {
            service: "Prep",
            operation: "normalise",
            tag: "norm",
        }));
        container.deploy(Arc::new(DigestService {
            service: "Select",
            operation: "rank",
            tag: "rank",
        }));
        container.deploy(mine_service());
        container.deploy(Arc::new(EvalService));
        container.set_capacity(Some(CapacityConfig {
            workers: WORKERS,
            queue_limit: Some(QUEUE_LIMIT),
            service_time: if slow_last && host == *HOSTS.last().expect("non-empty fleet") {
                SLOW_SERVICE_TIME
            } else {
                SERVICE_TIME
            },
        }));
    }
    net.enable_data_plane(DataPlaneConfig::default());
    let gossip = GossipRegistry::new(&HOSTS, GossipConfig::default());
    for host in HOSTS {
        let node = gossip.node(host).expect("mesh node");
        for (service, _, category) in STEPS {
            node.publish(
                ServiceEntry {
                    name: service.to_string(),
                    host: host.to_string(),
                    wsdl_url: format!("http://{host}/axis/{service}?wsdl"),
                    categories: vec![category.to_string()],
                    description: String::new(),
                },
                Duration::ZERO,
            );
        }
    }
    gossip
        .sync(HOSTS.len() + 2)
        .expect("initial mesh converges");
    (net, gossip)
}

fn goal() -> Goal {
    Goal {
        steps: STEPS
            .iter()
            .map(|&(_, operation, category)| GoalStep {
                category: category.to_string(),
                operation: operation.to_string(),
                payload_bytes: PAYLOAD_BYTES,
            })
            .collect(),
    }
}

#[derive(Clone, Copy)]
enum Strategy {
    /// QoS knapsack over a fresh telemetry snapshot per arrival.
    Planned { seed: u64 },
    /// Rotate hosts per step: perfectly balanced, never co-located.
    RoundRobin,
    /// Seeded uniform host per step.
    Random { seed: u64 },
}

impl Strategy {
    fn label(&self) -> String {
        match self {
            Strategy::Planned { seed } => format!("planned(seed {seed:#x})"),
            Strategy::RoundRobin => "round-robin".to_string(),
            Strategy::Random { seed } => format!("random(seed {seed:#x})"),
        }
    }
}

#[derive(PartialEq, Eq)]
struct RunResult {
    /// Per-arrival final label; `None` when any step was shed.
    outputs: Vec<Option<i64>>,
    sojourns: Vec<Duration>,
    shed: u64,
    colocated_chains: u64,
    wire: WireStats,
}

/// Bind one arrival's chain to hosts under the given strategy.
fn place(
    strategy: Strategy,
    i: u32,
    goal: &Goal,
    net: &Network,
    gossip: &GossipRegistry,
    now: Duration,
) -> Vec<String> {
    match strategy {
        Strategy::Planned { seed } => {
            // The cost snapshot the planner prices: live queue depths,
            // latency tails, and shed rates — all on the virtual clock.
            let mut cost = CostModel::new();
            cost.observe_monitor(net.monitor());
            cost.observe_loads(&net.load_snapshot());
            for host in HOSTS {
                let container = net.host(host).expect("deployed host");
                if let Some(stats) = container.load_stats(now) {
                    cost.observe_load_stats(host, &stats);
                }
            }
            let view = gossip.node(HOSTS[0]).expect("observer").view_snapshot();
            let candidates =
                |step: &GoalStep| Planner::live_candidates(&view, &step.category, now, FRESHNESS);
            let plan = Planner::seeded(seed)
                .plan(goal, &candidates, &cost, None)
                .expect("a healthy fleet always plans");
            plan.assignments.into_iter().map(|a| a.host).collect()
        }
        // Rotate the chain's starting host per arrival and walk one
        // host per step: uniform per-host load, never co-located, and
        // (unlike a `4·i + j` stride, which degenerates to pinning
        // step j on host j) every host sees every step position.
        Strategy::RoundRobin => (0..STEPS.len())
            .map(|j| HOSTS[(i as usize + j) % HOSTS.len()].to_string())
            .collect(),
        Strategy::Random { seed } => (0..STEPS.len())
            .map(|j| {
                let draw = splitmix64(seed ^ (u64::from(i) * STEPS.len() as u64 + j as u64));
                HOSTS[(draw as usize) % HOSTS.len()].to_string()
            })
            .collect(),
    }
}

/// Drive `arrivals` open-loop chains through a fresh fleet. Arrival
/// instants are pinned with `set_virtual_time` (the E14 open-loop
/// regime); the four steps of one chain run back to back, each
/// shipping the shared dataset plus the previous step's hint.
fn drive(arrivals: u32, strategy: Strategy, slow_last: bool) -> RunResult {
    let (net, gossip) = fleet(slow_last);
    let goal = goal();
    net.reset_wire_stats();
    let mut outputs = Vec::with_capacity(arrivals as usize);
    let mut sojourns = Vec::new();
    let mut shed = 0u64;
    let mut colocated_chains = 0u64;
    let mut t = Duration::ZERO;
    for i in 0..arrivals {
        t += interarrival(i);
        net.set_virtual_time(t);
        if i % 32 == 0 {
            for host in HOSTS {
                let node = gossip.node(host).expect("mesh node");
                for (service, _, _) in STEPS {
                    node.heartbeat(service, host, t);
                }
            }
            gossip.run_round();
        }
        let hosts = place(strategy, i, &goal, &net, &gossip, t);
        if hosts.windows(2).all(|w| w[0] == w[1]) {
            colocated_chains += 1;
        }
        let dataset = payload(i);
        let mut hint = SoapValue::Text(String::new());
        let mut last = None;
        for (j, (service, operation, _)) in STEPS.iter().enumerate() {
            let result = net.invoke(
                &hosts[j],
                service,
                operation,
                vec![
                    ("dataset".into(), SoapValue::Text(dataset.clone())),
                    ("hint".into(), hint.clone()),
                ],
            );
            match result {
                Ok(v) => {
                    last = v.as_int().ok();
                    hint = v;
                }
                Err(e) if e.is_server_busy() => {
                    last = None;
                    break;
                }
                Err(e) => panic!("unexpected failure at arrival {i} step {j}: {e}"),
            }
        }
        match last {
            Some(label) => {
                sojourns.push(net.virtual_time() - t);
                outputs.push(Some(label));
            }
            None => {
                shed += 1;
                outputs.push(None);
            }
        }
    }
    RunResult {
        outputs,
        sojourns,
        shed,
        colocated_chains,
        wire: net.wire_stats(),
    }
}

/// Nearest-rank quantile over raw samples.
fn quantile(sorted: &[Duration], q: f64) -> Duration {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn sorted(mut v: Vec<Duration>) -> Vec<Duration> {
    v.sort_unstable();
    v
}

/// Perceived-latency distribution: served chain makespans plus the
/// fixed retry-later penalty for every shed arrival.
fn perceived(run: &RunResult) -> Vec<Duration> {
    let mut all = run.sojourns.clone();
    all.extend((0..run.shed).map(|_| SHED_PENALTY));
    sorted(all)
}

fn mean(samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.iter().sum::<Duration>() / samples.len() as u32
}

fn report(run: &RunResult, arrivals: u32) {
    let served = sorted(run.sojourns.clone());
    let view = perceived(run);
    println!(
        "  served {:>4}, shed {:>3} ({:>4.1}%), co-located {:>4}/{arrivals}, \
         makespan mean {:?} p99 {:?}, perceived p99 {:?}, wire {:.2} MiB (saved {:.2} MiB, {} refs)",
        served.len(),
        run.shed,
        100.0 * run.shed as f64 / f64::from(arrivals),
        run.colocated_chains,
        mean(&served),
        quantile(&served, 0.99),
        quantile(&view, 0.99),
        run.wire.bytes as f64 / (1024.0 * 1024.0),
        run.wire.bytes_saved as f64 / (1024.0 * 1024.0),
        run.wire.ref_substitutions,
    );
}

/// Assert two runs agree on every commonly-served arrival and return
/// how many arrivals both served.
fn assert_outputs_agree(a: &[Option<i64>], b: &[Option<i64>], what: &str) -> usize {
    assert_eq!(a.len(), b.len());
    let mut common = 0;
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if let (Some(x), Some(y)) = (x, y) {
            assert_eq!(x, y, "{what}: arrival {i} mined different answers");
            common += 1;
        }
    }
    common
}

fn bench(c: &mut Criterion) {
    banner(
        "E20",
        "QoS knapsack planner vs naive placement: wire bytes + perceived p99 under 2x overload",
    );
    let arrivals = arrivals();

    // --- The three strategies over identical arrivals + payloads. ----
    println!("--- homogeneous fleet ({} hosts) ---", HOSTS.len());
    let planned = drive(arrivals, Strategy::Planned { seed: PLANNER_SEED }, false);
    let rr = drive(arrivals, Strategy::RoundRobin, false);
    let random = drive(arrivals, Strategy::Random { seed: 0x5EED }, false);
    for (strategy, run) in [
        (Strategy::Planned { seed: PLANNER_SEED }.label(), &planned),
        (Strategy::RoundRobin.label(), &rr),
        (Strategy::Random { seed: 0x5EED }.label(), &random),
    ] {
        println!("{strategy}:");
        report(run, arrivals);
    }

    // --- Wire bytes: co-location + DataRef dedup is worth >= 2x. -----
    assert!(
        planned.wire.bytes * 2 <= random.wire.bytes,
        "planned composition must move >= 2x fewer bytes than random placement \
         ({} vs {})",
        planned.wire.bytes,
        random.wire.bytes
    );
    assert!(
        planned.wire.bytes * 2 <= rr.wire.bytes,
        "planned composition must move >= 2x fewer bytes than round-robin \
         ({} vs {})",
        planned.wire.bytes,
        rr.wire.bytes
    );
    assert!(
        planned.wire.bytes_saved > 0 && planned.wire.ref_substitutions > 0,
        "co-located chains must ride DataRef handles"
    );

    // --- Latency: telemetry-led placement beats blind placement. -----
    let planned_p99 = quantile(&perceived(&planned), 0.99);
    let random_p99 = quantile(&perceived(&random), 0.99);
    assert!(
        planned_p99 < random_p99,
        "planned perceived p99 must beat random ({planned_p99:?} vs {random_p99:?})"
    );
    assert!(
        mean(&planned.sojourns) < mean(&random.sojourns),
        "planned mean makespan must beat random ({:?} vs {:?})",
        mean(&planned.sojourns),
        mean(&random.sojourns)
    );
    assert!(
        planned.shed <= random.shed,
        "the planner must not shed more than random placement ({} vs {})",
        planned.shed,
        random.shed
    );

    // --- Heterogeneous fleet: degrade the last host to a quarter of
    // its throughput. Oblivious strategies keep offering it ~2x its
    // new capacity and shed; the planner prices the visible queue and
    // routes the whole chain around it.
    println!("--- degraded fleet ({} at 1/4 throughput) ---", HOSTS[3]);
    let deg_planned = drive(arrivals, Strategy::Planned { seed: PLANNER_SEED }, true);
    let deg_rr = drive(arrivals, Strategy::RoundRobin, true);
    let deg_random = drive(arrivals, Strategy::Random { seed: 0x5EED }, true);
    for (strategy, run) in [
        (
            Strategy::Planned { seed: PLANNER_SEED }.label(),
            &deg_planned,
        ),
        (Strategy::RoundRobin.label(), &deg_rr),
        (Strategy::Random { seed: 0x5EED }.label(), &deg_random),
    ] {
        println!("{strategy}:");
        report(run, arrivals);
    }
    let deg_planned_p99 = quantile(&perceived(&deg_planned), 0.99);
    for (what, run) in [("round-robin", &deg_rr), ("random", &deg_random)] {
        let base_p99 = quantile(&perceived(run), 0.99);
        assert!(
            deg_planned_p99 < base_p99,
            "on a degraded fleet the planner must beat {what} on perceived p99 \
             ({deg_planned_p99:?} vs {base_p99:?})"
        );
        assert!(
            deg_planned.shed <= run.shed,
            "on a degraded fleet the planner must not out-shed {what} ({} vs {})",
            deg_planned.shed,
            run.shed
        );
        assert!(
            deg_planned.wire.bytes * 2 <= run.wire.bytes,
            "the 2x wire-byte margin must survive the degraded fleet vs {what} \
             ({} vs {})",
            deg_planned.wire.bytes,
            run.wire.bytes
        );
    }
    assert_outputs_agree(
        &planned.outputs,
        &deg_planned.outputs,
        "healthy vs degraded fleet",
    );

    // --- Determinism + byte-identical outputs everywhere. ------------
    let rerun = drive(arrivals, Strategy::Planned { seed: PLANNER_SEED }, false);
    assert!(
        rerun == planned,
        "same planner seed must replay byte-identically (outputs, latency, wire)"
    );
    let reseeded = drive(
        arrivals,
        Strategy::Planned {
            seed: PLANNER_SEED ^ 0xFACE,
        },
        false,
    );
    let mut common =
        assert_outputs_agree(&planned.outputs, &reseeded.outputs, "across planner seeds");
    for (what, run) in [("vs round-robin", &rr), ("vs random", &random)] {
        common = common.min(assert_outputs_agree(&planned.outputs, &run.outputs, what));
    }
    assert!(common > 0, "some arrival must be served by every run");

    // --- Pool widths 1 and 4: the mining step fans its scoring batch
    // across the shared compute pool; the virtual clock and every
    // output must not care.
    let narrow = with_threads(1, || {
        drive(arrivals, Strategy::Planned { seed: PLANNER_SEED }, false)
    });
    let wide = with_threads(4, || {
        drive(arrivals, Strategy::Planned { seed: PLANNER_SEED }, false)
    });
    assert!(
        narrow == wide,
        "pool widths 1 and 4 must mine byte-identical runs"
    );
    assert_eq!(
        narrow.outputs, planned.outputs,
        "pool width must not change what the planned composition mines"
    );
    println!(
        "byte-identity: rerun exact; {common} commonly-served arrivals agree across \
         strategies/seeds; pool widths 1 and 4 identical"
    );

    // --- Criterion: wall-clock cost of plan + enact per chain. -------
    let mut group = c.benchmark_group("e20_planner");
    group.bench_function("planned_chain_128_arrivals", |b| {
        b.iter(|| black_box(drive(128, Strategy::Planned { seed: PLANNER_SEED }, false)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
