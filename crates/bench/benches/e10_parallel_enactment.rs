//! E10 — pattern operators and parallel enactment: a star of
//! cross-validation calls fanned over the workflow engine, serial vs
//! parallel, width 1–8. Expected shape: parallel wall-clock grows far
//! slower than serial as the star widens, saturating at the core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_bench::banner;
use dm_workflow::engine::Executor;
use dm_workflow::graph::{TaskGraph, Token, Tool};
use dm_workflow::patterns;
use faehim::Toolkit;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn star(toolkit: &Toolkit, width: usize) -> (TaskGraph, HashMap<(usize, usize), Token>) {
    let mut graph = TaskGraph::new();
    let source = graph.add_task(Arc::new(faehim::tools::LocalDataset::breast_cancer()));
    let workers = patterns::widen_star(
        &mut graph,
        source,
        0,
        || {
            let tools = toolkit
                .import_service(toolkit.primary_host(), "Classifier")
                .expect("import");
            Arc::new(
                tools
                    .into_iter()
                    .find(|t| t.name().ends_with(".crossValidate"))
                    .expect("crossValidate"),
            )
        },
        width,
    )
    .expect("star");
    let mut bindings = HashMap::new();
    for &w in &workers {
        bindings.insert((w, 1), Token::Text("J48".to_string()));
        bindings.insert((w, 2), Token::Text(String::new()));
        bindings.insert((w, 3), Token::Text("Class".to_string()));
        bindings.insert((w, 4), Token::Int(10));
    }
    (graph, bindings)
}

fn shape_table(toolkit: &Toolkit) {
    banner(
        "E10 / §2,§4",
        "parallel enactment of a widening star of CV jobs",
    );
    println!(
        "available parallelism: {} core(s) — expected parallel speedup saturates here",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
    println!(
        "{:>6} {:>14} {:>14} {:>9}",
        "width", "serial", "parallel", "speedup"
    );
    for &width in &[1usize, 2, 4, 8] {
        let (graph, bindings) = star(toolkit, width);
        let t0 = Instant::now();
        Executor::serial().run(&graph, &bindings).expect("serial");
        let serial = t0.elapsed();
        let t1 = Instant::now();
        Executor::parallel()
            .run(&graph, &bindings)
            .expect("parallel");
        let parallel = t1.elapsed();
        println!(
            "{width:>6} {serial:>14.3?} {parallel:>14.3?} {:>8.2}x",
            serial.as_secs_f64() / parallel.as_secs_f64().max(1e-12)
        );
    }
}

fn bench(c: &mut Criterion) {
    let toolkit = Toolkit::new().expect("toolkit");
    shape_table(&toolkit);
    let mut group = c.benchmark_group("e10_parallel_enactment");
    for &width in &[2usize, 4, 8] {
        let (graph, bindings) = star(&toolkit, width);
        group.bench_with_input(BenchmarkId::new("serial", width), &width, |b, _| {
            b.iter(|| black_box(Executor::serial().run(&graph, &bindings).expect("run")))
        });
        group.bench_with_input(BenchmarkId::new("parallel", width), &width, |b, _| {
            b.iter(|| black_box(Executor::parallel().run(&graph, &bindings).expect("run")))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
