//! E18 — the streaming data plane end to end: continuous columnar
//! ingest into a long-lived online model versus migrate-then-train.
//!
//! Four questions, all over the simulated transport:
//!
//! * **Equivalence** — is the streamed-fold model byte-identical to
//!   migrating the dataset and training locally? (Asserted, and
//!   re-asserted under compute-pool widths 1 and 4.)
//! * **Freshness vs window** — how does the bounded in-flight window
//!   trade model staleness against busy rejections on the virtual
//!   clock?
//! * **Wire accounting** — what does a chunk cost on the wire
//!   (`RecordBatch::byte_len` vs envelope bytes), and how much does the
//!   attachment-store dedup save when chunks are retransmitted?
//! * **Bounded memory** — the service's peak resident rows must stay at
//!   one chunk regardless of stream length.
//!
//! `FAEHIM_E18_SMOKE=1` shrinks the workload for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_algorithms::classifiers::{Classifier, HoeffdingTree};
use dm_algorithms::pool;
use dm_algorithms::state::Stateful;
use dm_bench::banner;
use dm_data::corpus::nominal_classification;
use dm_data::stream::{chunk_dataset, StreamHeader};
use dm_data::Dataset;
use dm_services::client::StreamClient;
use dm_services::deploy::deploy_faehim_suite;
use dm_wsrf::transport::{DataPlaneConfig, Network};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CHUNK_ROWS: usize = 256;
const ROW_COST: Duration = Duration::from_micros(250);

fn smoke() -> bool {
    std::env::var("FAEHIM_E18_SMOKE").is_ok()
}

fn rows() -> usize {
    if smoke() {
        1_536
    } else {
        8_192
    }
}

fn corpus() -> Dataset {
    nominal_classification(rows(), 4, 3, 2, 0.1, 41)
}

fn network() -> Arc<Network> {
    let net = Arc::new(Network::new());
    let host = net.add_host("miner");
    deploy_faehim_suite(&host).expect("deploy");
    net
}

/// Outcome of one full ingest run.
struct RunReport {
    state: Vec<u8>,
    virtual_elapsed: Duration,
    mean_staleness: Duration,
    busy_rejections: u64,
    peak_resident_rows: u64,
    wire_bytes: u64,
    envelopes: u64,
    chunks: u64,
    real_secs: f64,
}

/// Stream `ds` into a fresh network with the given window, returning
/// the model state plus freshness and wire accounting.
fn run_stream(ds: &Dataset, chunk_rows: usize, window: u64) -> RunReport {
    let net = network();
    let client = StreamClient::new(Arc::clone(&net), "miner");
    let header = StreamHeader::of(ds);
    let start_virtual = net.now();
    let started = Instant::now();
    let id = client
        .open_stream(&header, "HoeffdingTree", "", window, ROW_COST)
        .expect("openStream");
    net.reset_wire_stats();
    let batches = chunk_dataset(ds, chunk_rows).expect("chunk");
    let mut staleness_sum = Duration::ZERO;
    for (seq, batch) in batches.iter().enumerate() {
        let ack = client
            .send_chunk(&id, seq as u64, batch)
            .expect("sendChunk");
        staleness_sum += ack.staleness;
    }
    let wire = net.wire_stats();
    client.close_stream(&id).expect("closeStream");
    let stats = client.stream_stats(&id).expect("stats");
    RunReport {
        state: client.model_state(&id).expect("state"),
        virtual_elapsed: net.now() - start_virtual,
        mean_staleness: staleness_sum / batches.len() as u32,
        busy_rejections: stats.busy_rejections,
        peak_resident_rows: stats.peak_resident_rows,
        wire_bytes: wire.bytes,
        envelopes: wire.envelopes,
        chunks: stats.chunks,
        real_secs: started.elapsed().as_secs_f64(),
    }
}

fn bench(c: &mut Criterion) {
    banner(
        "E18",
        "streaming data plane: incremental ingest vs migrate-then-train",
    );
    let ds = corpus();
    println!(
        "mode: {} ({} rows, chunk {} rows, {:?}/row virtual cost)",
        if smoke() { "smoke" } else { "full" },
        ds.num_instances(),
        CHUNK_ROWS,
        ROW_COST
    );

    // --- Equivalence: streamed fold == migrate-then-train. -----------
    let mut local = HoeffdingTree::new();
    local.train(&ds).expect("train");
    let migrate = run_stream(&ds, ds.num_instances(), 1);
    let streamed = run_stream(&ds, CHUNK_ROWS, 4);
    assert_eq!(
        streamed.state,
        local.encode_state(),
        "streamed fold diverged from local train"
    );
    assert_eq!(
        migrate.state,
        local.encode_state(),
        "single-chunk migrate diverged from local train"
    );

    // Determinism under the compute pool: byte-identical at widths 1, 4.
    for width in [1usize, 4] {
        let state = pool::with_threads(width, || run_stream(&ds, CHUNK_ROWS, 4).state);
        assert_eq!(
            state, streamed.state,
            "pool width {width} changed the model"
        );
    }
    println!("cross-check: streamed == migrate == local train (pool widths 1, 4)");

    let per_chunk = |r: &RunReport| r.wire_bytes as f64 / r.chunks.max(1) as f64;
    println!(
        "\nmigrate-then-train (1 chunk of {} rows):",
        ds.num_instances()
    );
    println!(
        "  wire {} B over {} envelopes; peak resident {} rows; virtual {:?}; real {:.1} ms",
        migrate.wire_bytes,
        migrate.envelopes,
        migrate.peak_resident_rows,
        migrate.virtual_elapsed,
        migrate.real_secs * 1e3,
    );
    println!("streamed fold ({} chunks, window 4):", streamed.chunks);
    println!(
        "  wire {} B over {} envelopes ({:.0} B/chunk); peak resident {} rows; virtual {:?}; real {:.1} ms",
        streamed.wire_bytes,
        streamed.envelopes,
        per_chunk(&streamed),
        streamed.peak_resident_rows,
        streamed.virtual_elapsed,
        streamed.real_secs * 1e3,
    );
    println!(
        "  mean staleness {:?}; busy rejections {}",
        streamed.mean_staleness, streamed.busy_rejections
    );
    assert!(
        streamed.peak_resident_rows <= CHUNK_ROWS as u64,
        "streaming must hold at most one chunk resident"
    );
    assert!(
        migrate.peak_resident_rows >= ds.num_instances() as u64,
        "migrate path should materialise the whole dataset"
    );

    // --- Freshness vs in-flight window. -------------------------------
    println!("\nfreshness vs window (chunk {CHUNK_ROWS} rows):");
    println!("  window | mean staleness | busy rejections | virtual elapsed");
    for window in [1u64, 2, 4, 8] {
        let r = run_stream(&ds, CHUNK_ROWS, window);
        assert_eq!(r.state, streamed.state, "window {window} changed the model");
        println!(
            "  {:>6} | {:>14?} | {:>15} | {:?}",
            window, r.mean_staleness, r.busy_rejections, r.virtual_elapsed
        );
    }

    // --- Chunk retransmission dedup on the data plane. ----------------
    let net = network();
    net.enable_data_plane(DataPlaneConfig::default());
    let client = StreamClient::new(Arc::clone(&net), "miner");
    let header = StreamHeader::of(&ds);
    let batches = chunk_dataset(&ds, CHUNK_ROWS).expect("chunk");
    let id = client
        .open_stream(&header, "RunningStats", "", 64, Duration::ZERO)
        .expect("open");
    for (seq, batch) in batches.iter().enumerate() {
        client.send_chunk(&id, seq as u64, batch).expect("send");
    }
    let before = net.wire_stats();
    // At-least-once redelivery of every chunk: all pass by reference.
    for (seq, batch) in batches.iter().enumerate() {
        client.send_chunk(&id, seq as u64, batch).expect("resend");
    }
    let after = net.wire_stats();
    let resubs = after.ref_substitutions - before.ref_substitutions;
    let saved = after.bytes_saved - before.bytes_saved;
    println!(
        "\nretransmission dedup: {} of {} duplicate chunks passed by reference, {} B saved",
        resubs,
        batches.len(),
        saved
    );
    assert_eq!(resubs, batches.len() as u64, "all duplicates should dedup");

    // --- Criterion: per-chunk ingest round-trip over the transport. ---
    let net = network();
    let client = StreamClient::new(Arc::clone(&net), "miner");
    let id = client
        .open_stream(&header, "HoeffdingTree", "", u64::MAX >> 1, Duration::ZERO)
        .expect("open");
    let batch = &batches[0];
    let mut seq = 0u64;
    let mut group = c.benchmark_group("e18_streaming");
    group.bench_function("send_chunk_256_rows", |b| {
        b.iter(|| {
            let ack = client.send_chunk(&id, seq, batch).expect("send");
            seq += 1;
            ack.rows_total
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
