//! E13 — observability overhead: the warm E12 case-study run with
//! causal tracing on versus off. Tracing adds one `traceparent` SOAP
//! header per envelope (109 bytes against a 500 µs per-leg latency
//! floor) plus in-memory span records, so the simulated-time overhead
//! must stay under 5%.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_bench::banner;
use dm_workflow::engine::Executor;
use dm_workflow::memo::MemoCache;
use faehim::casestudy::run_case_study_with;
use faehim::Toolkit;
use std::hint::black_box;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    banner(
        "E13",
        "tracing overhead on the warm data-plane case-study run",
    );

    let toolkit = Toolkit::new().expect("toolkit");
    toolkit.enable_data_plane();
    let net = toolkit.network();
    let memo = Arc::new(MemoCache::new(64));
    let untraced_exec = Executor::serial().with_memoisation(Arc::clone(&memo));

    // Cold run to fill the attachment stores, model cache, and memo
    // cache; both measured runs below are warm.
    run_case_study_with(&toolkit, &untraced_exec).expect("cold run");

    net.reset_wire_stats();
    let start = net.now();
    let plain = run_case_study_with(&toolkit, &untraced_exec).expect("untraced warm run");
    let untraced_time = net.now() - start;
    let untraced_wire = net.wire_stats();

    let tracer = toolkit.enable_tracing();
    let traced_exec = Executor::serial()
        .with_memoisation(Arc::clone(&memo))
        .with_tracing(Arc::clone(&tracer));
    net.reset_wire_stats();
    let start = net.now();
    let traced = run_case_study_with(&toolkit, &traced_exec).expect("traced warm run");
    let traced_time = net.now() - start;
    let traced_wire = net.wire_stats();
    assert_eq!(
        plain.model_text, traced.model_text,
        "outputs must not change"
    );

    let overhead = traced_time.as_nanos() as f64 / untraced_time.as_nanos().max(1) as f64 - 1.0;
    println!("warm case-study enactment, tracing off vs on:");
    println!(
        "  untraced: {} wire bytes, {:?} simulated network time",
        untraced_wire.bytes, untraced_time
    );
    println!(
        "  traced:   {} wire bytes, {:?} simulated network time, {} spans",
        traced_wire.bytes,
        traced_time,
        tracer.len()
    );
    println!(
        "  overhead: {:.3}% simulated time, {} header bytes",
        overhead * 100.0,
        traced_wire.bytes.saturating_sub(untraced_wire.bytes)
    );
    assert!(
        overhead < 0.05,
        "tracing overhead {overhead:.4} breaches the 5% budget"
    );

    let spans = tracer.finished_spans();
    println!("\n{}", dm_viz::spantree::render_span_tree(&spans));

    let mut group = c.benchmark_group("e13_trace_overhead");
    group.bench_function("warm_untraced", |b| {
        b.iter(|| run_case_study_with(black_box(&toolkit), &untraced_exec).expect("run"))
    });
    group.bench_function("warm_traced", |b| {
        b.iter(|| run_case_study_with(black_box(&toolkit), &traced_exec).expect("run"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
