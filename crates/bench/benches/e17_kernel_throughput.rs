//! E17 — kernel throughput: the columnar mining kernels against
//! row-major baselines on the same data.
//!
//! Two hot kernels are measured, single-threaded so the comparison is
//! per-core work, not pool fan-out (E15 covers fan-out):
//!
//! * **IBk distance scan** — the columnar pre-normalised scan inside
//!   `IBk::predict` versus the pre-refactor row-at-a-time kernel
//!   (nested `Vec<Vec<f64>>` rows, per-cell NaN probes, per-comparison
//!   range normalisation), replicated here verbatim over a
//!   [`RowMajorDataset`] snapshot of the same training data.
//! * **k-means assignment** — `KMeans::assignments` (columnar
//!   projection, per-attribute accumulation) versus the scalar
//!   row-at-a-time assignment loop over the row-major snapshot.
//!
//! Baseline and columnar paths produce identical predictions /
//! assignment shapes; the IBk cross-check is asserted outright. The
//! acceptance floor (full mode only) is >= 1.5x single-thread speedup
//! on both kernels. Determinism is asserted at pool widths 1/2/8.
//!
//! `FAEHIM_E17_SMOKE=1` shrinks the workloads for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_algorithms::classifiers::{Classifier, IBk};
use dm_algorithms::cluster::{Clusterer, KMeans};
use dm_algorithms::options::Configurable;
use dm_algorithms::pool;
use dm_bench::banner;
use dm_data::convert::{to_row_major, RowMajorDataset};
use dm_data::{Attribute, Dataset, Value};
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 0xFAE17;
const IBK_K: usize = 5;
const KMEANS_K: usize = 8;
const POOL_WIDTHS: [usize; 3] = [1, 2, 8];

fn smoke() -> bool {
    std::env::var("FAEHIM_E17_SMOKE").is_ok()
}

fn store_rows() -> usize {
    if smoke() {
        400
    } else {
        4000
    }
}

fn query_rows() -> usize {
    if smoke() {
        30
    } else {
        200
    }
}

fn kmeans_rows() -> usize {
    if smoke() {
        600
    } else {
        6000
    }
}

/// Mixed-type kernel workload: 10 numeric attributes, 2 nominal
/// attributes, a binary class, and ~3% missing cells in one numeric and
/// one nominal column (so the validity-bitmap paths are exercised
/// without disabling the all-valid fast path everywhere).
fn kernel_dataset(rows: usize) -> Dataset {
    let mut attrs: Vec<Attribute> = (0..10)
        .map(|i| Attribute::numeric(format!("x{i}")))
        .collect();
    attrs.push(Attribute::nominal("n0", ["a", "b", "c", "d"]));
    attrs.push(Attribute::nominal("n1", ["p", "q", "r"]));
    attrs.push(Attribute::nominal("class", ["neg", "pos"]));
    let mut ds = Dataset::new("e17", attrs);
    ds.set_class_index(Some(12)).unwrap();
    let mut state = SEED | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..rows {
        let mut row = Vec::with_capacity(13);
        for a in 0..10 {
            let v = next();
            row.push(if a == 7 && v % 37 == 0 {
                f64::NAN
            } else {
                (v % 100_000) as f64 / 1000.0
            });
        }
        row.push((next() % 4) as f64);
        let v = next();
        row.push(if v % 37 == 0 {
            f64::NAN
        } else {
            (v % 3) as f64
        });
        row.push((next() % 2) as f64);
        ds.push_row(row).unwrap();
    }
    ds
}

/// Median-of-3 wall-clock under a 1-thread pool (per-core comparison).
fn timed<R>(mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            pool::with_threads(1, || {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_secs_f64()
            })
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[1]
}

// ---------------------------------------------------------------------
// Row-major baseline: the pre-columnar IBk kernel, verbatim.
// ---------------------------------------------------------------------

/// Distance metadata the old kernel carried: per-attribute ranges,
/// nominal flags, and the class index to skip.
struct BaselineSpace {
    ranges: Vec<Option<(f64, f64)>>,
    nominal: Vec<bool>,
    class_index: usize,
}

fn fit_baseline_space(rm: &RowMajorDataset) -> BaselineSpace {
    let n_attrs = rm.attributes.len();
    let mut ranges = Vec::with_capacity(n_attrs);
    for a in 0..n_attrs {
        if !rm.attributes[a].is_numeric() {
            ranges.push(None);
            continue;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for row in &rm.rows {
            let v = row[a];
            if !Value::is_missing(v) {
                min = min.min(v);
                max = max.max(v);
            }
        }
        ranges.push((min <= max).then_some((min, max)));
    }
    BaselineSpace {
        ranges,
        nominal: rm.attributes.iter().map(|a| a.is_nominal()).collect(),
        class_index: rm.class_index.expect("class set"),
    }
}

/// The pre-refactor row-at-a-time heterogeneous distance: per-cell NaN
/// probes, branch on attribute kind, and normalisation of *both* sides
/// at every comparison.
fn baseline_distance(space: &BaselineSpace, query: &[f64], stored: &[f64]) -> f64 {
    let mut d = 0.0;
    for a in 0..stored.len() {
        if a == space.class_index {
            continue;
        }
        let (q, s) = (query[a], stored[a]);
        let diff = if Value::is_missing(q) || Value::is_missing(s) {
            1.0
        } else if space.nominal[a] {
            f64::from(Value::as_index(q) != Value::as_index(s))
        } else {
            match space.ranges[a] {
                Some((min, max)) if max > min => {
                    let nq = ((q - min) / (max - min)).clamp(0.0, 1.0);
                    let ns = ((s - min) / (max - min)).clamp(0.0, 1.0);
                    nq - ns
                }
                _ => 0.0,
            }
        };
        d += diff * diff;
    }
    d.sqrt()
}

/// Baseline k-NN prediction: scan every stored row, bounded insertion
/// selection over the `(distance, index)` total order, majority vote —
/// the old predict path end to end.
fn baseline_predict(
    space: &BaselineSpace,
    rm: &RowMajorDataset,
    classes: &[usize],
    num_classes: usize,
    query: &[f64],
    k: usize,
) -> usize {
    let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
    for (i, stored) in rm.rows.iter().enumerate() {
        let cand = (baseline_distance(space, query, stored), i);
        if best.len() < k || cand < best[best.len() - 1] {
            let pos = best.partition_point(|x| *x < cand);
            best.insert(pos, cand);
            best.truncate(k);
        }
    }
    let mut dist = vec![0.0f64; num_classes];
    for &(_, i) in &best {
        dist[classes[i]] += 1.0;
    }
    dist.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap()
}

/// Baseline k-means assignment: scalar per-row, per-centroid distance
/// with both sides normalised at each cell — the pre-columnar
/// `nearest` loop over row-major rows.
fn baseline_assign(
    space: &BaselineSpace,
    rm: &RowMajorDataset,
    centroids: &[Vec<f64>],
) -> Vec<usize> {
    rm.rows
        .iter()
        .map(|row| {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (ci, centroid) in centroids.iter().enumerate() {
                let mut d = 0.0;
                for (a, &cv) in centroid.iter().enumerate() {
                    // Skip the class column and string attributes, as
                    // the clusterer's distance space does.
                    if a == space.class_index
                        || (!rm.attributes[a].is_numeric() && !space.nominal[a])
                    {
                        continue;
                    }
                    let v = row[a];
                    let diff = if Value::is_missing(v) || Value::is_missing(cv) {
                        1.0
                    } else if space.nominal[a] {
                        f64::from(Value::as_index(v) != Value::as_index(cv))
                    } else {
                        match space.ranges[a] {
                            Some((min, max)) if max > min => {
                                let nv = ((v - min) / (max - min)).clamp(0.0, 1.0);
                                let nc = ((cv - min) / (max - min)).clamp(0.0, 1.0);
                                nv - nc
                            }
                            _ => 0.0,
                        }
                    };
                    d += diff * diff;
                }
                let d = d.sqrt();
                if d < best_d {
                    best_d = d;
                    best = ci;
                }
            }
            best
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    banner(
        "E17",
        "kernel throughput: columnar IBk scan and k-means assignment vs row-major baselines",
    );
    println!(
        "mode: {} (store {} rows, {} queries; k-means {} rows, k={})",
        if smoke() { "smoke" } else { "full" },
        store_rows(),
        query_rows(),
        kmeans_rows(),
        KMEANS_K
    );

    // --- IBk distance scan. ------------------------------------------
    let ds = kernel_dataset(store_rows());
    let rm = to_row_major(&ds);
    let space = fit_baseline_space(&rm);
    let classes: Vec<usize> = rm.rows.iter().map(|r| r[12] as usize).collect();

    let mut ibk = IBk::with_k(IBK_K);
    pool::with_threads(1, || ibk.train(&ds)).unwrap();

    let q = query_rows();
    let columnar_preds: Vec<usize> =
        pool::with_threads(1, || (0..q).map(|r| ibk.predict(&ds, r).unwrap()).collect());
    let baseline_preds: Vec<usize> = (0..q)
        .map(|r| baseline_predict(&space, &rm, &classes, 2, &rm.rows[r], IBK_K))
        .collect();
    assert_eq!(
        columnar_preds, baseline_preds,
        "columnar and row-major IBk predictions diverged"
    );

    let t_col_ibk = timed(|| (0..q).map(|r| ibk.predict(&ds, r).unwrap()).sum::<usize>());
    let t_row_ibk = timed(|| {
        (0..q)
            .map(|r| baseline_predict(&space, &rm, &classes, 2, &rm.rows[r], IBK_K))
            .sum::<usize>()
    });
    let ibk_speedup = t_row_ibk / t_col_ibk;
    let scans = (q * store_rows()) as f64;
    println!("IBk scan ({} queries x {} stored rows):", q, store_rows());
    println!(
        "  row-major baseline: {:.1} ms ({:.1} Mdist/s)",
        t_row_ibk * 1e3,
        scans / t_row_ibk / 1e6
    );
    println!(
        "  columnar:           {:.1} ms ({:.1} Mdist/s)",
        t_col_ibk * 1e3,
        scans / t_col_ibk / 1e6
    );
    println!("  single-thread speedup: {ibk_speedup:.2}x");

    // Determinism across pool widths: byte-identical distributions.
    let ref_dists: Vec<Vec<f64>> = pool::with_threads(1, || {
        (0..q.min(16))
            .map(|r| ibk.distribution(&ds, r).unwrap())
            .collect()
    });
    for &w in &POOL_WIDTHS[1..] {
        let dists: Vec<Vec<f64>> = pool::with_threads(w, || {
            (0..q.min(16))
                .map(|r| ibk.distribution(&ds, r).unwrap())
                .collect()
        });
        let same = ref_dists
            .iter()
            .zip(&dists)
            .all(|(a, b)| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert!(same, "IBk distributions diverged at pool width {w}");
    }

    // --- k-means assignment. -----------------------------------------
    let kds = kernel_dataset(kmeans_rows());
    let krm = to_row_major(&kds);
    let kspace = fit_baseline_space(&krm);
    let mut km = KMeans::with_k(KMEANS_K);
    km.set_option("-S", &SEED.to_string()).unwrap();
    pool::with_threads(1, || km.build(&kds)).unwrap();

    // Shape-representative centroids for the baseline: k spread rows.
    // Assignment cost depends on shapes (rows x centroids x attrs),
    // not centroid values, so the baseline measures the same work.
    let n = krm.rows.len();
    let centroids: Vec<Vec<f64>> = (0..KMEANS_K)
        .map(|i| krm.rows[i * n / KMEANS_K].clone())
        .collect();

    let t_col_km = timed(|| km.assignments(&kds).unwrap().len());
    let t_row_km = timed(|| baseline_assign(&kspace, &krm, &centroids).len());
    let km_speedup = t_row_km / t_col_km;
    let evals = (n * KMEANS_K) as f64;
    println!("k-means assignment ({n} rows x {KMEANS_K} centroids):");
    println!(
        "  row-major baseline: {:.1} ms ({:.1} Mdist/s)",
        t_row_km * 1e3,
        evals / t_row_km / 1e6
    );
    println!(
        "  columnar:           {:.1} ms ({:.1} Mdist/s)",
        t_col_km * 1e3,
        evals / t_col_km / 1e6
    );
    println!("  single-thread speedup: {km_speedup:.2}x");

    // Determinism across pool widths: identical assignment vectors.
    let ref_assign = pool::with_threads(1, || km.assignments(&kds).unwrap());
    for &w in &POOL_WIDTHS[1..] {
        let assign = pool::with_threads(w, || km.assignments(&kds).unwrap());
        assert_eq!(assign, ref_assign, "assignments diverged at pool width {w}");
    }
    println!(
        "determinism: IBk distributions and k-means assignments identical at pool widths {POOL_WIDTHS:?}"
    );

    // Acceptance floor: >= 1.5x per-thread on both kernels (full mode;
    // smoke workloads are too small for stable ratios).
    if !smoke() {
        assert!(
            ibk_speedup >= 1.5,
            "IBk columnar speedup only {ibk_speedup:.2}x (floor 1.5x)"
        );
        assert!(
            km_speedup >= 1.5,
            "k-means columnar speedup only {km_speedup:.2}x (floor 1.5x)"
        );
    }

    let mut group = c.benchmark_group("e17_kernel_throughput");
    group.bench_function("ibk_scan_columnar", |b| {
        b.iter(|| {
            pool::with_threads(1, || {
                (0..q.min(20))
                    .map(|r| ibk.predict(&ds, r).unwrap())
                    .sum::<usize>()
            })
        })
    });
    group.bench_function("ibk_scan_row_major", |b| {
        b.iter(|| {
            (0..q.min(20))
                .map(|r| baseline_predict(&space, &rm, &classes, 2, &rm.rows[r], IBK_K))
                .sum::<usize>()
        })
    });
    group.bench_function("kmeans_assign_columnar", |b| {
        b.iter(|| pool::with_threads(1, || km.assignments(&kds).unwrap().len()))
    });
    group.bench_function("kmeans_assign_row_major", |b| {
        b.iter(|| baseline_assign(&kspace, &krm, &centroids).len())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
