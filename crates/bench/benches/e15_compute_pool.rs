//! E15 — compute-pool speedup: forest training, 10-fold
//! cross-validation, and 1000-instance batch scoring on breast-cancer
//! at 1 / 2 / 4 / 8 pool threads, with byte-identical outputs at every
//! thread count.
//!
//! Two numbers are reported per workload and thread count:
//!
//! * **measured wall-clock** — the actual elapsed time under
//!   `pool::with_threads(n, ..)` on this host. On a single-core host
//!   (the CI container has one CPU) extra threads timeshare one core,
//!   so the measured curve is flat — included for honesty, not as the
//!   headline.
//! * **modeled makespan** — each workload's tasks (one tree, one fold,
//!   one row) are timed individually, then list-scheduled onto W
//!   earliest-available workers, the same greedy order the
//!   work-stealing deques converge to. This is the speedup the pool
//!   delivers once W cores exist, computed from *measured* per-task
//!   durations rather than an assumed uniform split.
//!
//! The determinism contract is asserted inline: forest state bytes,
//! pooled-CV `Evaluation`s, and batched predictions must be identical
//! at 1, 2, 4, and 8 threads.
//!
//! `FAEHIM_E15_SMOKE=1` shrinks the workloads for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_algorithms::classifiers::{Classifier, RandomForest, RandomTree};
use dm_algorithms::eval::{cross_validate, cross_validate_parallel};
use dm_algorithms::options::Configurable;
use dm_algorithms::pool;
use dm_algorithms::registry::make_classifier;
use dm_algorithms::state::Stateful;
use dm_bench::banner;
use std::hint::black_box;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SEED: u64 = 0xFAE15;

fn smoke() -> bool {
    std::env::var("FAEHIM_E15_SMOKE").is_ok()
}

fn num_trees() -> usize {
    if smoke() {
        8
    } else {
        64
    }
}

fn batch_rows() -> usize {
    if smoke() {
        200
    } else {
        1000
    }
}

const CV_FOLDS: usize = 10;

fn dataset() -> dm_data::Dataset {
    let mut ds = dm_data::arff::parse_arff(dm_bench::breast_cancer_arff()).unwrap();
    ds.set_class_by_name("Class").unwrap();
    ds
}

/// The scoring batch: breast-cancer rows cycled up to `batch_rows()`.
fn batch_dataset(ds: &dm_data::Dataset) -> dm_data::Dataset {
    let n = ds.num_instances();
    let rows: Vec<usize> = (0..batch_rows()).map(|i| i % n).collect();
    ds.select_rows(&rows)
}

/// Greedy list scheduling of `durations` (seconds) onto `workers`
/// earliest-available workers; returns the makespan in seconds.
fn greedy_makespan(durations: &[f64], workers: usize) -> f64 {
    let mut free_at = vec![0.0f64; workers.max(1)];
    for &d in durations {
        let earliest = free_at
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).unwrap())
            .unwrap();
        *earliest += d;
    }
    free_at.into_iter().fold(0.0, f64::max)
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Median-of-3 wall-clock for `f` under an `n`-thread pool.
fn wall_clock<R>(threads: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| pool::with_threads(threads, || time(&mut f).1))
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[1]
}

/// Train the E15 forest under whatever pool threads are in effect.
fn train_forest(ds: &dm_data::Dataset) -> RandomForest {
    let mut forest = RandomForest::new();
    forest.set_option("-I", &num_trees().to_string()).unwrap();
    forest.set_option("-S", &SEED.to_string()).unwrap();
    forest.train(ds).unwrap();
    forest
}

fn trained_forest(threads: usize, ds: &dm_data::Dataset) -> RandomForest {
    pool::with_threads(threads, || train_forest(ds))
}

/// Per-task durations of the forest workload: training one random tree
/// on one 286-row bootstrap resample (xorshift index stream — the cost
/// model only needs representative task sizes, not the forest's exact
/// bootstrap stream).
fn forest_task_durations(ds: &dm_data::Dataset) -> Vec<f64> {
    let n = ds.num_instances();
    let mut state = SEED | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..num_trees())
        .map(|i| {
            let rows: Vec<usize> = (0..n).map(|_| (next() % n as u64) as usize).collect();
            let sample = ds.select_rows(&rows);
            let (_, secs) = time(|| {
                let mut tree = RandomTree::new();
                tree.set_option("-S", &(SEED + i as u64).to_string())
                    .unwrap();
                tree.train(&sample).unwrap();
                black_box(tree.encode_state().len())
            });
            secs
        })
        .collect()
}

/// Per-task durations of the CV workload: train + evaluate one J48
/// fold of the stratified 10-fold split.
fn cv_task_durations(ds: &dm_data::Dataset) -> Vec<f64> {
    let labels = ds.class_attribute().unwrap().labels().to_vec();
    let cv = dm_data::split::CrossValidation::stratified(ds, CV_FOLDS, SEED).unwrap();
    (0..cv.k())
        .map(|fold| {
            let (train, test) = cv.split(ds, fold);
            let (_, secs) = time(|| {
                let mut c = make_classifier("J48").unwrap();
                c.train(&train).unwrap();
                let mut eval = dm_algorithms::eval::Evaluation::new(labels.clone());
                eval.evaluate(c.as_ref(), &test).unwrap();
                black_box(eval.accuracy())
            });
            secs
        })
        .collect()
}

/// Per-task durations of the batch-scoring workload: one `predict`
/// call per batch row against the trained forest — the same model the
/// measured path scores with (votes run inline under 1 thread, as they
/// do inside a pool worker).
fn scoring_task_durations(forest: &RandomForest, batch: &dm_data::Dataset) -> Vec<f64> {
    pool::with_threads(1, || {
        (0..batch.num_instances())
            .map(|row| time(|| black_box(forest.predict(batch, row).unwrap())).1)
            .collect()
    })
}

struct WorkloadReport {
    name: &'static str,
    tasks: usize,
    serial_total: f64,
    modeled_speedup_at: Vec<(usize, f64)>,
    measured_wall_clock: Vec<(usize, f64)>,
}

fn report(w: &WorkloadReport) {
    println!(
        "{}: {} tasks, serial task total {:.1} ms",
        w.name,
        w.tasks,
        w.serial_total * 1e3
    );
    for (threads, speedup) in &w.modeled_speedup_at {
        println!("  modeled  {threads} workers: {speedup:.2}x");
    }
    for (threads, secs) in &w.measured_wall_clock {
        println!("  measured {threads} threads: {:.1} ms", secs * 1e3);
    }
}

fn modeled(durations: &[f64]) -> Vec<(usize, f64)> {
    let total: f64 = durations.iter().sum();
    THREAD_COUNTS
        .iter()
        .map(|&w| (w, total / greedy_makespan(durations, w)))
        .collect()
}

fn bench(c: &mut Criterion) {
    banner(
        "E15",
        "compute-pool speedup: forest training, 10-fold CV, batch scoring at 1/2/4/8 threads",
    );
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "host CPUs: {host_cpus} (measured wall-clock is core-bound; modeled makespan uses measured per-task durations)"
    );
    let ds = dataset();
    let batch = batch_dataset(&ds);

    // --- Determinism: byte-identical outputs at every thread count. --
    let reference = trained_forest(1, &ds);
    let ref_state = reference.encode_state();
    for &threads in &THREAD_COUNTS[1..] {
        assert!(
            trained_forest(threads, &ds).encode_state() == ref_state,
            "forest state diverged at {threads} threads"
        );
    }
    let make = || make_classifier("J48");
    let serial_cv = cross_validate(make, &ds, CV_FOLDS, SEED).unwrap();
    for &threads in &THREAD_COUNTS {
        let pooled = pool::with_threads(threads, || {
            cross_validate_parallel(make, &ds, CV_FOLDS, SEED).unwrap()
        });
        assert!(pooled == serial_cv, "CV diverged at {threads} threads");
    }
    let ref_preds: Vec<usize> = pool::with_threads(1, || {
        pool::parallel_map(batch.num_instances(), |r| {
            reference.predict(&batch, r).unwrap()
        })
    });
    for &threads in &THREAD_COUNTS[1..] {
        let preds = pool::with_threads(threads, || {
            pool::parallel_map(batch.num_instances(), |r| {
                reference.predict(&batch, r).unwrap()
            })
        });
        assert_eq!(
            preds, ref_preds,
            "batch predictions diverged at {threads} threads"
        );
    }
    println!(
        "determinism: forest state, CV evaluation, and {} batch predictions identical at {THREAD_COUNTS:?} threads",
        batch.num_instances()
    );

    // --- Forest training. --------------------------------------------
    let durations = forest_task_durations(&ds);
    let forest = WorkloadReport {
        name: "forest training",
        tasks: durations.len(),
        serial_total: durations.iter().sum(),
        modeled_speedup_at: modeled(&durations),
        measured_wall_clock: THREAD_COUNTS
            .iter()
            .map(|&t| {
                (
                    t,
                    wall_clock(t, || black_box(train_forest(&ds).encode_state().len())),
                )
            })
            .collect(),
    };
    report(&forest);

    // --- 10-fold cross-validation. -----------------------------------
    let durations = cv_task_durations(&ds);
    let cv = WorkloadReport {
        name: "10-fold CV (J48)",
        tasks: durations.len(),
        serial_total: durations.iter().sum(),
        modeled_speedup_at: modeled(&durations),
        measured_wall_clock: THREAD_COUNTS
            .iter()
            .map(|&t| {
                (
                    t,
                    wall_clock(t, || {
                        black_box(
                            cross_validate_parallel(make, &ds, CV_FOLDS, SEED)
                                .unwrap()
                                .accuracy(),
                        )
                    }),
                )
            })
            .collect(),
    };
    report(&cv);

    // --- Batch scoring. ----------------------------------------------
    let durations = scoring_task_durations(&reference, &batch);
    let scoring = WorkloadReport {
        name: "batch scoring",
        tasks: durations.len(),
        serial_total: durations.iter().sum(),
        modeled_speedup_at: modeled(&durations),
        measured_wall_clock: THREAD_COUNTS
            .iter()
            .map(|&t| {
                (
                    t,
                    wall_clock(t, || {
                        black_box(pool::parallel_map(batch.num_instances(), |r| {
                            reference.predict(&batch, r).unwrap()
                        }))
                    }),
                )
            })
            .collect(),
    };
    report(&scoring);

    // The acceptance floor: >= 2x at 4 workers on forest training and
    // CV, from measured per-task durations under greedy scheduling.
    for w in [&forest, &cv] {
        let at4 = w
            .modeled_speedup_at
            .iter()
            .find(|(t, _)| *t == 4)
            .map(|(_, s)| *s)
            .unwrap();
        assert!(
            at4 >= 2.0,
            "{} modeled speedup at 4 workers is only {at4:.2}x",
            w.name
        );
    }

    let pool_stats = pool::stats();
    println!(
        "pool counters: {} tasks, {} batches, {} steals across {} worker slots",
        pool_stats.tasks,
        pool_stats.batches,
        pool_stats.steals,
        pool_stats.workers.len()
    );

    let mut group = c.benchmark_group("e15_compute_pool");
    group.bench_function("forest_train_1_thread", |b| {
        b.iter(|| black_box(trained_forest(1, &ds).encode_state().len()))
    });
    group.bench_function("forest_train_4_threads", |b| {
        b.iter(|| black_box(trained_forest(4, &ds).encode_state().len()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
