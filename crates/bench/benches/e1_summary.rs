//! E1 — Figure 3: regenerate the breast-cancer summary table and
//! measure its computation, locally and through the Web Service.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_bench::{banner, breast_cancer_arff};
use dm_data::summary::DatasetSummary;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    banner("E1 / Figure 3", "breast-cancer dataset summary table");
    let ds = dm_data::corpus::breast_cancer();
    let summary = DatasetSummary::of(&ds);
    print!("{}", summary.to_table_string());
    assert_eq!(summary.num_instances, 286);
    assert_eq!(summary.missing_values, 9);

    let mut group = c.benchmark_group("e1_summary");
    group.bench_function("compute_local", |b| {
        b.iter(|| DatasetSummary::of(black_box(&ds)))
    });

    let toolkit = faehim::Toolkit::new().expect("toolkit");
    let client = toolkit.convert_client();
    group.bench_function("via_web_service", |b| {
        b.iter(|| {
            client
                .summary(black_box(breast_cancer_arff()))
                .expect("summary")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
