//! E16 — durable enactment recovery: kill the orchestrator at 1/4,
//! 1/2, and 3/4 of the journal's append schedule on the §5 case-study
//! workflow and a distributed-mining fan-out, then compare resuming
//! from the log against naively re-running the whole workflow.
//!
//! Three numbers are reported per workload and crash point:
//!
//! * **replayed / re-executed** — how many tasks the resumed
//!   orchestrator restored from the log versus ran fresh. Completed
//!   tasks are never re-executed; the resumed report's canonical bytes
//!   are asserted identical to an uninterrupted run's.
//! * **virtual compute restored** — the simulated task time the replay
//!   recovered without executing anything (the deterministic headline:
//!   service caches make repeat wall-clocks flattering, the virtual
//!   clock does not lie).
//! * **measured wall-clock** — resume versus naive re-run on this
//!   host, included for honesty; warm service caches shrink both.
//!
//! `FAEHIM_E16_SMOKE=1` checks only the mid-run crash point for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_bench::banner;
use dm_workflow::durable::DurableConfig;
use dm_workflow::graph::{TaskGraph, TaskId, Token, Tool};
use dm_workflow::journal::RunJournal;
use faehim::casestudy::build_case_study;
use faehim::Toolkit;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const INLINE_LIMIT: usize = 1024;
const WORKERS: usize = 4;

fn smoke() -> bool {
    std::env::var("FAEHIM_E16_SMOKE").is_ok()
}

type Bindings = HashMap<(TaskId, usize), Token>;

/// The distributed-mining fan-out: a local dataset fans out to three
/// classifier cross-validations hosted on three replica hosts.
fn build_distributed_mining(toolkit: &Toolkit) -> (TaskGraph, Bindings) {
    let mut graph = TaskGraph::new();
    let dataset = graph.add_task(Arc::new(faehim::tools::LocalDataset::breast_cancer()));
    let mut bindings = HashMap::new();
    for (host, classifier) in [
        ("wesc-a", "J48"),
        ("wesc-b", "NaiveBayes"),
        ("wesc-c", "IBk"),
    ] {
        let tools = toolkit.import_service(host, "Classifier").expect("import");
        let cv = tools
            .into_iter()
            .find(|t| t.name().ends_with(".crossValidate"))
            .expect("crossValidate tool");
        let id = graph.add_named_task(format!("cv-{classifier}"), Arc::new(cv));
        graph.connect(dataset, 0, id, 0).expect("wire dataset");
        bindings.insert((id, 1), Token::Text(classifier.into()));
        bindings.insert((id, 2), Token::Text(String::new()));
        bindings.insert((id, 3), Token::Text("Class".into()));
        bindings.insert((id, 4), Token::Int(10));
    }
    (graph, bindings)
}

struct CrashPointReport {
    kill_after: u64,
    replayed: usize,
    re_executed: usize,
    virtual_restored: Duration,
    resume_wall: Duration,
}

struct WorkloadReport {
    name: &'static str,
    tasks: usize,
    total_appends: u64,
    journal_bytes: u64,
    naive_wall: Duration,
    naive_virtual: Duration,
    crash_points: Vec<CrashPointReport>,
}

fn run_workload(
    name: &'static str,
    toolkit: &Toolkit,
    graph: &TaskGraph,
    bindings: &Bindings,
) -> WorkloadReport {
    let store = toolkit.network().client_store().expect("data plane store");
    let journal = Arc::new(RunJournal::with_store(Arc::clone(&store), INLINE_LIMIT));
    let start = Instant::now();
    let baseline = toolkit
        .resilient_executor(None)
        .run_durable(graph, bindings, &DurableConfig::new(Arc::clone(&journal)))
        .expect("baseline durable run");
    let naive_wall = start.elapsed();
    let expected = baseline.canonical_bytes();
    let stats = journal.stats();
    let total_appends = stats.appends;

    let kill_points: Vec<u64> = if smoke() {
        vec![total_appends / 2]
    } else {
        vec![total_appends / 4, total_appends / 2, 3 * total_appends / 4]
    };

    let mut crash_points = Vec::new();
    for kill_after in kill_points {
        let doomed = Arc::new(RunJournal::with_store(Arc::clone(&store), INLINE_LIMIT));
        let config = DurableConfig::new(Arc::clone(&doomed))
            .with_workers(WORKERS)
            .with_kill_after_appends(kill_after);
        toolkit
            .resilient_executor(None)
            .run_durable(graph, bindings, &config)
            .expect_err("scripted crash");

        // Process boundary: only the bytes and the store survive.
        let survived = Arc::new(
            RunJournal::from_bytes(&doomed.bytes()).attach_store(Arc::clone(&store), INLINE_LIMIT),
        );
        let start = Instant::now();
        let resumed = toolkit
            .resilient_executor(None)
            .run_durable(
                graph,
                bindings,
                &DurableConfig::new(Arc::clone(&survived)).with_workers(WORKERS),
            )
            .expect("resume");
        let resume_wall = start.elapsed();

        assert_eq!(
            resumed.canonical_bytes(),
            expected,
            "{name}: resumed report differs at kill point {kill_after}"
        );
        let replayed = resumed.replay_hits();
        let re_executed = resumed.runs.iter().filter(|r| !r.replayed).count();
        assert_eq!(
            replayed + re_executed,
            graph.num_tasks(),
            "{name}: replay/re-execution split does not cover the graph"
        );
        let virtual_restored = resumed
            .runs
            .iter()
            .filter(|r| r.replayed)
            .map(|r| r.virtual_duration)
            .sum();
        crash_points.push(CrashPointReport {
            kill_after,
            replayed,
            re_executed,
            virtual_restored,
            resume_wall,
        });
    }

    WorkloadReport {
        name,
        tasks: graph.num_tasks(),
        total_appends,
        journal_bytes: stats.bytes,
        naive_wall,
        naive_virtual: baseline.virtual_elapsed,
        crash_points,
    }
}

fn report(w: &WorkloadReport) {
    println!(
        "{}: {} tasks, {} appends, {} journal bytes; naive re-run {:.1} ms wall / {:.1} ms virtual",
        w.name,
        w.tasks,
        w.total_appends,
        w.journal_bytes,
        w.naive_wall.as_secs_f64() * 1e3,
        w.naive_virtual.as_secs_f64() * 1e3,
    );
    for cp in &w.crash_points {
        println!(
            "  kill@{:<2} replayed {} / re-executed {} — restored {:.1} ms virtual compute, resume {:.1} ms wall",
            cp.kill_after,
            cp.replayed,
            cp.re_executed,
            cp.virtual_restored.as_secs_f64() * 1e3,
            cp.resume_wall.as_secs_f64() * 1e3,
        );
    }
}

fn bench(c: &mut Criterion) {
    banner(
        "E16",
        "durable enactment: resume-from-log recovery vs naive re-run across crash points",
    );

    // --- Case-study workflow (10 tasks, single host). ----------------
    let tk = Toolkit::new().expect("toolkit");
    tk.enable_data_plane();
    let (graph, _tasks, bindings) = build_case_study(&tk).expect("case study");
    let case_study = run_workload("case-study", &tk, &graph, &bindings);
    report(&case_study);

    // --- Distributed-mining fan-out (4 tasks, three hosts). ----------
    let dtk = Toolkit::with_hosts(&["wesc-a", "wesc-b", "wesc-c"]).expect("toolkit");
    dtk.enable_data_plane();
    let (dgraph, dbindings) = build_distributed_mining(&dtk);
    let distributed = run_workload("distributed-mining", &dtk, &dgraph, &dbindings);
    report(&distributed);

    // Acceptance: at every crash point the resumed run re-executed
    // exactly the tasks the log had no completion for (an early crash
    // legitimately replays nothing), and the deepest crash point
    // recovered real work.
    for w in [&case_study, &distributed] {
        for cp in &w.crash_points {
            assert_eq!(
                cp.re_executed,
                w.tasks - cp.replayed,
                "{} kill@{}: completed tasks were re-executed",
                w.name,
                cp.kill_after
            );
        }
        let deepest = w.crash_points.last().expect("crash points");
        assert!(
            deepest.replayed > 0,
            "{}: deepest crash point replayed nothing",
            w.name
        );
    }

    if smoke() {
        return;
    }
    let store = tk.network().client_store().expect("store");
    let mid = case_study.total_appends / 2;
    let mut group = c.benchmark_group("e16_durable_recovery");
    group.bench_function("naive_rerun", |b| {
        b.iter(|| {
            let journal = Arc::new(RunJournal::with_store(Arc::clone(&store), INLINE_LIMIT));
            let report = tk
                .resilient_executor(None)
                .run_durable(&graph, &bindings, &DurableConfig::new(journal))
                .unwrap();
            black_box(report.runs.len())
        })
    });
    group.bench_function("resume_from_mid_crash", |b| {
        b.iter(|| {
            let doomed = Arc::new(RunJournal::with_store(Arc::clone(&store), INLINE_LIMIT));
            let config = DurableConfig::new(Arc::clone(&doomed))
                .with_workers(WORKERS)
                .with_kill_after_appends(mid);
            tk.resilient_executor(None)
                .run_durable(&graph, &bindings, &config)
                .unwrap_err();
            let survived = Arc::new(
                RunJournal::from_bytes(&doomed.bytes())
                    .attach_store(Arc::clone(&store), INLINE_LIMIT),
            );
            let report = tk
                .resilient_executor(None)
                .run_durable(&graph, &bindings, &DurableConfig::new(survived))
                .unwrap();
            black_box(report.replay_hits())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
