//! E3 — the §5 case study: full four-service workflow enactment
//! through the engine, serial and parallel, plus per-stage costs.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_bench::banner;
use dm_workflow::engine::Executor;
use faehim::casestudy::{build_case_study, run_case_study_on};
use faehim::Toolkit;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    banner(
        "E3 / §5",
        "case-study workflow (URL reader → C4.5 → analyser → visualiser)",
    );
    let toolkit = Toolkit::new().expect("toolkit");
    let result = run_case_study_on(&toolkit).expect("case study");
    println!("per-stage costs of one enactment:");
    for run in &result.report.runs {
        println!("  {:<32} {:?}", run.task, run.duration);
    }
    println!("analysis:\n{}", result.analysis);

    let (graph, _, bindings) = build_case_study(&toolkit).expect("workflow");
    let mut group = c.benchmark_group("e3_case_study");
    group.bench_function("serial_enactment", |b| {
        b.iter(|| {
            Executor::serial()
                .run(black_box(&graph), black_box(&bindings))
                .expect("run")
        })
    });
    group.bench_function("parallel_enactment", |b| {
        b.iter(|| {
            Executor::parallel()
                .run(black_box(&graph), black_box(&bindings))
                .expect("run")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
