//! E4 — §4.5: the serialisation penalty. Repeated invocations of the
//! J48 Web Service under the default Axis-style serialize-per-call
//! lifecycle versus the paper's in-memory harness.
//!
//! Two scenarios:
//!
//! * **interactive session** (the paper's motivating case): a large
//!   trained model, small per-request work (`predict` on a handful of
//!   instances). Per-call serialisation re-reads and re-writes the full
//!   model state on every request — the penalty grows with model size
//!   while the useful work stays constant.
//! * **classify** (train-per-call): training dominates, so the gap is
//!   small — included to show the penalty is lifecycle overhead, not
//!   algorithm cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_bench::{banner, j48_classify_args};
use dm_services::j48_ws::J48Service;
use dm_wsrf::container::WebService;
use dm_wsrf::lifecycle::LifecyclePolicy;
use dm_wsrf::soap::SoapValue;
use std::hint::black_box;
use std::time::Instant;

/// A large training set (deep tree) and a small prediction probe.
fn big_and_probe(rows: usize) -> (String, String) {
    let big = dm_data::corpus::nominal_classification(rows, 12, 4, 2, 0.25, 99);
    let probe = big.select_rows(&(0..10).collect::<Vec<_>>());
    (
        dm_data::arff::write_arff(&big),
        dm_data::arff::write_arff(&probe),
    )
}

fn trained_service(policy: LifecyclePolicy, big_arff: &str) -> J48Service {
    let s = J48Service::with_policy(policy).expect("service");
    s.invoke(
        "classify",
        &[
            ("dataset".to_string(), SoapValue::Text(big_arff.to_string())),
            ("attribute".to_string(), SoapValue::Text("class".into())),
            (
                "options".to_string(),
                SoapValue::Text("-M 1 -U true".into()),
            ),
        ],
    )
    .expect("training");
    s
}

fn predict_args(probe_arff: &str) -> Vec<(String, SoapValue)> {
    vec![
        (
            "dataset".to_string(),
            SoapValue::Text(probe_arff.to_string()),
        ),
        ("attribute".to_string(), SoapValue::Text("class".into())),
    ]
}

fn headline_table() {
    banner(
        "E4 / §4.5",
        "interactive session: repeated small requests against a large trained model",
    );
    for &rows in &[2_000usize, 10_000, 40_000] {
        let (big_arff, probe_arff) = big_and_probe(rows);
        // Model state size for context.
        {
            use dm_algorithms::classifiers::Classifier;
            use dm_algorithms::options::Configurable;
            use dm_algorithms::state::Stateful;
            let mut ds = dm_data::arff::parse_arff(&big_arff).expect("parse");
            ds.set_class_by_name("class").expect("class");
            let mut model = dm_algorithms::classifiers::J48::new();
            model.set_option("-M", "1").expect("option");
            model.set_option("-U", "true").expect("option");
            model.train(&ds).expect("training");
            println!(
                "\ntraining rows: {rows}; serialised model state: {} KiB",
                model.encode_state().len() / 1024
            );
        }
        let per_call = trained_service(LifecyclePolicy::SerializePerCall, &big_arff);
        let harness = trained_service(LifecyclePolicy::InMemoryHarness, &big_arff);
        let args = predict_args(&probe_arff);
        println!(
            "{:>6} {:>22} {:>22} {:>8}",
            "calls", "serialize-per-call", "in-memory harness", "ratio"
        );
        for &n in &[1usize, 4, 16, 64] {
            let t0 = Instant::now();
            for _ in 0..n {
                per_call.invoke("predict", &args).expect("invoke");
            }
            let t_per_call = t0.elapsed();
            let t1 = Instant::now();
            for _ in 0..n {
                harness.invoke("predict", &args).expect("invoke");
            }
            let t_harness = t1.elapsed();
            println!(
                "{n:>6} {:>20.3?} {:>20.3?} {:>7.2}x",
                t_per_call,
                t_harness,
                t_per_call.as_secs_f64() / t_harness.as_secs_f64().max(1e-12)
            );
        }
        let (ser, de, hits) = per_call.lifecycle_stats();
        println!(
            "per-call counters: {ser} serialisations, {de} restores (harness: 0/0, {hits_h} hits)",
            hits_h = harness.lifecycle_stats().2
        );
        let _ = hits;
    }
}

fn bench(c: &mut Criterion) {
    headline_table();

    let (big_arff, probe_arff) = big_and_probe(10_000);
    let mut group = c.benchmark_group("e4_lifecycle");
    // The paper's scenario: small request, big state.
    for (label, policy) in [
        ("serialize_per_call", LifecyclePolicy::SerializePerCall),
        ("in_memory_harness", LifecyclePolicy::InMemoryHarness),
    ] {
        let s = trained_service(policy, &big_arff);
        let args = predict_args(&probe_arff);
        group.bench_with_input(BenchmarkId::new("predict_big_model", label), &s, |b, s| {
            b.iter(|| s.invoke("predict", black_box(&args)).expect("invoke"))
        });
    }
    // Train-per-call control: gap should be small.
    for (label, policy) in [
        ("serialize_per_call", LifecyclePolicy::SerializePerCall),
        ("in_memory_harness", LifecyclePolicy::InMemoryHarness),
    ] {
        let s = J48Service::with_policy(policy).expect("service");
        let args = j48_classify_args();
        s.invoke("classify", &args).expect("warm-up");
        group.bench_with_input(
            BenchmarkId::new("classify_breast_cancer", label),
            &s,
            |b, s| b.iter(|| s.invoke("classify", black_box(&args)).expect("invoke")),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
