//! E11 — UDDI registry publish and inquiry at scale: lookup costs as
//! the registry grows from the paper's ten services to thousands.
//! Expected shape: exact-name inquiry and publish-with-replace are
//! O(1) hash-map lookups, and category inquiry walks only the services
//! carrying that category via the inverted category→services index —
//! flat curves where the old list-backed scan grew linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_bench::banner;
use dm_wsrf::registry::{ServiceEntry, UddiRegistry};
use std::hint::black_box;

fn filled(n: usize) -> UddiRegistry {
    let reg = UddiRegistry::new();
    for i in 0..n {
        reg.publish(ServiceEntry {
            name: format!("Service{i:05}"),
            host: format!("host-{}", i % 16),
            wsdl_url: format!("http://host-{}/axis/Service{i:05}?wsdl", i % 16),
            categories: vec![
                if i % 3 == 0 {
                    "classifier"
                } else {
                    "clustering"
                }
                .to_string(),
                "datamining".to_string(),
            ],
            description: String::new(),
        });
    }
    reg
}

fn bench(c: &mut Criterion) {
    banner("E11 / §4.6", "UDDI registry inquiry scaling");
    let mut group = c.benchmark_group("e11_registry");
    for &n in &[10usize, 100, 1_000, 10_000] {
        let reg = filled(n);
        let needle = format!("Service{:05}", n - 1);
        group.bench_with_input(BenchmarkId::new("find_exact", n), &reg, |b, reg| {
            b.iter(|| reg.find(black_box(&needle)).expect("hit"))
        });
        group.bench_with_input(BenchmarkId::new("find_by_category", n), &reg, |b, reg| {
            b.iter(|| black_box(reg.find_by_category("classifier").len()))
        });
        group.bench_with_input(BenchmarkId::new("publish_replace", n), &reg, |b, reg| {
            b.iter(|| {
                reg.publish(ServiceEntry {
                    name: needle.clone(),
                    host: "host-x".into(),
                    wsdl_url: String::new(),
                    categories: vec![],
                    description: String::new(),
                })
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
