//! E12 — the content-addressed data plane: cold versus warm
//! re-enactment of the §5 case study with pass-by-reference payloads,
//! the trained-model cache, and memoised pure tasks.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_bench::banner;
use dm_workflow::engine::Executor;
use dm_workflow::memo::MemoCache;
use faehim::casestudy::run_case_study_with;
use faehim::Toolkit;
use std::hint::black_box;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    banner(
        "E12",
        "content-addressed data plane (pass-by-reference + model cache + memoised enactment)",
    );

    let toolkit = Toolkit::new().expect("toolkit");
    toolkit.enable_data_plane();
    let net = toolkit.network();
    let executor = Executor::serial().with_memoisation(Arc::new(MemoCache::new(64)));

    net.reset_wire_stats();
    let cold_start = net.now();
    let cold = run_case_study_with(&toolkit, &executor).expect("cold run");
    let cold_time = net.now() - cold_start;
    let cold_wire = net.wire_stats();

    net.reset_wire_stats();
    let warm_start = net.now();
    let warm = run_case_study_with(&toolkit, &executor).expect("warm run");
    let warm_time = net.now() - warm_start;
    let warm_wire = net.wire_stats();
    assert_eq!(cold.model_text, warm.model_text, "outputs must not change");

    println!("wire traffic, one case-study enactment:");
    println!(
        "  cold: {} envelopes, {} bytes, {:?} simulated network time",
        cold_wire.envelopes, cold_wire.bytes, cold_time
    );
    println!(
        "  warm: {} envelopes, {} bytes, {:?} simulated network time",
        warm_wire.envelopes, warm_wire.bytes, warm_time
    );
    println!(
        "  warm refs: {} substitutions, {} bytes saved, {} memo hits",
        warm_wire.ref_substitutions,
        warm_wire.bytes_saved,
        warm.report.memo_hits()
    );
    println!(
        "  ratios: {:.1}x fewer bytes, {:.1}x less network time",
        cold_wire.bytes as f64 / warm_wire.bytes.max(1) as f64,
        cold_time.as_nanos() as f64 / warm_time.as_nanos().max(1) as f64
    );

    // The E4 workload under the data plane: ten repeated
    // `classifyInstance` calls on the same dataset. The first call
    // ships the ARFF and trains; the rest travel by handle and hit the
    // trained-model cache.
    let e4_toolkit = Toolkit::new().expect("toolkit");
    e4_toolkit.enable_data_plane();
    let e4_net = e4_toolkit.network();
    let arff = dm_data::corpus::breast_cancer_arff();
    let classifier = e4_toolkit.classifier_client();
    e4_net.reset_wire_stats();
    let first_start = e4_net.now();
    let first = classifier
        .classify_instance(&arff, "J48", "", "Class")
        .expect("classify");
    let first_time = e4_net.now() - first_start;
    let first_wire = e4_net.wire_stats();
    e4_net.reset_wire_stats();
    let rest_start = e4_net.now();
    for _ in 0..9 {
        let repeat = classifier
            .classify_instance(&arff, "J48", "", "Class")
            .expect("classify");
        assert_eq!(first, repeat);
    }
    let rest_time = (e4_net.now() - rest_start) / 9;
    let rest_wire = e4_net.wire_stats();
    println!("repeated classifyInstance (E4 workload), per call:");
    println!(
        "  first: {} bytes, {:?} network time",
        first_wire.bytes, first_time
    );
    println!(
        "  later: {} bytes, {:?} network time ({:.1}x fewer bytes)",
        rest_wire.bytes / 9,
        rest_time,
        first_wire.bytes as f64 / (rest_wire.bytes as f64 / 9.0)
    );

    let mut group = c.benchmark_group("e12_dataplane");
    // Cold: everything from scratch, including service provisioning —
    // the paper's pass-by-value baseline.
    group.bench_function("cold_enactment", |b| {
        b.iter(|| {
            let tk = Toolkit::new().expect("toolkit");
            tk.enable_data_plane();
            let exec = Executor::serial().with_memoisation(Arc::new(MemoCache::new(64)));
            run_case_study_with(black_box(&tk), &exec).expect("run")
        })
    });
    // Warm: shared stores + model cache + memo cache.
    group.bench_function("warm_enactment", |b| {
        b.iter(|| run_case_study_with(black_box(&toolkit), &executor).expect("run"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
