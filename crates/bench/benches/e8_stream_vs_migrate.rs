//! E8 — §3's streaming requirement: stream records from a remote
//! source and process incrementally versus migrating the whole dataset
//! first. Expected shape: streaming amortises transfer and wins on
//! time-to-first-result and on early-exit consumers; migration pays the
//! whole transfer up front.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_bench::banner;
use dm_data::stream::{chunk_dataset, record_stream, RunningStats};
use dm_data::Dataset;
use dm_wsrf::transport::NetworkConfig;
use std::hint::black_box;
use std::time::Duration;

fn dataset(rows: usize) -> Dataset {
    dm_data::corpus::nominal_classification(rows, 8, 4, 2, 0.1, 7)
}

fn virtual_costs() {
    banner("E8 / §3", "streaming vs whole-dataset migration");
    let cfg = NetworkConfig::default();
    println!(
        "{:>8} {:>10} {:>16} {:>16} {:>18}",
        "rows", "chunk", "stream total", "first result", "migrate up-front"
    );
    for &rows in &[286usize, 10_000, 100_000] {
        let ds = dataset(rows);
        for &chunk in &[16usize, 256] {
            let batches = chunk_dataset(&ds, chunk).expect("chunking");
            let stream_total: Duration = batches
                .iter()
                .map(|b| cfg.transmit_time(b.byte_len()))
                .sum();
            let first = cfg.transmit_time(batches[0].byte_len());
            let migrate = cfg.transmit_time(dm_data::arff::write_arff(&ds).len());
            println!("{rows:>8} {chunk:>10} {stream_total:>16.3?} {first:>16.3?} {migrate:>18.3?}");
        }
    }
    println!("\n(shape: time-to-first-result under streaming ≈ one chunk; migration pays");
    println!(" the full transfer before any processing can begin)");
}

fn bench(c: &mut Criterion) {
    virtual_costs();
    let mut group = c.benchmark_group("e8_stream_vs_migrate");
    for &rows in &[10_000usize, 50_000] {
        let ds = dataset(rows);
        group.bench_with_input(
            BenchmarkId::new("stream_fold_running_stats", rows),
            &ds,
            |b, ds| {
                b.iter(|| {
                    let (tx, rx) = record_stream(ds, 8);
                    let src = ds.clone();
                    let producer =
                        std::thread::spawn(move || tx.send_dataset(&src, 256).expect("send"));
                    let stats = rx
                        .fold(RunningStats::new(ds.num_attributes()), |mut s, b| {
                            s.update(b);
                            s
                        })
                        .expect("fold");
                    producer.join().expect("producer");
                    black_box(stats)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("migrate_then_process", rows),
            &ds,
            |b, ds| {
                b.iter(|| {
                    let (tx, rx) = record_stream(ds, 8);
                    let src = ds.clone();
                    let producer =
                        std::thread::spawn(move || tx.send_dataset(&src, 256).expect("send"));
                    let whole = rx.collect().expect("collect");
                    producer.join().expect("producer");
                    let mut stats = RunningStats::new(whole.num_attributes());
                    for batch in chunk_dataset(&whole, whole.num_instances()).expect("chunk") {
                        stats.update(&batch);
                    }
                    black_box(stats)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
