//! E19 — the federated fleet under ≥2× overload: p99 sojourn and
//! shed-rate vs. replica count, with byte-identical mining outputs at
//! any replica count and routing seed.
//!
//! A `Mine` service (a J48 trained per replica on the same synthetic
//! corpus — every replica learns the identical model) is replicated
//! N ∈ {1, 2, 4, 8} times across simulated hosts, each with the E14
//! capacity model (2 workers × 2 ms ⇒ μ = 1000 req/s per replica).
//! An open-loop generator models many independent clients: Pareto
//! (α = 1.5, capped) inter-arrivals whose mean offers λ = 2000 req/s —
//! 2× one replica's capacity — modulated by a ±40% diurnal ramp over a
//! 2 s virtual day. Routing is power-of-two-choices over the fleet's
//! gossiped view and live load snapshot; a second phase lets the
//! queue-depth/p99 autoscaler grow and drain the fleet across the
//! diurnal cycle.
//!
//! Everything is seeded and driven on the virtual clock, so two runs
//! with the same seeds are byte-identical end to end, and runs that
//! differ only in replica count or routing seed must agree on every
//! commonly-served request's prediction.
//!
//! `FAEHIM_E19_SMOKE=1` shrinks the workload for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_algorithms::classifiers::{Classifier, J48};
use dm_bench::banner;
use dm_data::corpus::nominal_classification;
use dm_data::Dataset;
use dm_wsrf::container::{CapacityConfig, ServiceFault, WebService};
use dm_wsrf::fleet::{splitmix64, Autoscaler, AutoscalerConfig, Fleet, FleetConfig, ScaleAction};
use dm_wsrf::soap::SoapValue;
use dm_wsrf::transport::Network;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const WORKERS: usize = 2;
const SERVICE_TIME: Duration = Duration::from_millis(2);
const QUEUE_LIMIT: usize = 8;
/// Mean offered inter-arrival: λ = 2000 req/s = 2× one replica's
/// μ = workers / service_time = 1000 req/s.
const BASE_INTERARRIVAL: f64 = 500e-6;
const PARETO_ALPHA: f64 = 1.5;
/// One virtual "day" for the diurnal ramp.
const DAY: f64 = 2.0;
const ARRIVAL_SEED: u64 = 0xD1CE;
const ROUTING_SEED: u64 = 0xE19;
/// Client-perceived cost of a shed arrival: the caller must come back
/// after a retry-later interval, so a shed counts as this fixed
/// penalty in the perceived-latency distribution. (Served-only p99
/// saturates at the bounded queue's cap for *every* overloaded config
/// — E14's whole point — so it cannot order overloaded fleets; the
/// penalty-inclusive quantile can.)
const SHED_PENALTY: Duration = Duration::from_millis(25);

fn smoke() -> bool {
    std::env::var("FAEHIM_E19_SMOKE").is_ok()
}

fn requests() -> u32 {
    if smoke() {
        1_000
    } else {
        4_000
    }
}

fn replica_counts() -> &'static [usize] {
    if smoke() {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8]
    }
}

/// The replicated mining service: each instance trains its own J48 on
/// the same deterministic corpus (so every replica holds an identical
/// model) and answers `classify(row)` with the predicted class code.
struct MineService {
    model: J48,
    data: Dataset,
}

fn mine_service() -> Arc<dyn WebService> {
    let data = nominal_classification(200, 4, 3, 2, 0.05, 11);
    let mut model = J48::new();
    model
        .train(&data)
        .expect("J48 trains on the synthetic corpus");
    Arc::new(MineService { model, data })
}

impl WebService for MineService {
    fn name(&self) -> &str {
        "Mine"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("Mine", "http://localhost/Mine").operation(Operation::new(
            "classify",
            vec![Part::new("row", "long")],
            Part::new("label", "long"),
        ))
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> std::result::Result<SoapValue, ServiceFault> {
        match operation {
            "classify" => {
                let row = args
                    .iter()
                    .find(|(n, _)| n == "row")
                    .and_then(|(_, v)| v.as_int().ok())
                    .ok_or_else(|| ServiceFault::client("missing row"))?
                    as usize;
                let label = self
                    .model
                    .predict(&self.data, row % self.data.num_instances())
                    .map_err(|e| ServiceFault::server(e.to_string()))?;
                Ok(SoapValue::Int(label as i64))
            }
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

/// Deterministic heavy-tailed inter-arrival for request `i` at virtual
/// instant `at`: Pareto(α) scaled to the base mean, capped at 50× so
/// one extreme draw cannot end the day, then modulated by the diurnal
/// rate ramp (faster arrivals when the "day" swells).
fn interarrival(seed: u64, i: u32, at: Duration) -> Duration {
    let u = ((splitmix64(seed.wrapping_add(u64::from(i))) >> 11) as f64 / (1u64 << 53) as f64)
        .max(1e-12);
    let x_m = BASE_INTERARRIVAL * (PARETO_ALPHA - 1.0) / PARETO_ALPHA;
    let dt = (x_m / u.powf(1.0 / PARETO_ALPHA)).min(50.0 * BASE_INTERARRIVAL);
    let phase = at.as_secs_f64() / DAY * std::f64::consts::TAU;
    let rate = 1.0 + 0.4 * phase.sin();
    Duration::from_secs_f64(dt / rate)
}

fn fleet_with(replicas: usize, routing_seed: u64) -> (Arc<Network>, Fleet) {
    let net = Arc::new(Network::new());
    let mut config = FleetConfig::new("Mine");
    config.capacity = CapacityConfig {
        workers: WORKERS,
        queue_limit: Some(QUEUE_LIMIT),
        service_time: SERVICE_TIME,
    };
    config.routing_seed = routing_seed;
    let fleet = Fleet::new(Arc::clone(&net), config, Arc::new(mine_service));
    for _ in 0..replicas {
        fleet.add_replica(net.now());
    }
    fleet
        .gossip()
        .sync(replicas + 2)
        .expect("initial mesh converges");
    (net, fleet)
}

struct RunResult {
    /// Per-request prediction; `None` when the fleet shed the arrival.
    outputs: Vec<Option<i64>>,
    sojourns: Vec<Duration>,
    shed: u64,
}

/// Drive `requests` open-loop arrivals through the fleet. Arrival
/// instants are pinned with `set_virtual_time`, so queued predecessors
/// never slow the arrival process — the open-loop regime where closed
/// loops under-report tail latency. Every 32 arrivals the fleet
/// heartbeats and runs one anti-entropy round.
fn drive(net: &Network, fleet: &Fleet, requests: u32) -> RunResult {
    let mut outputs = Vec::with_capacity(requests as usize);
    let mut sojourns = Vec::with_capacity(requests as usize);
    let mut shed = 0u64;
    let mut t = Duration::ZERO;
    for i in 0..requests {
        t += interarrival(ARRIVAL_SEED, i, t);
        net.set_virtual_time(t);
        if i % 32 == 0 {
            fleet.heartbeat_all(t);
            fleet.gossip().run_round();
        }
        match fleet.invoke(
            t,
            "classify",
            vec![("row".into(), SoapValue::Int(i as i64))],
        ) {
            Ok(v) => {
                sojourns.push(net.virtual_time() - t);
                outputs.push(Some(v.as_int().expect("classify returns a label code")));
            }
            Err(e) if e.is_server_busy() => {
                shed += 1;
                outputs.push(None);
            }
            Err(e) => panic!("unexpected failure at arrival {i}: {e}"),
        }
    }
    RunResult {
        outputs,
        sojourns,
        shed,
    }
}

/// Nearest-rank quantile over raw samples.
fn quantile(sorted: &[Duration], q: f64) -> Duration {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn sorted(mut v: Vec<Duration>) -> Vec<Duration> {
    v.sort_unstable();
    v
}

/// Assert two runs agree on every commonly-served request and return
/// how many requests both served.
fn assert_outputs_agree(a: &[Option<i64>], b: &[Option<i64>], what: &str) -> usize {
    assert_eq!(a.len(), b.len());
    let mut common = 0;
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if let (Some(x), Some(y)) = (x, y) {
            assert_eq!(x, y, "{what}: request {i} mined different answers");
            common += 1;
        }
    }
    common
}

fn bench(c: &mut Criterion) {
    banner(
        "E19",
        "federated fleet under 2x overload: p99 + shed-rate vs replica count, byte-identical outputs",
    );
    let requests = requests();

    // --- p99 + shed-rate vs replica count. ---------------------------
    let mut p99s = Vec::new();
    let mut sheds = Vec::new();
    let mut runs = Vec::new();
    for &n in replica_counts() {
        let (net, fleet) = fleet_with(n, ROUTING_SEED);
        let run = drive(&net, &fleet, requests);
        let served = sorted(run.sojourns.clone());
        // Perceived latency: every served sojourn plus the fixed
        // retry-later penalty for each shed arrival.
        let mut perceived = run.sojourns.clone();
        perceived.extend((0..run.shed).map(|_| SHED_PENALTY));
        let perceived = sorted(perceived);
        let p99 = quantile(&perceived, 0.99);
        let shed_rate = run.shed as f64 / f64::from(requests);
        println!(
            "{n} replica(s): served {:>5}, shed {:>4} ({:>5.1}%), served p50 {:?} p99 {:?}, perceived p99 {p99:?}, router draws {}",
            served.len(),
            run.shed,
            100.0 * shed_rate,
            quantile(&served, 0.50),
            quantile(&served, 0.99),
            fleet.router().draws(),
        );
        p99s.push(p99);
        sheds.push(run.shed);
        runs.push(run);
    }
    assert!(
        sheds[0] > 0,
        "2x overload against one replica must shed some arrivals"
    );
    for pair in p99s.windows(2) {
        assert!(
            pair[1] <= pair[0],
            "perceived p99 must not degrade as replicas are added: {p99s:?}"
        );
    }
    for pair in sheds.windows(2) {
        assert!(
            pair[1] <= pair[0],
            "shed count must not grow as replicas are added: {sheds:?}"
        );
    }
    assert!(
        *p99s.last().unwrap() < p99s[0],
        "the full fleet must beat one replica's tail: {p99s:?}"
    );
    assert!(
        *sheds.last().unwrap() < sheds[0],
        "the full fleet must shed less than one replica: {sheds:?}"
    );

    // --- Byte-identity: same seed reruns exactly; different replica
    // counts and routing seeds agree on every commonly-served request.
    let (net, fleet) = fleet_with(replica_counts()[1], ROUTING_SEED);
    let rerun = drive(&net, &fleet, requests);
    assert_eq!(
        rerun.outputs, runs[1].outputs,
        "same seeds must replay byte-identically (sheds included)"
    );
    assert_eq!(rerun.shed, runs[1].shed);
    for (i, run) in runs.iter().enumerate().skip(1) {
        let common = assert_outputs_agree(&runs[0].outputs, &run.outputs, "across replica counts");
        assert!(common > 0, "run {i} shares no served requests with run 0");
    }
    let (net, fleet) = fleet_with(replica_counts()[1], ROUTING_SEED ^ 0x5EED);
    let reseeded = drive(&net, &fleet, requests);
    let common = assert_outputs_agree(&runs[1].outputs, &reseeded.outputs, "across routing seeds");
    println!(
        "byte-identity: rerun exact; {} common requests agree across replica counts/seeds",
        common
    );

    // --- Autoscaler across the diurnal cycle. ------------------------
    let (net, fleet) = fleet_with(1, ROUTING_SEED);
    let scaler = Autoscaler::new(AutoscalerConfig {
        min_replicas: 1,
        max_replicas: *replica_counts().last().unwrap(),
        queue_high: 3.0,
        p99_high: Duration::from_millis(8),
        queue_low: 0.5,
        cooldown: Duration::from_millis(100),
    });
    let mut outputs = Vec::new();
    let mut recent: Vec<Duration> = Vec::new();
    let mut shed = 0u64;
    let mut t = Duration::ZERO;
    let mut timeline: Vec<(Duration, usize)> = vec![(t, 1)];
    for i in 0..requests {
        t += interarrival(ARRIVAL_SEED, i, t);
        net.set_virtual_time(t);
        if i % 32 == 0 {
            fleet.heartbeat_all(t);
            fleet.gossip().run_round();
        }
        if i % 50 == 49 {
            let p99 = if recent.is_empty() {
                Duration::ZERO
            } else {
                quantile(&sorted(recent.clone()), 0.99)
            };
            recent.clear();
            if fleet.autoscale_tick(t, &scaler, p99) != ScaleAction::Hold {
                timeline.push((t, fleet.active_replicas().len()));
            }
        }
        match fleet.invoke(
            t,
            "classify",
            vec![("row".into(), SoapValue::Int(i as i64))],
        ) {
            Ok(v) => {
                recent.push(net.virtual_time() - t);
                outputs.push(Some(v.as_int().unwrap()));
            }
            Err(e) if e.is_server_busy() => {
                shed += 1;
                outputs.push(None);
            }
            Err(e) => panic!("autoscaled fleet failed at arrival {i}: {e}"),
        }
    }
    let ups = scaler
        .history()
        .iter()
        .filter(|e| e.action == ScaleAction::Up)
        .count();
    let downs = scaler
        .history()
        .iter()
        .filter(|e| e.action == ScaleAction::Down)
        .count();
    println!(
        "autoscaler: {} scale-ups, {} drains, final {} replica(s), shed {} vs {} static single-replica",
        ups,
        downs,
        fleet.active_replicas().len(),
        shed,
        sheds[0]
    );
    for (at, n) in &timeline {
        println!("  t={at:>12?} -> {n} replica(s)");
    }
    assert!(
        ups > 0,
        "a 2x-overloaded single replica must trigger scale-up"
    );
    assert!(
        shed < sheds[0],
        "autoscaling must shed less than the static single replica ({shed} vs {})",
        sheds[0]
    );
    assert_outputs_agree(&runs[0].outputs, &outputs, "autoscaled vs static");

    // --- Criterion: wall-clock cost of driving the simulated fleet. --
    let mut group = c.benchmark_group("e19_fleet");
    group.bench_function("fleet_4_replicas_512_arrivals", |b| {
        b.iter(|| {
            let (net, fleet) = fleet_with(4, ROUTING_SEED);
            black_box(drive(&net, &fleet, 512))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
