//! E14 — admission control under overload: an open-loop arrival stream
//! at 2× a host's service capacity, with a bounded accept queue that
//! sheds excess load versus the pathological unbounded queue.
//!
//! The host models `workers = 2` parallel workers with a 1 ms service
//! time (capacity μ = 2000 req/s); arrivals come every 250 µs
//! (λ = 4000 req/s), so half the offered load is excess. With a bounded
//! queue the host sheds that excess as retryable `ServerBusy` faults
//! and the sojourn time of *served* requests stays flat; with an
//! unbounded queue nothing is ever refused and the queueing delay grows
//! without bound for as long as the overload lasts.
//!
//! Arrivals are driven open-loop on the virtual clock: each request's
//! arrival instant is pinned with `set_virtual_time`, so later arrivals
//! do not slow down when earlier ones queue — exactly the regime where
//! closed-loop benchmarks under-report tail latency.

use criterion::{criterion_group, criterion_main, Criterion};
use dm_bench::banner;
use dm_wsrf::container::{CapacityConfig, ServiceFault};
use dm_wsrf::soap::SoapValue;
use dm_wsrf::transport::Network;
use dm_wsrf::wsdl::{Operation, Part, WsdlDocument};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const HOST: &str = "dm-host";
const WORKERS: usize = 2;
const SERVICE_TIME: Duration = Duration::from_millis(1);
const QUEUE_LIMIT: usize = 16;
/// λ = 2μ: one arrival every 250 µs against 2 workers × 1 ms service.
const INTERARRIVAL: Duration = Duration::from_micros(250);
const REQUESTS: u32 = 4000;
const WINDOW: usize = 500;

/// Minimal mining service: a fixed-cost `classify` operation. The
/// simulated cost lives in the capacity model, not in the handler.
struct MineService;

impl dm_wsrf::container::WebService for MineService {
    fn name(&self) -> &str {
        "Mine"
    }

    fn wsdl(&self) -> WsdlDocument {
        WsdlDocument::new("Mine", "http://localhost/Mine").operation(Operation::new(
            "classify",
            vec![Part::new("instance", "string")],
            Part::new("return", "string"),
        ))
    }

    fn invoke(
        &self,
        operation: &str,
        _args: &[(String, SoapValue)],
    ) -> std::result::Result<SoapValue, ServiceFault> {
        match operation {
            "classify" => Ok(SoapValue::Text("yes".into())),
            other => Err(ServiceFault::client(format!("no operation {other:?}"))),
        }
    }
}

fn overloaded_network(queue_limit: Option<usize>) -> Network {
    let net = Network::new();
    let host = net.add_host(HOST);
    host.deploy(Arc::new(MineService));
    host.set_capacity(Some(CapacityConfig {
        workers: WORKERS,
        queue_limit,
        service_time: SERVICE_TIME,
    }));
    net
}

/// Drive `requests` open-loop arrivals and return the sojourn time of
/// each *served* request (arrival to response, on the virtual clock)
/// plus the shed count.
fn drive(net: &Network, requests: u32) -> (Vec<Duration>, u64) {
    let mut sojourns = Vec::with_capacity(requests as usize);
    let mut shed = 0u64;
    for i in 0..requests {
        let arrival = INTERARRIVAL * i;
        net.set_virtual_time(arrival);
        let result = net.invoke(
            HOST,
            "Mine",
            "classify",
            vec![("instance".into(), SoapValue::Text("x".into()))],
        );
        match result {
            Ok(_) => sojourns.push(net.virtual_time() - arrival),
            Err(e) if e.is_server_busy() => shed += 1,
            Err(e) => panic!("unexpected failure at arrival {i}: {e}"),
        }
    }
    (sojourns, shed)
}

/// Nearest-rank quantile over raw samples (the exported histogram's
/// top bucket saturates at 10 s, useless for an unbounded queue).
fn quantile(sorted: &[Duration], q: f64) -> Duration {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn sorted(mut v: Vec<Duration>) -> Vec<Duration> {
    v.sort_unstable();
    v
}

fn bench(c: &mut Criterion) {
    banner(
        "E14",
        "admission control under 2x overload: bounded queue + shedding vs unbounded queue",
    );

    // --- Bounded queue: sheds excess, holds the tail flat. -----------
    let net = overloaded_network(Some(QUEUE_LIMIT));
    let (served, shed) = drive(&net, REQUESTS);
    let stats = net
        .host(HOST)
        .unwrap()
        .load_stats(net.virtual_time())
        .unwrap();
    assert_eq!(stats.shed, shed);
    let bounded = sorted(served);
    let bounded_p50 = quantile(&bounded, 0.50);
    let bounded_p99 = quantile(&bounded, 0.99);
    println!(
        "bounded queue ({WORKERS} workers, {QUEUE_LIMIT} slots): served {}, shed {} ({:.1}% of offered)",
        bounded.len(),
        shed,
        100.0 * shed as f64 / REQUESTS as f64
    );
    println!(
        "  sojourn p50 {bounded_p50:?}, p99 {bounded_p99:?}, max {:?}",
        bounded.last().unwrap()
    );
    assert!(shed > 0, "2x overload must shed with a bounded queue");
    assert!(
        bounded.len() as u64 + shed == u64::from(REQUESTS),
        "every arrival is served or shed"
    );
    // Worst admitted case waits ceil(16/2) service times in queue plus
    // its own 1 ms of service and two transport legs: well under 12 ms.
    assert!(
        bounded_p99 <= Duration::from_millis(12),
        "bounded p99 {bounded_p99:?} exceeds the 12 ms ceiling"
    );

    // --- Unbounded queue: never refuses, latency grows without bound.
    let net = overloaded_network(None);
    let (served, shed) = drive(&net, REQUESTS);
    assert_eq!(shed, 0, "unbounded queue must never shed");
    assert_eq!(served.len(), REQUESTS as usize);
    println!("unbounded queue: served {}, shed 0", served.len());
    let mut window_p99s = Vec::new();
    for (w, window) in served.chunks(WINDOW).enumerate() {
        let p99 = quantile(&sorted(window.to_vec()), 0.99);
        println!(
            "  arrivals {:>5}..{:<5} p99 {p99:?}",
            w * WINDOW,
            w * WINDOW + window.len()
        );
        window_p99s.push(p99);
    }
    for pair in window_p99s.windows(2) {
        assert!(
            pair[1] > pair[0],
            "unbounded-queue p99 must grow monotonically under sustained overload: {window_p99s:?}"
        );
    }
    let unbounded_p99 = *window_p99s.last().unwrap();
    assert!(
        unbounded_p99 > 4 * window_p99s[0],
        "tail should keep climbing: first {:?}, last {:?}",
        window_p99s[0],
        unbounded_p99
    );
    println!(
        "final-window p99: bounded {bounded_p99:?} vs unbounded {unbounded_p99:?} ({}x)",
        unbounded_p99.as_nanos() / bounded_p99.as_nanos().max(1)
    );

    let mut group = c.benchmark_group("e14_overload");
    group.bench_function("bounded_512_arrivals", |b| {
        b.iter(|| {
            let net = overloaded_network(Some(QUEUE_LIMIT));
            black_box(drive(&net, 512))
        })
    });
    group.bench_function("unbounded_512_arrivals", |b| {
        b.iter(|| {
            let net = overloaded_network(None);
            black_box(drive(&net, 512))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
