//! E2 — Figure 4: J48/C4.5 over the breast-cancer data. Verifies the
//! node-caps root, prints the tree, and measures training and graph
//! rendering across dataset scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_algorithms::classifiers::{Classifier, J48};
use dm_bench::banner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    banner(
        "E2 / Figure 4",
        "C4.5 decision tree (root must be node-caps)",
    );
    let ds = dm_data::corpus::breast_cancer();
    let mut j48 = J48::new();
    j48.train(&ds).expect("training");
    println!("{}", j48.describe());
    assert_eq!(j48.root_attribute(), Some("node-caps"));

    let mut group = c.benchmark_group("e2_j48");
    group.bench_function("train_breast_cancer_286", |b| {
        b.iter(|| {
            let mut model = J48::new();
            model.train(black_box(&ds)).expect("training");
            model
        })
    });

    for &rows in &[1_000usize, 5_000, 20_000] {
        let big = dm_data::corpus::nominal_classification(rows, 9, 4, 2, 0.15, 42);
        group.bench_with_input(
            BenchmarkId::new("train_synthetic", rows),
            &big,
            |b, data| {
                b.iter(|| {
                    let mut model = J48::new();
                    model.train(black_box(data)).expect("training");
                    model
                })
            },
        );
    }

    group.bench_function("render_tree_svg", |b| {
        let tree = j48.tree_model().expect("tree");
        b.iter(|| {
            let mut spec = dm_viz::TreeSpec::new();
            for node in tree.nodes() {
                spec.add(node.label.clone(), node.edge.clone(), node.is_leaf);
            }
            for (i, node) in tree.nodes().iter().enumerate() {
                for &child in &node.children {
                    spec.connect(i, child);
                }
            }
            black_box(spec.to_svg())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
