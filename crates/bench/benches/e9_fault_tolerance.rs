//! E9 — fault tolerance: invocation latency and success under injected
//! transport failures, with replica migration. Expected shape: success
//! stays at 100% while p < 1 with enough replicas; cost grows with the
//! failure probability (retries + failover) — and circuit breakers
//! recover most of that cost by refusing to keep paying for a flaky
//! primary once it trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_bench::banner;
use dm_workflow::graph::{Token, Tool};
use dm_wsrf::prelude::{BreakerConfig, ResiliencePolicy};
use faehim::Toolkit;
use std::hint::black_box;

fn run_once(tool: &dyn Tool) -> bool {
    tool.execute(&[
        Token::Text(dm_bench::breast_cancer_arff().to_string()),
        Token::Text("Class".into()),
        Token::Text(String::new()),
    ])
    .is_ok()
}

fn success_table() {
    banner(
        "E9 / §3",
        "fault tolerance: job migration under injected failures",
    );
    println!("{:>8} {:>8} {:>12}", "p(fail)", "hosts", "success rate");
    for &p in &[0.0f64, 0.1, 0.3, 0.6] {
        for &replicas in &[1usize, 3] {
            let hosts: Vec<String> = (0..replicas).map(|i| format!("h{i}")).collect();
            let host_refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
            let toolkit = Toolkit::with_hosts(&host_refs).expect("toolkit");
            let mut tools = toolkit.import_service("h0", "J48").expect("import");
            let classify = tools.remove(0);
            let net = toolkit.network();
            for h in &hosts {
                net.set_failure_probability(h, p);
            }
            net.reseed_faults(7);
            let trials = 40;
            let ok = (0..trials).filter(|_| run_once(&classify)).count();
            println!(
                "{p:>8.1} {replicas:>8} {:>11.0}%",
                100.0 * ok as f64 / trials as f64
            );
        }
    }
    println!("(shape: replicas turn transient transport failures into completed jobs)");
}

fn breaker_comparison_table() {
    banner(
        "E9 / resilience",
        "circuit breakers + demotion vs naive retry-every-host, flaky primary at p = 0.3",
    );
    println!(
        "{:>10} {:>8} {:>14} {:>16} {:>9}",
        "mode", "p(fail)", "wasted tries", "virtual cost", "success"
    );
    for &with_breakers in &[false, true] {
        let mut toolkit = Toolkit::with_hosts(&["a", "b", "c"]).expect("toolkit");
        if with_breakers {
            // One attempt per host, like the naive failover loop: the
            // difference measured here is breaker fail-fast + demotion.
            toolkit.enable_resilience(
                ResiliencePolicy::default().attempts(1),
                BreakerConfig::default(),
            );
        }
        let mut tools = toolkit.import_service("a", "J48").expect("import");
        let classify = tools.remove(0);
        let net = toolkit.network();
        net.set_failure_probability("a", 0.3);
        net.reseed_faults(7);

        let virtual_before = net.now();
        let trials = 60;
        let ok = (0..trials).filter(|_| run_once(&classify)).count();
        let wasted: usize = net
            .monitor()
            .summary_by_host()
            .iter()
            .map(|s| s.faults + s.transport_errors)
            .sum();
        let cost = net.now() - virtual_before;
        println!(
            "{:>10} {:>8.1} {:>14} {:>16?} {:>8.0}%",
            if with_breakers { "breakers" } else { "naive" },
            0.3,
            wasted,
            cost,
            100.0 * ok as f64 / trials as f64
        );
    }
    println!("(shape: the naive loop re-tries the flaky primary on every call; breakers trip,");
    println!(" the tool demotes the primary, and later calls go straight to healthy replicas)");
}

fn bench(c: &mut Criterion) {
    success_table();
    breaker_comparison_table();
    let mut group = c.benchmark_group("e9_fault_tolerance");
    for &p in &[0.0f64, 0.1, 0.3] {
        let toolkit = Toolkit::with_hosts(&["a", "b", "c"]).expect("toolkit");
        let mut tools = toolkit.import_service("a", "J48").expect("import");
        let classify = tools.remove(0);
        let net = toolkit.network();
        net.set_failure_probability("a", p);
        net.reseed_faults(11);
        group.bench_with_input(
            BenchmarkId::new("classify_with_failover", format!("p={p}")),
            &classify,
            |b, tool| {
                b.iter(|| {
                    // With replicas b and c healthy, every call succeeds.
                    let out = tool
                        .execute(&[
                            Token::Text(dm_bench::breast_cancer_arff().to_string()),
                            Token::Text("Class".into()),
                            Token::Text(String::new()),
                        ])
                        .expect("failover");
                    black_box(out)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
