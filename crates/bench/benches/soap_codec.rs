//! SOAP envelope codec micro-benchmarks: encode/decode cost for small
//! control-plane calls, bulk dataset-bearing calls, and list-shaped
//! responses. Guards the allocation-churn work in the envelope writers
//! (single-buffer fast paths instead of tree construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_bench::banner;
use dm_data::corpus::breast_cancer_arff;
use dm_wsrf::soap::{SoapCall, SoapResponse, SoapValue};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    banner(
        "codec",
        "SOAP envelope encode/decode (control calls, bulk datasets, list responses)",
    );

    let small =
        SoapCall::new("Classifier", "getOptions").arg("name", SoapValue::Text("J48".into()));
    let bulk = SoapCall::new("Classifier", "classifyInstance")
        .arg("dataset", SoapValue::Text(breast_cancer_arff()))
        .arg("classifier", SoapValue::Text("J48".into()))
        .arg("options", SoapValue::Text(String::new()))
        .arg("attribute", SoapValue::Text("Class".into()));
    let list = SoapResponse::Value(SoapValue::List(
        (0..40)
            .map(|i| SoapValue::Text(format!("algorithm-{i}")))
            .collect(),
    ));

    let small_xml = small.to_envelope();
    let bulk_xml = bulk.to_envelope();
    let list_xml = list.to_envelope("getClassifiers");

    println!(
        "envelope sizes: small {} B, bulk {} B, list {} B",
        small_xml.len(),
        bulk_xml.len(),
        list_xml.len()
    );

    let mut group = c.benchmark_group("soap_codec");
    for (label, call, xml) in [
        ("small_call", &small, &small_xml),
        ("bulk_call", &bulk, &bulk_xml),
    ] {
        group.bench_with_input(BenchmarkId::new("encode", label), call, |b, call| {
            b.iter(|| black_box(call).to_envelope())
        });
        group.bench_with_input(BenchmarkId::new("decode", label), xml, |b, xml| {
            b.iter(|| SoapCall::from_envelope(black_box(xml)).expect("decode"))
        });
    }
    group.bench_function("encode/list_response", |b| {
        b.iter(|| black_box(&list).to_envelope("getClassifiers"))
    });
    group.bench_function("decode/list_response", |b| {
        b.iter(|| SoapResponse::from_envelope(black_box(&list_xml)).expect("decode"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
