//! Shared helpers for the `faehim-rs` benchmark harness.
//!
//! Each Criterion bench target regenerates one experiment of the
//! per-experiment index in DESIGN.md (E1–E11). Benches print the
//! paper-shaped rows/series before measuring, so `cargo bench` output
//! doubles as the EXPERIMENTS.md evidence.

use dm_wsrf::soap::SoapValue;

/// The case-study dataset as ARFF text (cached per process).
pub fn breast_cancer_arff() -> &'static str {
    use std::sync::OnceLock;
    static ARFF: OnceLock<String> = OnceLock::new();
    ARFF.get_or_init(dm_data::corpus::breast_cancer_arff)
}

/// Standard argument vector for J48Service::classify.
pub fn j48_classify_args() -> Vec<(String, SoapValue)> {
    vec![
        (
            "dataset".to_string(),
            SoapValue::Text(breast_cancer_arff().to_string()),
        ),
        ("attribute".to_string(), SoapValue::Text("Class".into())),
        ("options".to_string(), SoapValue::Text(String::new())),
    ]
}

/// Print a banner for an experiment.
pub fn banner(id: &str, what: &str) {
    println!("\n================================================================");
    println!("{id}: {what}");
    println!("================================================================");
}
