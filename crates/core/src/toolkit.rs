//! The [`Toolkit`]: one-call provisioning of the FAEHIM environment —
//! a simulated network with service hosts, the deployed Web Service
//! suite, a UDDI registry, and a workflow toolbox organised as in
//! Figures 1 and 2. [`Toolkit::enable_resilience`] turns on the
//! resilience layer end to end: imported tools, typed clients, and
//! executors all share one circuit-breaker board and retry policy, and
//! [`Toolkit::degraded_mode_report`] summarises what the deployment is
//! routing around.

use dm_services::client::{ClassifierClient, ClustererClient, ConvertClient, J48Client};
use dm_services::{deploy_faehim_suite, publish_suite};
use dm_workflow::durable::DurableConfig;
use dm_workflow::engine::{BackoffSink, ExecutionReport, Executor, RetryPolicy};
use dm_workflow::error::WorkflowError;
use dm_workflow::graph::{TaskGraph, TaskId, Token};
use dm_workflow::journal::RunJournal;
use dm_workflow::planner::{Goal, Plan, Planner, UsageRecommender};
use dm_workflow::toolbox::Toolbox;
use dm_workflow::wsimport::{import_from_host, WsTool};
use dm_wsrf::container::{CapacityConfig, ServiceContainer};
use dm_wsrf::costmodel::CostModel;
use dm_wsrf::dataplane::AttachmentStore;
use dm_wsrf::fleet::P2cRouter;
use dm_wsrf::metrics::{MetricsRegistry, PoolSnapshot, RecoverySnapshot};
use dm_wsrf::registry::{ServiceEntry, UddiRegistry};
use dm_wsrf::resilience::{BreakerBoard, BreakerConfig, ResiliencePolicy, ResilientCaller};
use dm_wsrf::trace::Tracer;
use dm_wsrf::transport::{DataPlaneConfig, Network, WireStats};
use dm_wsrf::WsError;
use std::sync::Arc;
use std::time::Duration;

/// Default host name for a single-host toolkit (the paper's services
/// were hosted at the Welsh e-Science Centre).
pub const DEFAULT_HOST: &str = "wesc.cf.ac.uk";

/// The provisioned FAEHIM environment.
pub struct Toolkit {
    network: Arc<Network>,
    registry: Arc<UddiRegistry>,
    toolbox: Arc<Toolbox>,
    hosts: Vec<String>,
    resilience: Option<ResilientCaller>,
    durable: Option<DurableConfig>,
    router: Option<Arc<P2cRouter>>,
}

impl Toolkit {
    /// Provision a single-host toolkit with the full service suite
    /// deployed, published, and imported into the toolbox.
    pub fn new() -> Result<Toolkit, WsError> {
        Toolkit::with_hosts(&[DEFAULT_HOST])
    }

    /// Provision with several hosts, each running the full suite
    /// (replicas for the fault-tolerance and parallelism experiments).
    pub fn with_hosts(hosts: &[&str]) -> Result<Toolkit, WsError> {
        let network = Arc::new(Network::new());
        let registry = Arc::new(UddiRegistry::new());
        let toolbox = Arc::new(Toolbox::with_common_tools());
        let mut names = Vec::with_capacity(hosts.len());
        for &host in hosts {
            let container = network.add_host(host);
            deploy_faehim_suite(&container)?;
            publish_suite(&container, &registry)?;
            names.push(host.to_string());
        }
        let toolkit = Toolkit {
            network,
            registry,
            toolbox,
            hosts: names,
            resilience: None,
            durable: None,
            router: None,
        };
        // Import every deployed service's operations as workspace tools
        // (Triana: "creates a tool for each operation").
        let primary = toolkit.hosts[0].clone();
        for entry in toolkit.registry.all() {
            if entry.host == primary {
                for tool in toolkit.import_service(&primary, &entry.name)? {
                    toolkit.toolbox.add(Arc::new(tool));
                }
            }
        }
        // Local data-manipulation / processing / visualisation tools
        // (the Figure 2 toolbox components) plus the Triana signal
        // processing toolbox the paper cites (§2).
        crate::tools::register_local_tools(&toolkit.toolbox);
        crate::signal_tools::register_signal_tools(&toolkit.toolbox);
        Ok(toolkit)
    }

    /// The simulated network.
    pub fn network(&self) -> Arc<Network> {
        Arc::clone(&self.network)
    }

    /// The UDDI registry.
    pub fn registry(&self) -> Arc<UddiRegistry> {
        Arc::clone(&self.registry)
    }

    /// The workflow toolbox.
    pub fn toolbox(&self) -> Arc<Toolbox> {
        Arc::clone(&self.toolbox)
    }

    /// Provisioned host names.
    pub fn hosts(&self) -> &[String] {
        &self.hosts
    }

    /// The primary host.
    pub fn primary_host(&self) -> &str {
        &self.hosts[0]
    }

    /// A host's container.
    pub fn container(&self, host: &str) -> Result<Arc<ServiceContainer>, WsError> {
        self.network.host(host)
    }

    /// Turn on the resilience layer: one shared circuit-breaker board
    /// and retry policy, used by every tool subsequently imported via
    /// [`Toolkit::import_service`], by the typed clients, and by
    /// [`Toolkit::resilient_executor`].
    pub fn enable_resilience(&mut self, policy: ResiliencePolicy, breakers: BreakerConfig) {
        let board = Arc::new(BreakerBoard::new(breakers));
        self.resilience = Some(ResilientCaller::new(self.network(), board, policy));
    }

    /// The shared resilient caller, when [`Toolkit::enable_resilience`]
    /// has been called.
    pub fn resilience(&self) -> Option<&ResilientCaller> {
        self.resilience.as_ref()
    }

    /// Turn on replica-aware routing (E19): every tool subsequently
    /// imported via [`Toolkit::import_service`] re-orders its replica
    /// set per call with a seeded power-of-two-choices draw over
    /// [`Network::load_snapshot`], instead of always hammering the
    /// import host first. Returns the shared router so callers can
    /// attach it to hand-built tools or inspect its draw counter.
    pub fn enable_replica_routing(&mut self, seed: u64) -> Arc<P2cRouter> {
        let router = Arc::new(P2cRouter::new(seed));
        self.router = Some(Arc::clone(&router));
        router
    }

    /// The shared replica router, when
    /// [`Toolkit::enable_replica_routing`] has been called.
    pub fn replica_router(&self) -> Option<Arc<P2cRouter>> {
        self.router.clone()
    }

    /// Turn on admission control on every provisioned host: each
    /// container simulates `config.workers` parallel workers with a
    /// FIFO accept queue of `config.queue_limit` slots on the network's
    /// virtual clock. Arrivals beyond the queue are shed with a
    /// retryable `ServerBusy` fault; admitted requests charge their
    /// queueing delay and service time to the clock. Pass
    /// `queue_limit: None` to model the pathological unbounded queue.
    /// Call with a fresh config to reset the per-host load counters, or
    /// see [`ServiceContainer::set_capacity`] for per-host control.
    pub fn enable_admission_control(&self, config: CapacityConfig) {
        for host in &self.hosts {
            if let Ok(container) = self.network.host(host) {
                container.set_capacity(Some(config));
            }
        }
    }

    /// Turn on the content-addressed data plane with default settings:
    /// datasets and models above the inline threshold travel as
    /// `DataRef` handles whenever the receiving side already holds the
    /// payload, and the network starts accounting wire bytes saved
    /// ([`Toolkit::wire_stats`]).
    pub fn enable_data_plane(&self) {
        self.network.enable_data_plane(DataPlaneConfig::default());
    }

    /// Wire-level traffic counters (envelopes, bytes, bytes saved by
    /// pass-by-reference substitution).
    pub fn wire_stats(&self) -> WireStats {
        self.network.wire_stats()
    }

    /// Turn on causal tracing end to end: every container records
    /// dispatch spans, the transport records send/receive legs, and
    /// executors built by [`Toolkit::resilient_executor`] open workflow
    /// and task spans into the same tracer. Span intervals run on the
    /// network's virtual clock.
    pub fn enable_tracing(&self) -> Arc<Tracer> {
        self.network.enable_tracing()
    }

    /// The shared tracer, when [`Toolkit::enable_tracing`] has been
    /// called.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.network.tracer()
    }

    /// Turn on event-sourced durable enactment: subsequent
    /// [`Toolkit::run_durable`] calls append every run event to one
    /// shared append-only [`RunJournal`], dispatch tasks to `workers`
    /// claim/ack worker threads, and can resume a crashed run from the
    /// log without re-executing completed tasks. Large task outputs are
    /// persisted as content-addressed refs into the client attachment
    /// store when the data plane is enabled (a dedicated store is
    /// provisioned otherwise), so the journal itself stays small.
    /// Returns the journal so callers can snapshot its bytes, inject
    /// crashes against its append counter, or rebuild it after a
    /// simulated orchestrator death.
    pub fn enable_durable_enactment(&mut self, workers: usize) -> Arc<RunJournal> {
        let store = self
            .network
            .client_store()
            .unwrap_or_else(|| Arc::new(AttachmentStore::new(64 << 20)));
        let journal = Arc::new(RunJournal::with_store(store, 1024));
        self.durable = Some(DurableConfig::new(Arc::clone(&journal)).with_workers(workers));
        journal
    }

    /// Adopt a rebuilt journal (e.g. one recovered from a dead
    /// orchestrator's bytes via [`RunJournal::from_bytes`]) as the
    /// durable-enactment log, replacing whatever
    /// [`Toolkit::enable_durable_enactment`] installed.
    pub fn adopt_journal(&mut self, journal: Arc<RunJournal>) {
        let workers = self.durable.as_ref().map_or(4, DurableConfig::workers);
        self.durable = Some(DurableConfig::new(journal).with_workers(workers));
    }

    /// The durable-enactment configuration, when
    /// [`Toolkit::enable_durable_enactment`] has been called. Clone and
    /// extend it (crash scripts, kill points) before handing it to
    /// [`dm_workflow::engine::Executor::run_durable`] directly.
    pub fn durable_config(&self) -> Option<&DurableConfig> {
        self.durable.as_ref()
    }

    /// Enact `graph` durably: every lifecycle event is journalled
    /// before it takes effect, completed work recorded by a previous
    /// (possibly crashed) run of the same graph is replayed from the
    /// log instead of re-executed, and task failures block only their
    /// downstream cone while independent branches run to completion.
    /// The executor is the toolkit's resilient executor, so retries,
    /// virtual-clock accounting, and tracing all apply. Errors with a
    /// [`dm_workflow::error::WorkflowError::Ws`] message when durable
    /// enactment has not been enabled.
    pub fn run_durable(
        &self,
        graph: &TaskGraph,
        bindings: &std::collections::HashMap<(TaskId, usize), Token>,
    ) -> dm_workflow::error::Result<ExecutionReport> {
        let config = self.durable.as_ref().ok_or_else(|| {
            dm_workflow::error::WorkflowError::Ws(
                "durable enactment is not enabled; call Toolkit::enable_durable_enactment".into(),
            )
        })?;
        self.resilient_executor(None)
            .run_durable(graph, bindings, config)
    }

    /// Set the shared compute pool's worker budget for subsequent
    /// parallel training, batched scoring, and cross-validation
    /// batches (see `dm_algorithms::pool`). Equivalent to launching
    /// with `FAEHIM_POOL_THREADS=n`, but takes effect immediately.
    /// Results are byte-identical at every thread count; this knob
    /// only trades wall-clock time for cores.
    pub fn set_compute_threads(&self, threads: usize) {
        dm_algorithms::pool::set_global_threads(threads);
    }

    /// Snapshot of the shared compute pool's lifetime counters
    /// (threads, tasks, batches, steals, per-worker busy time),
    /// flattened to the primitive form the metrics registry ingests.
    pub fn compute_pool_stats(&self) -> PoolSnapshot {
        let stats = dm_algorithms::pool::stats();
        PoolSnapshot {
            threads: stats.threads,
            tasks: stats.tasks,
            batches: stats.batches,
            steals: stats.steals,
            workers: stats
                .workers
                .iter()
                .map(|w| (w.tasks, w.busy.as_secs_f64()))
                .collect(),
        }
    }

    /// Snapshot the deployment's counters into a fresh
    /// [`MetricsRegistry`]: per-service invocation counts, latency
    /// histograms and byte counters from the monitor log, wire-level
    /// envelope/byte/savings totals, the attachment stores, the
    /// compute pool's task/steal/busy counters, and the
    /// classifier's model/evaluation caches. Fetching the classifier
    /// cache counters is itself a recorded service call, so it runs
    /// before the monitor snapshot and is accounted like any other
    /// invocation.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let metrics = MetricsRegistry::new();
        let classifier_caches = self.classifier_client().get_cache_stats().ok();
        metrics.ingest_monitor(self.network.monitor());
        metrics.ingest_wire(&self.network.wire_stats());
        if let Some((model, eval)) = classifier_caches {
            let labels = [("service", "Classifier")];
            metrics.ingest_cache("model", &labels, &model);
            metrics.ingest_cache("eval", &labels, &eval);
        }
        let now = self.network.now();
        for host in &self.hosts {
            if let Ok(container) = self.network.host(host) {
                metrics.ingest_cache(
                    "attachments",
                    &[("host", host)],
                    &container.attachments().stats(),
                );
                if let Some(load) = container.load_stats(now) {
                    metrics.ingest_load(host, &load);
                }
            }
        }
        if let Some(store) = self.network.client_store() {
            metrics.ingest_cache("attachments", &[("host", "client")], &store.stats());
        }
        metrics.ingest_pool(&self.compute_pool_stats());
        if let Some(config) = &self.durable {
            let stats = config.journal().stats();
            metrics.ingest_recovery(&RecoverySnapshot {
                journal_appends: stats.appends,
                journal_records: stats.records,
                journal_bytes: stats.bytes,
                replay_hits: stats.replay_hits,
                redeliveries: stats.redeliveries,
                torn_bytes_dropped: stats.torn_bytes,
            });
        }
        metrics
    }

    /// Freeze the deployment's live telemetry into a [`CostModel`]
    /// snapshot: per-host latency quantiles and failure rates from the
    /// monitor log, outstanding requests from the network, shed rates
    /// and in-system depth from each host's admission-control counters,
    /// and breaker state when the resilience layer is enabled. The
    /// snapshot is plain data — a planner run over it is reproducible.
    pub fn cost_model(&self) -> CostModel {
        let mut cost = CostModel::new();
        let now = self.network.now();
        cost.observe_monitor(self.network.monitor());
        cost.observe_loads(&self.network.load_snapshot());
        for host in &self.hosts {
            if let Ok(container) = self.network.host(host) {
                if let Some(load) = container.load_stats(now) {
                    cost.observe_load_stats(host, &load);
                }
            }
        }
        if let Some(caller) = &self.resilience {
            cost.observe_breakers(caller.board(), now);
        }
        cost
    }

    /// Plan an abstract composition goal against live telemetry and
    /// bind it to a concrete workflow. Candidates for each step come
    /// from the registry's healthy inquiry, narrowed to services that
    /// actually expose the step's operation; the cost snapshot is
    /// [`Toolkit::cost_model`]; when durable enactment is enabled, the
    /// run journal is mined into a [`UsageRecommender`] so past
    /// co-invocations pre-rank the candidates. Bound tools carry the
    /// toolkit's purity and resilience metadata but are pinned to the
    /// planner's chosen replica — no router and no failover list, the
    /// plan *is* the placement decision.
    ///
    /// Returns the plan alongside the enactable graph and its task ids
    /// in step order.
    pub fn plan_composition(
        &self,
        goal: &Goal,
        planner: &Planner,
    ) -> dm_workflow::Result<(Plan, TaskGraph, Vec<TaskId>)> {
        let cost = self.cost_model();
        let now = self.network.now();
        let freshness = Duration::from_secs(300);
        let mut recommender = UsageRecommender::new();
        if let Some(config) = &self.durable {
            recommender.observe_journal(config.journal());
        }
        let plan = planner.plan(
            goal,
            &|step| {
                // The UDDI registry keys entries by service name (jUDDI
                // update semantics), so a category hit names the
                // *service*; its replica set is every toolkit host that
                // deploys it with the step's operation.
                self.registry
                    .find_by_category_healthy(&step.category, now, freshness)
                    .into_iter()
                    .flat_map(|e| {
                        self.hosts.iter().filter_map(move |host| {
                            let exposes = self
                                .network
                                .host(host)
                                .ok()
                                .and_then(|c| c.wsdl_of(&e.name).ok())
                                .is_some_and(|w| {
                                    w.operations.iter().any(|o| o.name == step.operation)
                                });
                            exposes.then(|| ServiceEntry {
                                host: host.clone(),
                                ..e.clone()
                            })
                        })
                    })
                    .collect()
            },
            &cost,
            if recommender.is_empty() {
                None
            } else {
                Some(&recommender)
            },
        )?;
        let network = self.network();
        let (graph, tasks) = plan.bind_with(&mut |host, service| {
            let mut tools = import_from_host(Arc::clone(&network), host, service)
                .map_err(WorkflowError::from)?;
            for tool in &mut tools {
                tool.set_pure(dm_services::is_pure_operation(
                    service,
                    &tool.operation().name,
                ));
                if let Some(caller) = &self.resilience {
                    tool.set_resilience(caller.clone());
                }
            }
            Ok(tools)
        })?;
        Ok((plan, graph, tasks))
    }

    /// A serial [`Executor`] aligned with the toolkit's resilience
    /// configuration: task retries use the resilience policy's attempt
    /// ceiling and backoff shape, backoff pauses are charged to the
    /// network's virtual clock, and `retry_budget` bounds total retries
    /// across the workflow. Without resilience enabled this is a plain
    /// no-retry serial executor.
    pub fn resilient_executor(&self, retry_budget: Option<usize>) -> Executor {
        let mut executor = Executor::serial();
        {
            // Execution reports read simulated elapsed time off the
            // network's virtual clock, clock charges included.
            let network = self.network();
            executor = executor.with_virtual_clock(Arc::new(move || network.now()));
        }
        if let Some(tracer) = self.network.tracer() {
            executor = executor.with_tracing(tracer);
        }
        if let Some(caller) = &self.resilience {
            let policy = caller.policy();
            let network = self.network();
            let sink: BackoffSink = Arc::new(move |pause| network.advance_virtual_time(pause));
            executor = executor
                .with_retry_policy(RetryPolicy {
                    max_attempts: policy.max_attempts as usize,
                    base_backoff: policy.base_backoff,
                    max_backoff: policy.max_backoff,
                    retry_budget,
                    seed: 0xFAE1,
                })
                .with_backoff_sink(sink);
        }
        executor
    }

    /// What the deployment is currently routing around: breaker states,
    /// per-host traffic and failure rates, and registry health.
    pub fn degraded_mode_report(&self) -> String {
        let now = self.network.now();
        let mut out = String::from("Degraded-mode report\n====================\n\n");
        match &self.resilience {
            None => out.push_str("resilience layer: disabled\n"),
            Some(caller) => {
                let p = caller.policy();
                out.push_str(&format!(
                    "resilience layer: enabled (deadline {:?}, {} attempts, backoff {:?}..{:?})\n",
                    p.deadline, p.max_attempts, p.base_backoff, p.max_backoff
                ));
                let open = caller.board().open_hosts(now);
                if open.is_empty() {
                    out.push_str("open breakers: none\n");
                } else {
                    out.push_str(&format!("open breakers: {}\n", open.join(", ")));
                }
                out.push_str("breaker states:\n");
                for host in &self.hosts {
                    let breaker = caller.board().breaker(host);
                    out.push_str(&format!(
                        "  {host}: {:?} (opened {} times)\n",
                        breaker.state(now),
                        breaker.times_opened()
                    ));
                }
            }
        }
        out.push_str("\nper-host traffic:\n");
        let summaries = self.network.monitor().summary_by_host();
        if summaries.is_empty() {
            out.push_str("  (no invocations recorded)\n");
        }
        for s in summaries {
            out.push_str(&format!(
                "  {}: {} calls, failure rate {:.2}, p50 {:?}, p99 {:?}, max {:?}\n",
                s.host,
                s.invocations,
                s.failure_rate,
                s.p50_duration,
                s.p99_duration,
                s.max_duration
            ));
        }
        out
    }

    /// Import one service's operations as tools, with every other host
    /// added as a failover replica. When resilience is enabled the
    /// tools route attempts through the shared resilient caller and
    /// demote failing primaries behind healthy replicas.
    pub fn import_service(&self, host: &str, service: &str) -> Result<Vec<WsTool>, WsError> {
        let mut tools = import_from_host(self.network(), host, service)?;
        for tool in &mut tools {
            // Purity metadata makes the imported tool eligible for
            // memoised enactment (Executor::with_memoisation).
            tool.set_pure(dm_services::is_pure_operation(
                service,
                &tool.operation().name,
            ));
            for other in &self.hosts {
                if other != host {
                    tool.add_replica(other.clone());
                }
            }
            if let Some(caller) = &self.resilience {
                tool.set_resilience(caller.clone());
            }
            if let Some(router) = &self.router {
                tool.set_router(Arc::clone(router));
            }
        }
        Ok(tools)
    }

    /// Typed client for the general Classifier service on the primary
    /// host (resilient when the layer is enabled).
    pub fn classifier_client(&self) -> ClassifierClient {
        let client = ClassifierClient::new(self.network(), self.primary_host());
        match &self.resilience {
            Some(caller) => client.with_resilience(caller.clone()),
            None => client,
        }
    }

    /// Typed client for the dedicated J48 service (resilient when the
    /// layer is enabled).
    pub fn j48_client(&self) -> J48Client {
        let client = J48Client::new(self.network(), self.primary_host());
        match &self.resilience {
            Some(caller) => client.with_resilience(caller.clone()),
            None => client,
        }
    }

    /// Typed client for the clustering services (resilient when the
    /// layer is enabled).
    pub fn clusterer_client(&self) -> ClustererClient {
        let client = ClustererClient::new(self.network(), self.primary_host());
        match &self.resilience {
            Some(caller) => client.with_resilience(caller.clone()),
            None => client,
        }
    }

    /// Typed client for the conversion / URL-reader services (resilient
    /// when the layer is enabled).
    pub fn convert_client(&self) -> ConvertClient {
        let client = ConvertClient::new(self.network(), self.primary_host());
        match &self.resilience {
            Some(caller) => client.with_resilience(caller.clone()),
            None => client,
        }
    }

    /// The Figure-2 component inventory as text: the workflow engine
    /// plus the tool groups and deployed services around it.
    pub fn describe_components(&self) -> String {
        let mut out = String::from("FAEHIM toolkit components (Figure 2)\n");
        out.push_str("=====================================\n\n");
        out.push_str("Workflow engine: dataflow composition + serial/parallel enactment\n");
        out.push_str(match self.resilience {
            Some(_) => "Resilience layer: enabled (deadlines, retry budgets, circuit breakers)\n\n",
            None => "Resilience layer: disabled\n\n",
        });
        out.push_str("Toolbox folders:\n");
        for folder in self.toolbox.folders() {
            out.push_str(&format!(
                "  {folder}/  ({} tools)\n",
                self.toolbox.tools_in(&folder).len()
            ));
        }
        out.push_str("\nDeployed Web Services:\n");
        for entry in self.registry.all() {
            out.push_str(&format!(
                "  {} @ {}  [{}]\n",
                entry.name,
                entry.host,
                entry.categories.join(", ")
            ));
        }
        out.push_str(&format!(
            "\nAlgorithm pool: {} registered algorithms ({} classifiers, {} clusterers, {} associators, {} attribute-selection approaches)\n",
            dm_algorithms::registry::inventory_size(),
            dm_algorithms::registry::classifier_names().len(),
            dm_algorithms::registry::clusterer_names().len(),
            dm_algorithms::registry::associator_names().len(),
            dm_algorithms::attrsel::approaches().len(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_host_provisioning() {
        let tk = Toolkit::new().unwrap();
        assert_eq!(tk.hosts().len(), 1);
        assert_eq!(tk.registry().len(), 14);
        // Common tools + local tools + imported WS operation tools.
        assert!(
            tk.toolbox().len() > 20,
            "toolbox has {} tools",
            tk.toolbox().len()
        );
        let folders = tk.toolbox().folders();
        assert!(folders.iter().any(|f| f == "Common"));
        assert!(folders.iter().any(|f| f.starts_with("WebServices.")));
    }

    #[test]
    fn multi_host_replicas() {
        let tk = Toolkit::with_hosts(&["host-a", "host-b"]).unwrap();
        assert_eq!(tk.hosts().len(), 2);
        let tools = tk.import_service("host-a", "J48").unwrap();
        assert_eq!(
            tools[0].hosts(),
            ["host-a".to_string(), "host-b".to_string()]
        );
    }

    #[test]
    fn clients_reach_services() {
        let tk = Toolkit::new().unwrap();
        assert!(tk.classifier_client().get_classifiers().unwrap().len() >= 13);
        assert!(tk.clusterer_client().get_clusterers().unwrap().len() >= 5);
    }

    #[test]
    fn component_description_mentions_everything() {
        let tk = Toolkit::new().unwrap();
        let text = tk.describe_components();
        assert!(text.contains("Workflow engine"));
        assert!(text.contains("Classifier @"));
        assert!(text.contains("42 registered algorithms"));
    }

    #[test]
    fn resilient_toolkit_survives_primary_failure() {
        use dm_workflow::graph::{Token, Tool};
        let mut tk = Toolkit::with_hosts(&["host-a", "host-b"]).unwrap();
        tk.enable_resilience(
            ResiliencePolicy::default().attempts(2),
            BreakerConfig::default(),
        );
        let tools = tk.import_service("host-a", "J48").unwrap();
        let tool = tools.iter().find(|t| t.name() == "J48.classify").unwrap();
        // The primary dies after import, mid-run.
        tk.network().set_host_down("host-a", true);
        let out = tool
            .execute(&[
                Token::Text(dm_data::corpus::breast_cancer_arff()),
                Token::Text("Class".into()),
                Token::Text(String::new()),
            ])
            .unwrap();
        assert!(matches!(&out[0], Token::Text(tree) if tree.contains("node-caps")));
        assert_eq!(tool.last_served_host(), Some("host-b".to_string()));
        assert!(tool.last_call_stats().attempts >= 3);
        // The failing primary was demoted behind the serving replica.
        assert_eq!(tool.hosts(), ["host-b".to_string(), "host-a".to_string()]);

        let report = tk.degraded_mode_report();
        assert!(report.contains("resilience layer: enabled"), "{report}");
        assert!(report.contains("host-a"), "{report}");
        assert!(report.contains("failure rate"), "{report}");
    }

    #[test]
    fn resilient_client_rides_out_scripted_outage() {
        let mut tk = Toolkit::new().unwrap();
        tk.enable_resilience(
            ResiliencePolicy::default().attempts(4),
            BreakerConfig::default(),
        );
        // Outage covering the next few virtual milliseconds: the first
        // attempt fails, backoff advances the virtual clock past the
        // window, and a retry succeeds.
        let now = tk.network().now();
        tk.network().add_outage(
            tk.primary_host(),
            now,
            now + std::time::Duration::from_millis(5),
        );
        let names = tk.classifier_client().get_classifiers().unwrap();
        assert!(names.contains(&"J48".to_string()));
        let failures = tk
            .network()
            .monitor()
            .summary_by_host()
            .iter()
            .map(|s| s.transport_errors)
            .sum::<usize>();
        assert!(
            failures >= 1,
            "expected the outage to cost at least one attempt"
        );
    }

    #[test]
    fn resilient_executor_mirrors_the_policy() {
        let mut tk = Toolkit::new().unwrap();
        assert_eq!(tk.resilient_executor(None).retry_policy().max_attempts, 1);
        tk.enable_resilience(
            ResiliencePolicy::default().attempts(5),
            BreakerConfig::default(),
        );
        let executor = tk.resilient_executor(Some(12));
        assert_eq!(executor.retry_policy().max_attempts, 5);
        assert_eq!(executor.retry_policy().retry_budget, Some(12));
    }

    #[test]
    fn planned_composition_binds_and_runs() {
        use dm_workflow::engine::Executor;
        use dm_workflow::graph::Token;
        use dm_workflow::planner::{Goal, Planner};
        use std::collections::HashMap;

        let tk = Toolkit::with_hosts(&["wesc-a", "wesc-b", "wesc-c"]).unwrap();
        let csv = dm_data::csv::write_csv(&dm_data::corpus::breast_cancer());
        let goal = Goal::chain(&[
            ("data-handling", "csvToArff", csv.len()),
            ("classifier", "classify", csv.len()),
        ]);
        let (plan, graph, tasks) = tk.plan_composition(&goal, &Planner::default()).unwrap();

        // Only DataConversion exposes csvToArff and only J48 exposes
        // classify — the operation filter narrows the category bags.
        assert_eq!(plan.assignments[0].service, "DataConversion");
        assert_eq!(plan.assignments[1].service, "J48");
        // Cold telemetry prices all hosts alike, so the dataset-sized
        // hop co-locates to ride the DataRef credit.
        assert_eq!(plan.assignments[0].host, plan.assignments[1].host);
        assert!(plan.assignments[1].colocated);
        // Task names are placement-independent.
        let names: Vec<&str> = graph.tasks().iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["step1:data-handling", "step2:classifier"]);

        // Enact: csv feeds step 1, attribute/options feed step 2, the
        // arff→dataset cable carries the intermediate.
        let mut bindings: HashMap<(TaskId, usize), Token> = HashMap::new();
        bindings.insert((tasks[0], 0), Token::Text(csv));
        bindings.insert((tasks[1], 1), Token::Text("Class".into()));
        bindings.insert((tasks[1], 2), Token::Text(String::new()));
        let report = Executor::serial().run(&graph, &bindings).unwrap();
        let model = report.output(tasks[1], 0).expect("classifier output");
        assert!(
            matches!(model, Token::Text(t) if !t.is_empty()),
            "{model:?}"
        );
    }

    #[test]
    fn plan_composition_avoids_open_breakers_and_busy_hosts() {
        use dm_workflow::planner::{Goal, Planner};
        let mut tk = Toolkit::with_hosts(&["wesc-a", "wesc-b"]).unwrap();
        tk.enable_resilience(
            ResiliencePolicy::default().attempts(1),
            BreakerConfig {
                min_calls: 4,
                ..BreakerConfig::default()
            },
        );
        // Trip wesc-a's breaker with a dead-host window.
        let caller = tk.resilience().unwrap().clone();
        tk.network().set_host_down("wesc-a", true);
        for _ in 0..8 {
            let _ = caller.invoke("wesc-a", "Classifier", "getClassifiers", vec![]);
        }
        tk.network().set_host_down("wesc-a", false);

        let goal = Goal::chain(&[("classifier", "classify", 4_096)]);
        let (plan, _, _) = tk.plan_composition(&goal, &Planner::default()).unwrap();
        assert_eq!(
            plan.assignments[0].host, "wesc-b",
            "open breaker on wesc-a must exclude it"
        );
    }

    #[test]
    fn registry_category_lookup_finds_visualisation() {
        let tk = Toolkit::new().unwrap();
        let viz = tk.registry().find_by_category("visualisation");
        assert_eq!(viz.len(), 2); // Plot, Math
    }

    #[test]
    fn admission_control_feeds_load_metrics() {
        use dm_wsrf::container::CapacityConfig;
        let tk = Toolkit::new().unwrap();
        tk.enable_admission_control(CapacityConfig {
            workers: 1,
            queue_limit: Some(0),
            service_time: std::time::Duration::from_secs(1),
        });
        // First call occupies the worker for a simulated second; the
        // rewound second call is concurrent with it and gets shed.
        tk.classifier_client().get_classifiers().unwrap();
        tk.network().set_virtual_time(std::time::Duration::ZERO);
        let err = tk.classifier_client().get_classifiers().unwrap_err();
        assert!(err.is_server_busy(), "{err}");

        // Jump far past the busy window so the snapshot's own service
        // call (cache-stats fetch) is admitted, not shed.
        tk.network()
            .set_virtual_time(std::time::Duration::from_secs(10));
        let metrics = tk.metrics_registry();
        let labels = [("host", DEFAULT_HOST)];
        assert_eq!(
            metrics.counter_value("faehim_requests_shed_total", &labels),
            1
        );
        assert!(metrics.counter_value("faehim_requests_admitted_total", &labels) >= 2);
        assert_eq!(
            metrics.gauge_value("faehim_queue_depth", &labels),
            Some(0.0)
        );
        assert!(metrics
            .histogram_quantile("faehim_queueing_delay_seconds", &labels, 0.5)
            .is_some());
        let text = metrics.export_prometheus();
        assert!(
            text.contains("faehim_requests_shed_total"),
            "load counters not exported:\n{text}"
        );
    }

    #[test]
    fn compute_pool_metrics_flow_into_registry() {
        let tk = Toolkit::new().unwrap();
        tk.set_compute_threads(2);
        dm_algorithms::pool::reset_stats();
        // Drive one parallel batch through the pool: the batched
        // scoring operation fans the 286 rows out across workers.
        let arff = dm_data::corpus::breast_cancer_arff();
        let preds = tk
            .classifier_client()
            .classify_instances(&arff, "NaiveBayes", "", "Class", &arff)
            .unwrap();
        assert_eq!(preds.len(), 286);

        let snap = tk.compute_pool_stats();
        assert_eq!(snap.threads, 2);
        assert!(snap.tasks >= 286, "pool only saw {} tasks", snap.tasks);
        assert!(snap.batches >= 1);
        assert!(!snap.workers.is_empty());

        let metrics = tk.metrics_registry();
        assert_eq!(metrics.gauge_value("faehim_pool_threads", &[]), Some(2.0));
        assert!(metrics.counter_value("faehim_pool_tasks_total", &[]) >= 286);
        assert!(metrics.counter_value("faehim_pool_batches_total", &[]) >= 1);
        let text = metrics.export_prometheus();
        assert!(text.contains("faehim_pool_tasks_total"), "{text}");
        assert!(text.contains("faehim_pool_worker_tasks_total"), "{text}");
    }

    #[test]
    fn resilient_executor_reports_simulated_elapsed() {
        let tk = Toolkit::new().unwrap();
        let toolbox = tk.toolbox();
        let tool = toolbox
            .find("Classifier.getClassifiers")
            .expect("imported tool");
        let mut g = dm_workflow::graph::TaskGraph::new();
        g.add_task(tool);
        let report = tk
            .resilient_executor(None)
            .run(&g, &std::collections::HashMap::new())
            .unwrap();
        // The service call charged transmit time to the virtual clock,
        // and the executor's clock source picked that up.
        assert!(
            report.virtual_elapsed > std::time::Duration::ZERO,
            "virtual elapsed not wired: {report:?}"
        );
        assert!(report
            .runs
            .iter()
            .any(|r| r.virtual_duration > std::time::Duration::ZERO));
    }

    #[test]
    fn durable_enactment_journals_replays_and_feeds_metrics() {
        let mut tk = Toolkit::new().unwrap();
        assert!(
            tk.run_durable(
                &dm_workflow::graph::TaskGraph::new(),
                &std::collections::HashMap::new()
            )
            .is_err(),
            "run_durable must refuse until durable enactment is enabled"
        );
        let journal = tk.enable_durable_enactment(2);
        let toolbox = tk.toolbox();
        let tool = toolbox
            .find("Classifier.getClassifiers")
            .expect("imported tool");
        let mut g = dm_workflow::graph::TaskGraph::new();
        g.add_task(tool);
        let bindings = std::collections::HashMap::new();
        let report = tk.run_durable(&g, &bindings).unwrap();
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.replay_hits(), 0);
        // run-started + task-started + task-completed + run-finished.
        assert_eq!(journal.stats().appends, 4);

        // A second enactment of the same graph replays from the log:
        // nothing re-executes, the report bytes match.
        let resumed = tk.run_durable(&g, &bindings).unwrap();
        assert_eq!(resumed.replay_hits(), 1);
        assert!(resumed.runs.iter().all(|r| r.replayed));
        assert_eq!(resumed.canonical_bytes(), report.canonical_bytes());

        let metrics = tk.metrics_registry();
        assert!(metrics.counter_value("faehim_journal_appends_total", &[]) >= 4);
        assert!(metrics.counter_value("faehim_replay_hits_total", &[]) >= 1);
        let text = metrics.export_prometheus();
        assert!(text.contains("faehim_journal_bytes"), "{text}");
    }
}
