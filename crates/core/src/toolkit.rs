//! The [`Toolkit`]: one-call provisioning of the FAEHIM environment —
//! a simulated network with service hosts, the deployed Web Service
//! suite, a UDDI registry, and a workflow toolbox organised as in
//! Figures 1 and 2.

use dm_services::client::{ClassifierClient, ClustererClient, ConvertClient, J48Client};
use dm_services::{deploy_faehim_suite, publish_suite};
use dm_workflow::toolbox::Toolbox;
use dm_workflow::wsimport::{import_from_host, WsTool};
use dm_wsrf::container::ServiceContainer;
use dm_wsrf::registry::UddiRegistry;
use dm_wsrf::transport::Network;
use dm_wsrf::WsError;
use std::sync::Arc;

/// Default host name for a single-host toolkit (the paper's services
/// were hosted at the Welsh e-Science Centre).
pub const DEFAULT_HOST: &str = "wesc.cf.ac.uk";

/// The provisioned FAEHIM environment.
pub struct Toolkit {
    network: Arc<Network>,
    registry: Arc<UddiRegistry>,
    toolbox: Arc<Toolbox>,
    hosts: Vec<String>,
}

impl Toolkit {
    /// Provision a single-host toolkit with the full service suite
    /// deployed, published, and imported into the toolbox.
    pub fn new() -> Result<Toolkit, WsError> {
        Toolkit::with_hosts(&[DEFAULT_HOST])
    }

    /// Provision with several hosts, each running the full suite
    /// (replicas for the fault-tolerance and parallelism experiments).
    pub fn with_hosts(hosts: &[&str]) -> Result<Toolkit, WsError> {
        let network = Arc::new(Network::new());
        let registry = Arc::new(UddiRegistry::new());
        let toolbox = Arc::new(Toolbox::with_common_tools());
        let mut names = Vec::with_capacity(hosts.len());
        for &host in hosts {
            let container = network.add_host(host);
            deploy_faehim_suite(&container)?;
            publish_suite(&container, &registry)?;
            names.push(host.to_string());
        }
        let toolkit = Toolkit { network, registry, toolbox, hosts: names };
        // Import every deployed service's operations as workspace tools
        // (Triana: "creates a tool for each operation").
        let primary = toolkit.hosts[0].clone();
        for entry in toolkit.registry.all() {
            if entry.host == primary {
                for tool in toolkit.import_service(&primary, &entry.name)? {
                    toolkit.toolbox.add(Arc::new(tool));
                }
            }
        }
        // Local data-manipulation / processing / visualisation tools
        // (the Figure 2 toolbox components) plus the Triana signal
        // processing toolbox the paper cites (§2).
        crate::tools::register_local_tools(&toolkit.toolbox);
        crate::signal_tools::register_signal_tools(&toolkit.toolbox);
        Ok(toolkit)
    }

    /// The simulated network.
    pub fn network(&self) -> Arc<Network> {
        Arc::clone(&self.network)
    }

    /// The UDDI registry.
    pub fn registry(&self) -> Arc<UddiRegistry> {
        Arc::clone(&self.registry)
    }

    /// The workflow toolbox.
    pub fn toolbox(&self) -> Arc<Toolbox> {
        Arc::clone(&self.toolbox)
    }

    /// Provisioned host names.
    pub fn hosts(&self) -> &[String] {
        &self.hosts
    }

    /// The primary host.
    pub fn primary_host(&self) -> &str {
        &self.hosts[0]
    }

    /// A host's container.
    pub fn container(&self, host: &str) -> Result<Arc<ServiceContainer>, WsError> {
        self.network.host(host)
    }

    /// Import one service's operations as tools, with every other host
    /// added as a failover replica.
    pub fn import_service(&self, host: &str, service: &str) -> Result<Vec<WsTool>, WsError> {
        let mut tools = import_from_host(self.network(), host, service)?;
        for tool in &mut tools {
            for other in &self.hosts {
                if other != host {
                    tool.add_replica(other.clone());
                }
            }
        }
        Ok(tools)
    }

    /// Typed client for the general Classifier service on the primary
    /// host.
    pub fn classifier_client(&self) -> ClassifierClient {
        ClassifierClient::new(self.network(), self.primary_host())
    }

    /// Typed client for the dedicated J48 service.
    pub fn j48_client(&self) -> J48Client {
        J48Client::new(self.network(), self.primary_host())
    }

    /// Typed client for the clustering services.
    pub fn clusterer_client(&self) -> ClustererClient {
        ClustererClient::new(self.network(), self.primary_host())
    }

    /// Typed client for the conversion / URL-reader services.
    pub fn convert_client(&self) -> ConvertClient {
        ConvertClient::new(self.network(), self.primary_host())
    }

    /// The Figure-2 component inventory as text: the workflow engine
    /// plus the tool groups and deployed services around it.
    pub fn describe_components(&self) -> String {
        let mut out = String::from("FAEHIM toolkit components (Figure 2)\n");
        out.push_str("=====================================\n\n");
        out.push_str("Workflow engine: dataflow composition + serial/parallel enactment\n\n");
        out.push_str("Toolbox folders:\n");
        for folder in self.toolbox.folders() {
            out.push_str(&format!("  {folder}/  ({} tools)\n", self.toolbox.tools_in(&folder).len()));
        }
        out.push_str("\nDeployed Web Services:\n");
        for entry in self.registry.all() {
            out.push_str(&format!(
                "  {} @ {}  [{}]\n",
                entry.name,
                entry.host,
                entry.categories.join(", ")
            ));
        }
        out.push_str(&format!(
            "\nAlgorithm pool: {} registered algorithms ({} classifiers, {} clusterers, {} associators, {} attribute-selection approaches)\n",
            dm_algorithms::registry::inventory_size(),
            dm_algorithms::registry::classifier_names().len(),
            dm_algorithms::registry::clusterer_names().len(),
            dm_algorithms::registry::associator_names().len(),
            dm_algorithms::attrsel::approaches().len(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_host_provisioning() {
        let tk = Toolkit::new().unwrap();
        assert_eq!(tk.hosts().len(), 1);
        assert_eq!(tk.registry().len(), 13);
        // Common tools + local tools + imported WS operation tools.
        assert!(tk.toolbox().len() > 20, "toolbox has {} tools", tk.toolbox().len());
        let folders = tk.toolbox().folders();
        assert!(folders.iter().any(|f| f == "Common"));
        assert!(folders.iter().any(|f| f.starts_with("WebServices.")));
    }

    #[test]
    fn multi_host_replicas() {
        let tk = Toolkit::with_hosts(&["host-a", "host-b"]).unwrap();
        assert_eq!(tk.hosts().len(), 2);
        let tools = tk.import_service("host-a", "J48").unwrap();
        assert_eq!(tools[0].hosts(), ["host-a".to_string(), "host-b".to_string()]);
    }

    #[test]
    fn clients_reach_services() {
        let tk = Toolkit::new().unwrap();
        assert!(tk.classifier_client().get_classifiers().unwrap().len() >= 13);
        assert!(tk.clusterer_client().get_clusterers().unwrap().len() >= 5);
    }

    #[test]
    fn component_description_mentions_everything() {
        let tk = Toolkit::new().unwrap();
        let text = tk.describe_components();
        assert!(text.contains("Workflow engine"));
        assert!(text.contains("Classifier @"));
        assert!(text.contains("40 registered algorithms"));
    }

    #[test]
    fn registry_category_lookup_finds_visualisation() {
        let tk = Toolkit::new().unwrap();
        let viz = tk.registry().find_by_category("visualisation");
        assert_eq!(viz.len(), 2); // Plot, Math
    }
}
