//! The §5 case study as a composed workflow.
//!
//! "This example involved the use of four Web Services: (1) a Web
//! Service to read the data file from a URL and convert this into a
//! format suitable for analysis, (2) a Web Service to perform the
//! classification, i.e. one that implements the C4.5 classifier, (3) a
//! Web Service to analyse the output generated from the decision tree,
//! and (4) a Web Service to visualise the output."
//!
//! [`build_case_study`] wires the Figure-1 graph programmatically —
//! `getClassifiers → ClassifierSelector`, `getOptions →
//! OptionSelector`, the four-input `classifyInstance`, and the
//! `treeViewer` — and [`run_case_study`] enacts it and collects every
//! artifact (the Figure-3 summary, the Figure-4 tree text and SVG).

use crate::toolkit::Toolkit;
use crate::tools::{
    AttributeSelector, ClassifierSelector, OptionSelector, TreeAnalyser, TreeViewer,
};
use dm_workflow::engine::{ExecutionReport, Executor};
use dm_workflow::error::Result as WfResult;
use dm_workflow::graph::{TaskGraph, TaskId, Token};
use std::collections::HashMap;
use std::sync::Arc;

/// The URL the case-study workflow reads its dataset from (served by
/// the URL-reader Web Service's registered corpus).
pub const BREAST_CANCER_URL: &str = "http://www.ics.uci.edu/mlearn/breast-cancer.arff";

/// Task ids of the built case-study workflow.
#[derive(Debug, Clone, Copy)]
pub struct CaseStudyTasks {
    /// Web Service (1): URL reader / format converter.
    pub read_url: TaskId,
    /// `Classifier.getClassifiers` → selector pair.
    pub get_classifiers: TaskId,
    /// The classifier-selection tool.
    pub classifier_selector: TaskId,
    /// `Classifier.getOptions`.
    pub get_options: TaskId,
    /// The option-selection tool.
    pub option_selector: TaskId,
    /// The attribute-selection tool.
    pub attribute_selector: TaskId,
    /// Web Service (2): `Classifier.classifyInstance` (C4.5).
    pub classify: TaskId,
    /// (3): analysis of the produced decision tree.
    pub analyser: TaskId,
    /// Web Service (4): graphical visualisation (`classifyGraph`).
    pub visualise: TaskId,
    /// Figure 1's terminal viewer.
    pub viewer: TaskId,
}

/// Input bindings keyed by `(task, input port)`, as consumed by the
/// workflow executor.
pub type CaseStudyBindings = HashMap<(TaskId, usize), Token>;

/// Build the case-study workflow against a provisioned toolkit.
/// Returns the graph, the task ids, and the input bindings required to
/// run it.
pub fn build_case_study(
    toolkit: &Toolkit,
) -> WfResult<(TaskGraph, CaseStudyTasks, CaseStudyBindings)> {
    let toolbox = toolkit.toolbox();
    let mut g = TaskGraph::new();

    // (1) URL reader Web Service.
    let read_url = g.add_task(toolbox.find("UrlReader.readArff")?);
    // Stage 1-2 of §4.4: obtain the classifier list, select J48, fetch
    // its options, accept the defaults.
    let get_classifiers = g.add_task(toolbox.find("Classifier.getClassifiers")?);
    let classifier_selector = g.add_task(Arc::new(ClassifierSelector::new("J48")));
    let get_options = g.add_task(toolbox.find("Classifier.getOptions")?);
    let option_selector = g.add_task(Arc::new(OptionSelector::defaults()));
    // Stage 3: the four-input classifyInstance.
    let attribute_selector = g.add_task(Arc::new(AttributeSelector::new("Class")));
    let classify = g.add_task(toolbox.find("Classifier.classifyInstance")?);
    // (3) output analysis and (4) visualisation, then the viewer.
    let analyser = g.add_task(Arc::new(TreeAnalyser));
    let visualise = g.add_task(toolbox.find("Classifier.classifyGraph")?);
    let viewer = g.add_task(Arc::new(TreeViewer::new()));

    // Wiring (Figure 1).
    g.connect(get_classifiers, 0, classifier_selector, 0)?;
    g.connect(classifier_selector, 0, get_options, 0)?;
    g.connect(get_options, 0, option_selector, 0)?;
    g.connect(read_url, 0, attribute_selector, 0)?;
    // classifyInstance(dataset, classifier, options, attribute).
    g.connect(read_url, 0, classify, 0)?;
    // The selector feeds both classify and visualise; a second cable
    // from the same output port is allowed (fan-out).
    g.connect(classifier_selector, 0, classify, 1)?;
    g.connect(option_selector, 0, classify, 2)?;
    g.connect(attribute_selector, 0, classify, 3)?;
    g.connect(classify, 0, analyser, 0)?;
    g.connect(classify, 0, viewer, 0)?;
    // classifyGraph(dataset, classifier, options, attribute) — bound
    // inputs reuse the same upstream values via bindings (each input
    // port accepts a single cable, so re-bind what has no free port).
    g.connect(read_url, 0, visualise, 0)?;

    let mut bindings = HashMap::new();
    bindings.insert((read_url, 0), Token::Text(BREAST_CANCER_URL.to_string()));
    bindings.insert((visualise, 1), Token::Text("J48".to_string()));
    bindings.insert((visualise, 2), Token::Text(String::new()));
    bindings.insert((visualise, 3), Token::Text("Class".to_string()));

    let tasks = CaseStudyTasks {
        read_url,
        get_classifiers,
        classifier_selector,
        get_options,
        option_selector,
        attribute_selector,
        classify,
        analyser,
        visualise,
        viewer,
    };
    Ok((g, tasks, bindings))
}

/// Everything the case study produces.
#[derive(Debug, Clone)]
pub struct CaseStudyResult {
    /// The textual J48 model (root split on `node-caps`).
    pub model_text: String,
    /// The analysis summary (root attribute, leaves, size).
    pub analysis: String,
    /// The SVG decision tree (Figure 4).
    pub tree_svg: String,
    /// The Figure-3 dataset summary table.
    pub summary_table: String,
    /// The enactment report.
    pub report: ExecutionReport,
}

/// Provision a toolkit, enact the case study, and collect the results.
pub fn run_case_study() -> WfResult<CaseStudyResult> {
    let toolkit = Toolkit::new().map_err(dm_workflow::WorkflowError::from)?;
    run_case_study_on(&toolkit)
}

/// Enact the case study on an existing toolkit.
pub fn run_case_study_on(toolkit: &Toolkit) -> WfResult<CaseStudyResult> {
    run_case_study_with(toolkit, &Executor::serial())
}

/// Enact the case study on an existing toolkit with a caller-supplied
/// executor (e.g. one carrying a memo cache for warm re-enactment).
pub fn run_case_study_with(toolkit: &Toolkit, executor: &Executor) -> WfResult<CaseStudyResult> {
    let (graph, tasks, bindings) = build_case_study(toolkit)?;
    let report = executor.run(&graph, &bindings)?;
    let text_of = |task: TaskId, port: usize| -> String {
        report
            .output(task, port)
            .and_then(|t| t.as_text().ok())
            .unwrap_or_default()
            .to_string()
    };
    // The Figure-3 table comes from the conversion service, invoked
    // directly (it is a one-call tool rather than part of the graph).
    let summary_table = toolkit
        .convert_client()
        .summary(&dm_data::corpus::breast_cancer_arff())
        .map_err(dm_workflow::WorkflowError::from)?;
    Ok(CaseStudyResult {
        model_text: text_of(tasks.viewer, 0),
        analysis: text_of(tasks.analyser, 0),
        tree_svg: text_of(tasks.visualise, 0),
        summary_table,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_reproduces_paper_artifacts() {
        let result = run_case_study().unwrap();
        // Figure 4: node-caps at the root.
        assert!(
            result.model_text.contains("node-caps"),
            "{}",
            result.model_text
        );
        assert!(result.analysis.contains("root attribute: node-caps"));
        assert!(result.tree_svg.starts_with("<svg"));
        assert!(result.tree_svg.contains("node-caps"));
        // Figure 3 header block.
        assert!(result.summary_table.contains("Num Instances 286"));
        // All ten tasks ran.
        assert_eq!(result.report.runs.len(), 10);
    }

    #[test]
    fn graph_exports_to_xml_and_dax() {
        let toolkit = Toolkit::new().unwrap();
        let (graph, ..) = build_case_study(&toolkit).unwrap();
        let xml = dm_workflow::xml::export_taskgraph(&graph);
        assert!(xml.contains("Classifier.classifyInstance"));
        let dax = dm_workflow::xml::export_dax(&graph);
        assert!(dax.contains("jobCount=\"10\""));
    }

    #[test]
    fn parallel_enactment_matches_serial() {
        let toolkit = Toolkit::new().unwrap();
        let (graph, tasks, bindings) = build_case_study(&toolkit).unwrap();
        let serial = Executor::serial().run(&graph, &bindings).unwrap();
        let parallel = Executor::parallel().run(&graph, &bindings).unwrap();
        assert_eq!(
            serial.output(tasks.analyser, 0),
            parallel.output(tasks.analyser, 0)
        );
    }
}
