//! The local workspace tools of Figure 1 and §4.3 — the three tool
//! groups around the workflow engine:
//!
//! * **Data set manipulation tools** — [`LocalDataset`] ("a tool for
//!   loading a dataset into Triana and sending it to a Web Service"),
//!   [`CsvToArffTool`];
//! * **Processing tools** — [`ClassifierSelector`] ("display the
//!   classification algorithms … to allow the user to select an
//!   algorithm"), [`OptionSelector`] ("assist the user to select the
//!   options list"), [`AttributeSelector`] ("visualize the attributes
//!   embedded in a dataset" / select one), [`TreeAnalyser`];
//! * **Visualization tools** — [`TreeViewer`] (Figure 1's terminal
//!   task: "displays the output to the user … either graphing the
//!   output in a decision tree or generating the output in a textual
//!   form").

use dm_workflow::graph::{PortSpec, Token, Tool};
use dm_workflow::toolbox::Toolbox;
use parking_lot::RwLock;
use std::sync::Arc;

/// Register one instance of every local tool into `toolbox`.
pub fn register_local_tools(toolbox: &Toolbox) {
    toolbox.add(Arc::new(LocalDataset::breast_cancer()));
    toolbox.add(Arc::new(CsvToArffTool));
    toolbox.add(Arc::new(DatasetSummaryTool));
    toolbox.add(Arc::new(ClassifierSelector::new("J48")));
    toolbox.add(Arc::new(OptionSelector::defaults()));
    toolbox.add(Arc::new(AttributeSelector::new("Class")));
    toolbox.add(Arc::new(TreeAnalyser));
    toolbox.add(Arc::new(TreeViewer::new()));
}

/// Loads a dataset from the local filespace and emits it as ARFF text.
pub struct LocalDataset {
    arff: String,
}

impl LocalDataset {
    /// Wrap explicit ARFF text.
    pub fn new<A: Into<String>>(arff: A) -> LocalDataset {
        LocalDataset { arff: arff.into() }
    }

    /// The case study's breast-cancer dataset.
    pub fn breast_cancer() -> LocalDataset {
        LocalDataset {
            arff: dm_data::corpus::breast_cancer_arff(),
        }
    }
}

impl Tool for LocalDataset {
    fn name(&self) -> &str {
        "LocalDataset"
    }

    fn package(&self) -> &str {
        "DataManipulation"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("dataset", "string")]
    }

    fn execute(&self, _inputs: &[Token]) -> Result<Vec<Token>, String> {
        Ok(vec![Token::Text(self.arff.clone())])
    }

    fn is_pure(&self) -> bool {
        true
    }

    fn memo_identity(&self) -> String {
        // The emitted dataset is configuration, not an input port, so
        // it must be part of the identity.
        format!(
            "LocalDataset:{:032x}",
            dm_wsrf::dataplane::hash_bytes(self.arff.as_bytes())
        )
    }
}

/// Converts CSV text into ARFF, locally (the toolbox's CSV→ARFF tool;
/// the Web Service variant lives in `dm-services`).
pub struct CsvToArffTool;

impl Tool for CsvToArffTool {
    fn name(&self) -> &str {
        "CSVToARFF"
    }

    fn package(&self) -> &str {
        "DataManipulation"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("csv", "string")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("arff", "string")]
    }

    fn execute(&self, inputs: &[Token]) -> Result<Vec<Token>, String> {
        let csv = match &inputs[0] {
            Token::Text(s) => s,
            _ => return Err("CSVToARFF expects CSV text".into()),
        };
        dm_data::convert::convert(
            csv,
            dm_data::convert::DataFormat::Csv,
            dm_data::convert::DataFormat::Arff,
        )
        .map(|arff| vec![Token::Text(arff)])
        .map_err(|e| e.to_string())
    }

    fn is_pure(&self) -> bool {
        true
    }
}

/// Emits the Figure-3 summary table of a dataset.
pub struct DatasetSummaryTool;

impl Tool for DatasetSummaryTool {
    fn name(&self) -> &str {
        "DatasetSummary"
    }

    fn package(&self) -> &str {
        "DataManipulation"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("dataset", "string")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("summary", "string")]
    }

    fn execute(&self, inputs: &[Token]) -> Result<Vec<Token>, String> {
        let text = match &inputs[0] {
            Token::Text(s) => s,
            _ => return Err("DatasetSummary expects dataset text".into()),
        };
        let format = dm_data::convert::DataFormat::sniff(text);
        let ds = dm_data::convert::parse(format, text).map_err(|e| e.to_string())?;
        Ok(vec![Token::Text(
            dm_data::summary::DatasetSummary::of(&ds).to_table_string(),
        )])
    }

    fn is_pure(&self) -> bool {
        true
    }
}

/// Presents the classifier list and passes on the user's selection.
pub struct ClassifierSelector {
    selection: String,
}

impl ClassifierSelector {
    /// Pre-select a classifier (the programmatic stand-in for the
    /// user's click in Triana's workspace).
    pub fn new<S: Into<String>>(selection: S) -> ClassifierSelector {
        ClassifierSelector {
            selection: selection.into(),
        }
    }
}

impl Tool for ClassifierSelector {
    fn name(&self) -> &str {
        "ClassifierSelector"
    }

    fn package(&self) -> &str {
        "Processing"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("classifiers", "list")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("classifier", "string")]
    }

    fn execute(&self, inputs: &[Token]) -> Result<Vec<Token>, String> {
        let list = match &inputs[0] {
            Token::List(l) => l,
            _ => return Err("ClassifierSelector expects the classifier list".into()),
        };
        let available: Vec<&str> = list.iter().filter_map(|v| v.as_text().ok()).collect();
        if available.iter().any(|&c| c == self.selection) {
            Ok(vec![Token::Text(self.selection.clone())])
        } else {
            Err(format!(
                "{:?} is not offered by the service (available: {available:?})",
                self.selection
            ))
        }
    }

    fn is_pure(&self) -> bool {
        true
    }

    fn memo_identity(&self) -> String {
        format!("ClassifierSelector:{}", self.selection)
    }
}

/// Turns the `getOptions` descriptor list into a WEKA option string,
/// applying any user overrides over the defaults.
pub struct OptionSelector {
    overrides: Vec<(String, String)>,
}

impl OptionSelector {
    /// Accept every default.
    pub fn defaults() -> OptionSelector {
        OptionSelector {
            overrides: Vec::new(),
        }
    }

    /// Override selected flags.
    pub fn with_overrides(overrides: Vec<(String, String)>) -> OptionSelector {
        OptionSelector { overrides }
    }
}

impl Tool for OptionSelector {
    fn name(&self) -> &str {
        "OptionSelector"
    }

    fn package(&self) -> &str {
        "Processing"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("options", "list")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("optionString", "string")]
    }

    fn execute(&self, inputs: &[Token]) -> Result<Vec<Token>, String> {
        let list = match &inputs[0] {
            Token::List(l) => l,
            _ => return Err("OptionSelector expects the options list".into()),
        };
        let mut parts = Vec::new();
        for row in list {
            let cells = row.as_list().map_err(|e| e.to_string())?;
            let flag = cells
                .first()
                .and_then(|c| c.as_text().ok())
                .ok_or("option row without a flag")?;
            let default = cells.get(3).and_then(|c| c.as_text().ok()).unwrap_or("");
            let value = self
                .overrides
                .iter()
                .find(|(f, _)| f == flag)
                .map(|(_, v)| v.as_str())
                .unwrap_or(default);
            parts.push(format!("{flag} {value}"));
        }
        Ok(vec![Token::Text(parts.join(" "))])
    }

    fn is_pure(&self) -> bool {
        true
    }

    fn memo_identity(&self) -> String {
        let mut id = String::from("OptionSelector");
        for (flag, value) in &self.overrides {
            id.push_str(&format!(":{flag}={value}"));
        }
        id
    }
}

/// Selects (and validates) the attribute the classifier should classify
/// on.
pub struct AttributeSelector {
    attribute: String,
}

impl AttributeSelector {
    /// Pre-select an attribute name.
    pub fn new<S: Into<String>>(attribute: S) -> AttributeSelector {
        AttributeSelector {
            attribute: attribute.into(),
        }
    }
}

impl Tool for AttributeSelector {
    fn name(&self) -> &str {
        "AttributeSelector"
    }

    fn package(&self) -> &str {
        "Processing"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("dataset", "string")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("attribute", "string")]
    }

    fn execute(&self, inputs: &[Token]) -> Result<Vec<Token>, String> {
        let arff = match &inputs[0] {
            Token::Text(s) => s,
            _ => return Err("AttributeSelector expects dataset text".into()),
        };
        let ds = dm_data::arff::parse_arff(arff).map_err(|e| e.to_string())?;
        ds.attribute_index(&self.attribute)
            .map_err(|e| e.to_string())?;
        Ok(vec![Token::Text(self.attribute.clone())])
    }

    fn is_pure(&self) -> bool {
        true
    }

    fn memo_identity(&self) -> String {
        format!("AttributeSelector:{}", self.attribute)
    }
}

/// Analyses a textual decision tree: extracts the root attribute, leaf
/// count and tree size — the case study's output-analysis service.
pub struct TreeAnalyser;

impl Tool for TreeAnalyser {
    fn name(&self) -> &str {
        "TreeAnalyser"
    }

    fn package(&self) -> &str {
        "Processing"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("model", "string")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("analysis", "string")]
    }

    fn execute(&self, inputs: &[Token]) -> Result<Vec<Token>, String> {
        let text = match &inputs[0] {
            Token::Text(s) => s,
            _ => return Err("TreeAnalyser expects the model text".into()),
        };
        let root = text
            .lines()
            .find(|l| l.contains(" = ") || l.contains(" <= "))
            .and_then(|l| l.split_whitespace().next())
            .unwrap_or("(leaf-only tree)");
        let leaves = text
            .lines()
            .find(|l| l.contains("Number of Leaves"))
            .and_then(|l| l.split(':').nth(1))
            .map(str::trim)
            .unwrap_or("?");
        let size = text
            .lines()
            .find(|l| l.contains("Size of the tree"))
            .and_then(|l| l.split(':').nth(1))
            .map(str::trim)
            .unwrap_or("?");
        Ok(vec![Token::Text(format!(
            "root attribute: {root}\nleaves: {leaves}\ntree size: {size}"
        ))])
    }

    fn is_pure(&self) -> bool {
        true
    }
}

/// The terminal viewer of Figure 1: retains everything shown and passes
/// it through.
#[derive(Default)]
pub struct TreeViewer {
    shown: RwLock<Vec<String>>,
}

impl TreeViewer {
    /// Create an empty viewer.
    pub fn new() -> TreeViewer {
        TreeViewer::default()
    }

    /// Everything displayed so far.
    pub fn shown(&self) -> Vec<String> {
        self.shown.read().clone()
    }
}

impl Tool for TreeViewer {
    fn name(&self) -> &str {
        "TreeViewer"
    }

    fn package(&self) -> &str {
        "Visualization"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("content", "string")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("content", "string")]
    }

    fn execute(&self, inputs: &[Token]) -> Result<Vec<Token>, String> {
        let text = match &inputs[0] {
            Token::Text(s) => s.clone(),
            other => format!("{other:?}"),
        };
        self.shown.write().push(text.clone());
        Ok(vec![Token::Text(text)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_dataset_emits_arff() {
        let out = LocalDataset::breast_cancer().execute(&[]).unwrap();
        match &out[0] {
            Token::Text(s) => assert!(s.contains("@relation breast-cancer")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn csv_tool_converts() {
        let out = CsvToArffTool
            .execute(&[Token::Text("a,b\n1,x\n".into())])
            .unwrap();
        match &out[0] {
            Token::Text(s) => assert!(s.contains("@attribute a numeric")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(CsvToArffTool.execute(&[Token::Int(1)]).is_err());
    }

    #[test]
    fn summary_tool_reproduces_figure3() {
        let arff = dm_data::corpus::breast_cancer_arff();
        let out = DatasetSummaryTool.execute(&[Token::Text(arff)]).unwrap();
        match &out[0] {
            Token::Text(s) => assert!(s.contains("Num Instances 286")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn classifier_selector_validates() {
        let list = Token::List(vec![Token::Text("ZeroR".into()), Token::Text("J48".into())]);
        let out = ClassifierSelector::new("J48")
            .execute(std::slice::from_ref(&list))
            .unwrap();
        assert_eq!(out, vec![Token::Text("J48".into())]);
        assert!(ClassifierSelector::new("C5.0").execute(&[list]).is_err());
    }

    #[test]
    fn option_selector_builds_string() {
        let options = Token::List(vec![
            Token::List(vec![
                Token::Text("-C".into()),
                Token::Text("confidence".into()),
                Token::Text("".into()),
                Token::Text("0.25".into()),
            ]),
            Token::List(vec![
                Token::Text("-M".into()),
                Token::Text("minNumObj".into()),
                Token::Text("".into()),
                Token::Text("2".into()),
            ]),
        ]);
        let defaults = OptionSelector::defaults()
            .execute(std::slice::from_ref(&options))
            .unwrap();
        assert_eq!(defaults, vec![Token::Text("-C 0.25 -M 2".into())]);
        let tuned = OptionSelector::with_overrides(vec![("-M".into(), "10".into())])
            .execute(&[options])
            .unwrap();
        assert_eq!(tuned, vec![Token::Text("-C 0.25 -M 10".into())]);
    }

    #[test]
    fn attribute_selector_validates() {
        let arff = dm_data::corpus::breast_cancer_arff();
        let out = AttributeSelector::new("Class")
            .execute(&[Token::Text(arff.clone())])
            .unwrap();
        assert_eq!(out, vec![Token::Text("Class".into())]);
        assert!(AttributeSelector::new("nope")
            .execute(&[Token::Text(arff)])
            .is_err());
    }

    #[test]
    fn tree_analyser_extracts_structure() {
        let model = "J48 pruned tree\n------------------\n\nnode-caps = yes\n|   deg-malig = 3: recurrence-events (45.0)\n\nNumber of Leaves  : \t4\n\nSize of the tree : \t6\n";
        let out = TreeAnalyser.execute(&[Token::Text(model.into())]).unwrap();
        match &out[0] {
            Token::Text(s) => {
                assert!(s.contains("root attribute: node-caps"));
                assert!(s.contains("leaves: \t4") || s.contains("leaves: 4"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tree_viewer_retains() {
        let v = TreeViewer::new();
        v.execute(&[Token::Text("tree".into())]).unwrap();
        assert_eq!(v.shown(), vec!["tree".to_string()]);
    }

    #[test]
    fn registration_populates_folders() {
        let tb = dm_workflow::toolbox::Toolbox::new();
        register_local_tools(&tb);
        assert_eq!(tb.len(), 8);
        assert!(tb
            .tools_in("DataManipulation")
            .contains(&"CSVToARFF".to_string()));
        assert!(tb
            .tools_in("Processing")
            .contains(&"OptionSelector".to_string()));
        assert!(tb
            .tools_in("Visualization")
            .contains(&"TreeViewer".to_string()));
    }
}
