//! # faehim — Web Services composition for distributed data mining
//!
//! A from-scratch Rust reproduction of the FAEHIM toolkit (Shaikh Ali,
//! Rana & Taylor, *Web Services Composition for Distributed Data
//! Mining*, ICPP-W 2005). This crate is the user-facing facade over the
//! substrates:
//!
//! * [`dm_data`] — ARFF/CSV datasets, filters, streaming, corpora;
//! * [`dm_algorithms`] — the WEKA-equivalent algorithm pool;
//! * [`dm_wsrf`] — SOAP/WSDL services, simulated network, UDDI, §4.5
//!   instance lifecycle;
//! * [`dm_services`] — the FAEHIM data-mining Web Services;
//! * [`dm_workflow`] — the Triana-equivalent composition engine;
//! * [`dm_viz`] — tree/chart/3-D rendering.
//!
//! ## Quickstart
//!
//! ```
//! use faehim::Toolkit;
//!
//! // Provision a host, deploy the FAEHIM suite, publish to UDDI.
//! let toolkit = Toolkit::new().unwrap();
//!
//! // Use the general Classifier Web Service exactly as the paper's
//! // case study does.
//! let client = toolkit.classifier_client();
//! let classifiers = client.get_classifiers().unwrap();
//! assert!(classifiers.contains(&"J48".to_string()));
//!
//! let model = client
//!     .classify_instance(
//!         &dm_data::corpus::breast_cancer_arff(),
//!         "J48",
//!         "-C 0.25 -M 2",
//!         "Class",
//!     )
//!     .unwrap();
//! assert!(model.contains("node-caps")); // Figure 4's root split
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod casestudy;
pub mod signal_tools;
pub mod toolkit;
pub mod tools;

pub use toolkit::Toolkit;

/// Convenience re-exports of the whole stack.
pub mod prelude {
    pub use crate::casestudy::{run_case_study, CaseStudyResult};
    pub use crate::toolkit::Toolkit;
    pub use dm_data::prelude::{
        parse_arff, write_arff, Attribute, AttributeKind, CrossValidation, Dataset, DatasetSummary,
        Instance,
    };
    pub use dm_services::prelude::{
        deploy_faehim_suite, publish_suite, ClassifierClient, ClustererClient, ConvertClient,
        J48Client,
    };
    pub use dm_workflow::prelude::{
        import_wsdl, ExecutionMode, ExecutionReport, Executor, RetryPolicy, TaskGraph, Token, Tool,
        Toolbox,
    };
    pub use dm_wsrf::prelude::{
        BreakerBoard, BreakerConfig, BreakerState, CircuitBreaker, ResiliencePolicy,
        ResilientCaller,
    };
}
