//! The Signal Processing toolbox folder — §2: "Use of the Triana
//! workflow engine also allows us to utilize the Signal Processing
//! toolbox available with algorithms such as Fast Fourier Transform and
//! various spectral analysis algorithms."
//!
//! Signals travel through cables as `Token::List` of doubles, so these
//! tools compose freely with the data-mining tools (e.g. cluster the
//! spectral features of sensor channels).

use dm_algorithms::signal::{autocorrelation, fft, power_spectrum, spectral_peaks, Window};
use dm_workflow::graph::{PortSpec, Token, Tool};
use dm_workflow::toolbox::Toolbox;
use std::sync::Arc;

/// Register every signal-processing tool into `toolbox`.
pub fn register_signal_tools(toolbox: &Toolbox) {
    toolbox.add(Arc::new(SignalGen::sine(50.0, 1000.0, 512)));
    toolbox.add(Arc::new(FftTool));
    toolbox.add(Arc::new(PowerSpectrumTool::new(1000.0, Window::Hann)));
    toolbox.add(Arc::new(PeakDetector::new(0.05)));
    toolbox.add(Arc::new(AutocorrelationTool));
}

fn as_signal(token: &Token) -> Result<Vec<f64>, String> {
    match token {
        Token::List(items) => items
            .iter()
            .map(|v| v.as_double().map_err(|e| e.to_string()))
            .collect(),
        _ => Err("expected a list of samples".into()),
    }
}

fn to_list(values: impl IntoIterator<Item = f64>) -> Token {
    Token::List(values.into_iter().map(Token::Double).collect())
}

/// Emits a synthetic test signal (sum of sines plus optional noise-free
/// harmonics); the workspace's signal source.
pub struct SignalGen {
    /// `(frequency_hz, amplitude)` components.
    pub components: Vec<(f64, f64)>,
    /// Sampling rate in Hz.
    pub sample_rate: f64,
    /// Number of samples.
    pub samples: usize,
}

impl SignalGen {
    /// A single sine tone.
    pub fn sine(frequency: f64, sample_rate: f64, samples: usize) -> SignalGen {
        SignalGen {
            components: vec![(frequency, 1.0)],
            sample_rate,
            samples,
        }
    }

    /// A sum of tones.
    pub fn tones(components: Vec<(f64, f64)>, sample_rate: f64, samples: usize) -> SignalGen {
        SignalGen {
            components,
            sample_rate,
            samples,
        }
    }
}

impl Tool for SignalGen {
    fn name(&self) -> &str {
        "SignalGen"
    }

    fn package(&self) -> &str {
        "SignalProcessing"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("signal", "list")]
    }

    fn execute(&self, _inputs: &[Token]) -> Result<Vec<Token>, String> {
        let signal = (0..self.samples).map(|i| {
            self.components
                .iter()
                .map(|&(f, a)| a * (std::f64::consts::TAU * f * i as f64 / self.sample_rate).sin())
                .sum::<f64>()
        });
        Ok(vec![to_list(signal)])
    }
}

/// Fast Fourier Transform: signal in, interleaved `[re, im, re, im, …]`
/// spectrum out (zero-padded to a power of two).
pub struct FftTool;

impl Tool for FftTool {
    fn name(&self) -> &str {
        "FFT"
    }

    fn package(&self) -> &str {
        "SignalProcessing"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("signal", "list")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("spectrum", "list")]
    }

    fn execute(&self, inputs: &[Token]) -> Result<Vec<Token>, String> {
        let signal = as_signal(&inputs[0])?;
        let spectrum = fft(&signal).map_err(|e| e.to_string())?;
        Ok(vec![to_list(spectrum.iter().flat_map(|c| [c.re, c.im]))])
    }
}

/// Single-sided power spectrum: signal in, interleaved
/// `[frequency, power, …]` bins out.
pub struct PowerSpectrumTool {
    sample_rate: f64,
    window: Window,
}

impl PowerSpectrumTool {
    /// Create with an explicit sample rate and window.
    pub fn new(sample_rate: f64, window: Window) -> PowerSpectrumTool {
        PowerSpectrumTool {
            sample_rate,
            window,
        }
    }
}

impl Tool for PowerSpectrumTool {
    fn name(&self) -> &str {
        "PowerSpectrum"
    }

    fn package(&self) -> &str {
        "SignalProcessing"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("signal", "list")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("spectrum", "list")]
    }

    fn execute(&self, inputs: &[Token]) -> Result<Vec<Token>, String> {
        let signal = as_signal(&inputs[0])?;
        let bins =
            power_spectrum(&signal, self.sample_rate, self.window).map_err(|e| e.to_string())?;
        Ok(vec![to_list(
            bins.iter().flat_map(|b| [b.frequency, b.power]),
        )])
    }
}

/// Finds spectral peaks in a `[frequency, power, …]` spectrum and
/// reports them as text (strongest first).
pub struct PeakDetector {
    threshold: f64,
}

impl PeakDetector {
    /// Create with a relative power threshold (fraction of the maximum).
    pub fn new(threshold: f64) -> PeakDetector {
        PeakDetector { threshold }
    }
}

impl Tool for PeakDetector {
    fn name(&self) -> &str {
        "PeakDetector"
    }

    fn package(&self) -> &str {
        "SignalProcessing"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("spectrum", "list")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("peaks", "string")]
    }

    fn execute(&self, inputs: &[Token]) -> Result<Vec<Token>, String> {
        let flat = as_signal(&inputs[0])?;
        if flat.len() % 2 != 0 {
            return Err("spectrum list must be [frequency, power, ...] pairs".into());
        }
        let bins: Vec<dm_algorithms::signal::SpectrumBin> = flat
            .chunks(2)
            .map(|p| dm_algorithms::signal::SpectrumBin {
                frequency: p[0],
                power: p[1],
            })
            .collect();
        let peaks = spectral_peaks(&bins, self.threshold);
        let mut out = format!("{} spectral peak(s)\n", peaks.len());
        for p in peaks {
            out.push_str(&format!("  {:.2} Hz (power {:.4})\n", p.frequency, p.power));
        }
        Ok(vec![Token::Text(out)])
    }
}

/// Normalised autocorrelation of a signal.
pub struct AutocorrelationTool;

impl Tool for AutocorrelationTool {
    fn name(&self) -> &str {
        "Autocorrelation"
    }

    fn package(&self) -> &str {
        "SignalProcessing"
    }

    fn input_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("signal", "list")]
    }

    fn output_ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::new("autocorrelation", "list")]
    }

    fn execute(&self, inputs: &[Token]) -> Result<Vec<Token>, String> {
        let signal = as_signal(&inputs[0])?;
        let ac = autocorrelation(&signal).map_err(|e| e.to_string())?;
        Ok(vec![to_list(ac)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_workflow::engine::Executor;
    use dm_workflow::graph::TaskGraph;
    use std::collections::HashMap;

    #[test]
    fn fft_pipeline_finds_the_tone() {
        // SignalGen(50 Hz) → PowerSpectrum → PeakDetector, composed
        // through the workflow engine like any other toolbox tools.
        let mut g = TaskGraph::new();
        let gen = g.add_task(Arc::new(SignalGen::sine(50.0, 1000.0, 1024)));
        let spectrum = g.add_task(Arc::new(PowerSpectrumTool::new(1000.0, Window::Hann)));
        let peaks = g.add_task(Arc::new(PeakDetector::new(0.1)));
        g.connect(gen, 0, spectrum, 0).unwrap();
        g.connect(spectrum, 0, peaks, 0).unwrap();
        let report = Executor::serial().run(&g, &HashMap::new()).unwrap();
        match report.output(peaks, 0).unwrap() {
            Token::Text(text) => {
                assert!(text.contains("50.00 Hz") || text.contains("49."), "{text}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn two_tone_signal_two_peaks() {
        let gen = SignalGen::tones(vec![(50.0, 1.0), (180.0, 0.6)], 1000.0, 2048);
        let signal = gen.execute(&[]).unwrap();
        let spec = PowerSpectrumTool::new(1000.0, Window::Hann)
            .execute(&signal)
            .unwrap();
        let peaks = PeakDetector::new(0.05).execute(&spec).unwrap();
        match &peaks[0] {
            Token::Text(t) => assert!(
                t.starts_with("2 spectral peak")
                    || t.chars().next().is_some_and(|c| c.is_ascii_digit())
            ),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fft_tool_outputs_interleaved_complex() {
        let signal = to_list((0..64).map(|i| (i as f64 * 0.3).sin()));
        let out = FftTool.execute(&[signal]).unwrap();
        match &out[0] {
            Token::List(items) => assert_eq!(items.len(), 128),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn autocorrelation_tool_runs() {
        let signal = to_list((0..100).map(|i| if (i / 10) % 2 == 0 { 1.0 } else { -1.0 }));
        let out = AutocorrelationTool.execute(&[signal]).unwrap();
        match &out[0] {
            Token::List(items) => {
                assert_eq!(items.len(), 100);
                assert!((items[0].as_double().unwrap() - 1.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(FftTool.execute(&[Token::Text("no".into())]).is_err());
        assert!(PeakDetector::new(0.1)
            .execute(&[to_list([1.0, 2.0, 3.0])])
            .is_err());
    }

    #[test]
    fn registration() {
        let tb = Toolbox::new();
        register_signal_tools(&tb);
        assert_eq!(tb.tools_in("SignalProcessing").len(), 5);
        assert!(tb.find("FFT").is_ok());
    }
}
