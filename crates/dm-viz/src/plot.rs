//! 2-D charts rendered to SVG — the GNUPlot-wrapper substitute, plus
//! the cluster visualiser tool of §4.3.

use crate::svg::{series_color, SvgDocument};

/// How a series is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesStyle {
    /// Points only.
    Scatter,
    /// Connected polyline.
    Line,
    /// Vertical bars (one per point, x = bar position).
    Bars,
}

/// One named data series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
    /// Drawing style.
    pub style: SeriesStyle,
}

impl Series {
    /// Create a scatter series.
    pub fn scatter<N: Into<String>>(name: N, points: Vec<(f64, f64)>) -> Series {
        Series {
            name: name.into(),
            points,
            style: SeriesStyle::Scatter,
        }
    }

    /// Create a line series.
    pub fn line<N: Into<String>>(name: N, points: Vec<(f64, f64)>) -> Series {
        Series {
            name: name.into(),
            points,
            style: SeriesStyle::Line,
        }
    }

    /// Create a bar series.
    pub fn bars<N: Into<String>>(name: N, points: Vec<(f64, f64)>) -> Series {
        Series {
            name: name.into(),
            points,
            style: SeriesStyle::Bars,
        }
    }
}

/// A 2-D chart with axes, ticks, legend, and any number of series.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Data series.
    pub series: Vec<Series>,
    /// Pixel width (default 640).
    pub width: f64,
    /// Pixel height (default 480).
    pub height: f64,
    /// Draw the y axis from zero even if data starts higher.
    pub y_from_zero: bool,
}

impl Chart {
    /// Create an empty chart.
    pub fn new<T: Into<String>>(title: T) -> Chart {
        Chart {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            series: Vec::new(),
            width: 640.0,
            height: 480.0,
            y_from_zero: false,
        }
    }

    /// Builder: axis labels.
    pub fn labels<X: Into<String>, Y: Into<String>>(mut self, x: X, y: Y) -> Chart {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Builder: add a series.
    pub fn with(mut self, series: Series) -> Chart {
        self.series.push(series);
        self
    }

    fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for s in &self.series {
            for &(x, y) in &s.points {
                min_x = min_x.min(x);
                max_x = max_x.max(x);
                min_y = min_y.min(y);
                max_y = max_y.max(y);
            }
        }
        if !min_x.is_finite() {
            return (0.0, 1.0, 0.0, 1.0);
        }
        if self.y_from_zero {
            min_y = min_y.min(0.0);
        }
        if (max_x - min_x).abs() < 1e-12 {
            max_x = min_x + 1.0;
        }
        if (max_y - min_y).abs() < 1e-12 {
            max_y = min_y + 1.0;
        }
        (min_x, max_x, min_y, max_y)
    }

    /// Render to an SVG document string.
    pub fn to_svg(&self) -> String {
        const M_LEFT: f64 = 64.0;
        const M_RIGHT: f64 = 24.0;
        const M_TOP: f64 = 40.0;
        const M_BOTTOM: f64 = 56.0;

        let (min_x, max_x, min_y, max_y) = self.bounds();
        let plot_w = self.width - M_LEFT - M_RIGHT;
        let plot_h = self.height - M_TOP - M_BOTTOM;
        let sx = |x: f64| M_LEFT + (x - min_x) / (max_x - min_x) * plot_w;
        let sy = |y: f64| M_TOP + plot_h - (y - min_y) / (max_y - min_y) * plot_h;

        let mut doc = SvgDocument::new(self.width, self.height);
        // Frame.
        doc.rect(M_LEFT, M_TOP, plot_w, plot_h, "none", "#333333");
        // Title and axis labels.
        doc.text(self.width / 2.0, 24.0, 16.0, "middle", &self.title);
        doc.text(
            self.width / 2.0,
            self.height - 12.0,
            13.0,
            "middle",
            &self.x_label,
        );
        doc.text(16.0, M_TOP - 12.0, 13.0, "start", &self.y_label);
        // Ticks (5 per axis).
        for i in 0..=5 {
            let fx = min_x + (max_x - min_x) * i as f64 / 5.0;
            let fy = min_y + (max_y - min_y) * i as f64 / 5.0;
            let px = sx(fx);
            let py = sy(fy);
            doc.line(px, M_TOP + plot_h, px, M_TOP + plot_h + 5.0, "#333333", 1.0);
            doc.text(px, M_TOP + plot_h + 18.0, 11.0, "middle", &tick_label(fx));
            doc.line(M_LEFT - 5.0, py, M_LEFT, py, "#333333", 1.0);
            doc.text(M_LEFT - 8.0, py + 4.0, 11.0, "end", &tick_label(fy));
        }
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = series_color(i);
            match s.style {
                SeriesStyle::Scatter => {
                    for &(x, y) in &s.points {
                        doc.circle(sx(x), sy(y), 3.0, color);
                    }
                }
                SeriesStyle::Line => {
                    let pts: Vec<(f64, f64)> =
                        s.points.iter().map(|&(x, y)| (sx(x), sy(y))).collect();
                    doc.polyline(&pts, color, 2.0);
                }
                SeriesStyle::Bars => {
                    let bar_w = (plot_w / (s.points.len().max(1) as f64) * 0.6).max(2.0);
                    for &(x, y) in &s.points {
                        let x0 = sx(x) - bar_w / 2.0;
                        let y0 = sy(y);
                        let base = sy(min_y.max(0.0).min(max_y));
                        doc.rect(x0, y0.min(base), bar_w, (base - y0).abs(), color, "none");
                    }
                }
            }
            // Legend.
            let ly = M_TOP + 16.0 * i as f64 + 8.0;
            doc.rect(M_LEFT + plot_w - 110.0, ly - 8.0, 10.0, 10.0, color, "none");
            doc.text(M_LEFT + plot_w - 96.0, ly + 1.0, 11.0, "start", &s.name);
        }
        doc.finish()
    }
}

fn tick_label(v: f64) -> String {
    if v.abs() >= 1000.0 || (v != 0.0 && v.abs() < 0.01) {
        format!("{v:.1e}")
    } else if v == v.trunc() {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// The cluster visualiser: scatter-plot 2-D points coloured by cluster
/// assignment (one series per cluster).
pub fn cluster_plot(title: &str, points: &[(f64, f64)], assignments: &[usize]) -> String {
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    let mut chart = Chart::new(title).labels("x", "y");
    for c in 0..k {
        let pts: Vec<(f64, f64)> = points
            .iter()
            .zip(assignments)
            .filter(|(_, &a)| a == c)
            .map(|(&p, _)| p)
            .collect();
        chart = chart.with(Series::scatter(format!("cluster {c}"), pts));
    }
    chart.to_svg()
}

/// Render a confusion matrix as an SVG heatmap: rows = actual classes,
/// columns = predicted, cell shade ∝ count, counts printed in-cell.
pub fn confusion_heatmap(title: &str, labels: &[String], matrix: &[Vec<f64>]) -> String {
    use crate::svg::SvgDocument;
    let k = matrix.len();
    const CELL: f64 = 72.0;
    const M_LEFT: f64 = 140.0;
    const M_TOP: f64 = 70.0;
    let width = M_LEFT + k as f64 * CELL + 24.0;
    let height = M_TOP + k as f64 * CELL + 40.0;
    let mut doc = SvgDocument::new(width, height);
    doc.text(width / 2.0, 24.0, 16.0, "middle", title);
    let max = matrix
        .iter()
        .flat_map(|r| r.iter())
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-12);
    for (r, row) in matrix.iter().enumerate() {
        let label = labels.get(r).map(String::as_str).unwrap_or("?");
        doc.text(
            M_LEFT - 8.0,
            M_TOP + r as f64 * CELL + CELL / 2.0 + 4.0,
            11.0,
            "end",
            label,
        );
        doc.text(
            M_LEFT + r as f64 * CELL + CELL / 2.0,
            M_TOP - 10.0,
            11.0,
            "middle",
            label,
        );
        for (c, &v) in row.iter().enumerate() {
            let t = v / max;
            // White → blue ramp; diagonal (correct) cells ramp to green.
            let shade = (255.0 * (1.0 - 0.75 * t)) as u8;
            let fill = if r == c {
                format!("rgb({shade},255,{shade})")
            } else {
                format!("rgb(255,{shade},{shade})")
            };
            let (x, y) = (M_LEFT + c as f64 * CELL, M_TOP + r as f64 * CELL);
            doc.rect(x, y, CELL, CELL, &fill, "#777777");
            doc.text(
                x + CELL / 2.0,
                y + CELL / 2.0 + 4.0,
                12.0,
                "middle",
                &format!("{v:.0}"),
            );
        }
    }
    doc.text(
        M_LEFT - 8.0,
        M_TOP - 30.0,
        11.0,
        "end",
        "actual \\ predicted",
    );
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_line_and_bars_render() {
        let chart = Chart::new("demo")
            .labels("time", "value")
            .with(Series::scatter("points", vec![(0.0, 1.0), (1.0, 2.0)]))
            .with(Series::line("trend", vec![(0.0, 0.5), (1.0, 2.5)]))
            .with(Series::bars("counts", vec![(0.0, 3.0), (1.0, 1.0)]));
        let svg = chart.to_svg();
        assert!(svg.contains("demo"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("circle"));
        assert!(svg.contains("points"));
        assert!(svg.contains("counts"));
    }

    #[test]
    fn empty_chart_renders() {
        let svg = Chart::new("empty").to_svg();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn degenerate_ranges_handled() {
        // All points identical: bounds must not divide by zero.
        let chart = Chart::new("flat").with(Series::scatter("s", vec![(2.0, 5.0); 3]));
        let svg = chart.to_svg();
        assert!(svg.contains("circle"));
    }

    #[test]
    fn cluster_plot_one_series_per_cluster() {
        let points = vec![(0.0, 0.0), (1.0, 1.0), (10.0, 10.0)];
        let svg = cluster_plot("clusters", &points, &[0, 0, 1]);
        assert!(svg.contains("cluster 0"));
        assert!(svg.contains("cluster 1"));
    }

    #[test]
    fn tick_labels() {
        assert_eq!(tick_label(5.0), "5");
        assert_eq!(tick_label(0.25), "0.25");
        assert!(tick_label(12345.0).contains('e'));
    }

    #[test]
    fn confusion_heatmap_renders_cells_and_labels() {
        let svg = confusion_heatmap(
            "J48 confusion",
            &["yes".to_string(), "no".to_string()],
            &[vec![190.0, 11.0], vec![52.0, 33.0]],
        );
        assert!(svg.contains("J48 confusion"));
        assert!(svg.contains(">190<"));
        assert!(svg.contains(">33<"));
        assert_eq!(svg.matches("<rect").count(), 5); // 4 cells + background
        assert!(svg.contains("yes"));
    }

    #[test]
    fn confusion_heatmap_empty_matrix() {
        let svg = confusion_heatmap("empty", &[], &[]);
        assert!(svg.starts_with("<svg"));
    }
}
