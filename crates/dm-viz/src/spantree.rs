//! ASCII rendering of causal span trees ([`dm_wsrf::trace`]): one box
//! per trace, children indented under their parent span, siblings in
//! start order. The terminal companion to the metrics exporters — run a
//! workflow with tracing on, then print
//! `render_span_tree(&tracer.finished_spans())` to see the
//! workflow → task → SOAP call → transport leg → dispatch chain.

use dm_wsrf::trace::{Span, SpanStatus};
use std::collections::{BTreeMap, HashSet};

/// Render every trace in `spans` as an indented ASCII tree.
///
/// Spans are grouped by `trace_id`; within a trace, spans whose parent
/// is absent (or `None`) are roots. Siblings sort by start instant,
/// ties by span id, so the rendering is deterministic.
pub fn render_span_tree(spans: &[Span]) -> String {
    let mut traces: BTreeMap<u128, Vec<&Span>> = BTreeMap::new();
    for span in spans {
        traces.entry(span.trace_id).or_default().push(span);
    }
    let mut out = String::new();
    for (trace_id, mut members) in traces {
        members.sort_by_key(|s| (s.start, s.span_id));
        let ids: HashSet<u64> = members.iter().map(|s| s.span_id).collect();
        let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
        let mut roots: Vec<&Span> = Vec::new();
        for span in &members {
            match span.parent_span_id {
                Some(parent) if ids.contains(&parent) => {
                    children.entry(parent).or_default().push(span)
                }
                _ => roots.push(span),
            }
        }
        out.push_str(&format!("trace {trace_id:032x}\n"));
        let last = roots.len();
        for (i, root) in roots.into_iter().enumerate() {
            render_node(root, &children, "", i + 1 == last, &mut out);
        }
    }
    out
}

fn render_node(
    span: &Span,
    children: &BTreeMap<u64, Vec<&Span>>,
    prefix: &str,
    last: bool,
    out: &mut String,
) {
    out.push_str(prefix);
    out.push_str(if last { "└─ " } else { "├─ " });
    out.push_str(&describe(span));
    out.push('\n');
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    if let Some(kids) = children.get(&span.span_id) {
        let n = kids.len();
        for (i, kid) in kids.iter().enumerate() {
            render_node(kid, children, &child_prefix, i + 1 == n, out);
        }
    }
}

fn describe(span: &Span) -> String {
    let mut line = format!(
        "{} [{}] {:?}..{:?}",
        span.name,
        span.kind.as_str(),
        span.start,
        span.end
    );
    for (key, value) in &span.attributes {
        line.push_str(&format!(" {key}={value}"));
    }
    if let SpanStatus::Error(message) = &span.status {
        line.push_str(&format!("  ERROR: {message}"));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_wsrf::trace::{SpanKind, Tracer};
    use std::sync::Arc;

    #[test]
    fn renders_nested_spans_with_branch_glyphs() {
        let tracer = Arc::new(Tracer::wall_clock());
        let root = tracer.start_span("workflow", SpanKind::Workflow, None);
        let mut task = tracer.start_span("Train", SpanKind::Task, Some(root.ctx()));
        task.set_attr("attempt", "1");
        let call = tracer.start_span("J48.classify", SpanKind::SoapCall, Some(task.ctx()));
        let mut sibling = tracer.start_span("Plot", SpanKind::Task, Some(root.ctx()));
        sibling.set_error("boom");
        drop(call);
        drop(sibling);
        drop(task);
        drop(root);

        let text = render_span_tree(&tracer.finished_spans());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("trace "));
        assert!(lines[1].contains("workflow [workflow]"), "{text}");
        // The task opened first is rendered before its sibling, and the
        // SOAP call indents one level deeper.
        assert!(lines[2].contains("├─ Train [task]"), "{text}");
        assert!(lines[2].contains("attempt=1"), "{text}");
        assert!(
            lines[3].contains("│  └─ J48.classify [soap-call]"),
            "{text}"
        );
        assert!(lines[4].contains("└─ Plot [task]"), "{text}");
        assert!(lines[4].contains("ERROR: boom"), "{text}");
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn separate_traces_render_as_separate_blocks() {
        let tracer = Arc::new(Tracer::wall_clock());
        tracer
            .start_span("first", SpanKind::Workflow, None)
            .finish();
        tracer
            .start_span("second", SpanKind::Workflow, None)
            .finish();
        let text = render_span_tree(&tracer.finished_spans());
        assert_eq!(text.matches("trace ").count(), 2);
        assert!(render_span_tree(&[]).is_empty());
    }

    #[test]
    fn orphaned_parent_falls_back_to_root() {
        // A span whose parent was never recorded (e.g. filtered out)
        // still renders, as a root of its trace.
        let tracer = Arc::new(Tracer::wall_clock());
        let root = tracer.start_span("workflow", SpanKind::Workflow, None);
        let ctx = root.ctx();
        std::mem::forget(root); // parent never finishes → never recorded
        tracer
            .start_span("leg", SpanKind::TransportLeg, Some(ctx))
            .finish();
        let text = render_span_tree(&tracer.finished_spans());
        assert!(text.contains("└─ leg [transport-leg]"), "{text}");
    }
}
