//! Terminal renderers: quick histogram bars and scatter grids for
//! inspecting results without leaving the console.

/// Render labelled values as a horizontal bar chart.
///
/// ```
/// let out = dm_viz::ascii::bar_chart(&[("yes", 9.0), ("no", 5.0)], 20);
/// assert!(out.contains("yes"));
/// ```
pub fn bar_chart(rows: &[(&str, f64)], max_width: usize) -> String {
    let max_value = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let bar_len = if max_value > 0.0 {
            ((value / max_value) * max_width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_width$} | {} {value}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Render 2-D points as a character grid (`*` marks occupied cells).
pub fn scatter(points: &[(f64, f64)], cols: usize, rows: usize) -> String {
    let mut grid = vec![vec![' '; cols]; rows];
    if !points.is_empty() {
        let min_x = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let max_x = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let min_y = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let max_y = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let span_x = (max_x - min_x).max(1e-12);
        let span_y = (max_y - min_y).max(1e-12);
        for &(x, y) in points {
            let c = (((x - min_x) / span_x) * (cols - 1) as f64).round() as usize;
            let r = (((max_y - y) / span_y) * (rows - 1) as f64).round() as usize;
            grid[r.min(rows - 1)][c.min(cols - 1)] = '*';
        }
    }
    let mut out = String::new();
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

/// Render a confusion matrix with class labels.
pub fn confusion_matrix(labels: &[String], matrix: &[Vec<f64>]) -> String {
    let mut out = String::from("actual \\ predicted\n");
    for (i, row) in matrix.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:8.1}")).collect();
        out.push_str(&format!(
            "{:>20} {}\n",
            labels.get(i).map(String::as_str).unwrap_or("?"),
            cells.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let out = bar_chart(&[("a", 10.0), ("b", 5.0)], 10);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains(&"#".repeat(10)));
        assert!(lines[1].contains(&"#".repeat(5)));
        assert!(!lines[1].contains(&"#".repeat(6)));
    }

    #[test]
    fn bars_handle_zero() {
        let out = bar_chart(&[("a", 0.0)], 10);
        assert!(out.contains("a | "));
    }

    #[test]
    fn scatter_marks_extremes() {
        let out = scatter(&[(0.0, 0.0), (1.0, 1.0)], 10, 5);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains('*')); // max y at the top
        assert!(lines[4].contains('*'));
    }

    #[test]
    fn scatter_empty_is_blank() {
        let out = scatter(&[], 4, 2);
        assert_eq!(out, "|    |\n|    |\n");
    }

    #[test]
    fn confusion_matrix_renders() {
        let out = confusion_matrix(
            &["yes".to_string(), "no".to_string()],
            &[vec![9.0, 1.0], vec![2.0, 3.0]],
        );
        assert!(out.contains("yes"));
        assert!(out.contains("9.0"));
    }
}
