//! A minimal SVG document builder: enough shapes for charts and tree
//! layouts, producing standalone `<svg>` documents.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDocument {
    width: f64,
    height: f64,
    body: String,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

impl SvgDocument {
    /// Create a document of the given pixel size.
    pub fn new(width: f64, height: f64) -> SvgDocument {
        SvgDocument {
            width,
            height,
            body: String::new(),
        }
    }

    /// Document width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Add a line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width}"/>"#,
        )
        .expect("string write");
    }

    /// Add a rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: &str) {
        writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}" stroke="{stroke}"/>"#,
        )
        .expect("string write");
    }

    /// Add a circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}"/>"#
        )
        .expect("string write");
    }

    /// Add text (anchor: `start`, `middle`, or `end`).
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, content: &str) {
        writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="sans-serif" text-anchor="{anchor}">{}</text>"#,
            esc(content)
        )
        .expect("string write");
    }

    /// Add a polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width}"/>"#,
            pts.join(" ")
        )
        .expect("string write");
    }

    /// Finish the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n<rect x=\"0\" y=\"0\" width=\"{:.0}\" height=\"{:.0}\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.width, self.height, self.body
        )
    }
}

/// A qualitative colour palette (colour-blind-safe Okabe–Ito).
pub const PALETTE: [&str; 8] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442", "#000000",
];

/// Palette colour for series `i` (wraps around).
pub fn series_color(i: usize) -> &'static str {
    PALETTE[i % PALETTE.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut doc = SvgDocument::new(100.0, 50.0);
        doc.line(0.0, 0.0, 10.0, 10.0, "black", 1.0);
        doc.circle(5.0, 5.0, 2.0, "#ff0000");
        doc.rect(1.0, 1.0, 5.0, 5.0, "none", "blue");
        doc.text(50.0, 25.0, 10.0, "middle", "title <x>");
        doc.polyline(&[(0.0, 0.0), (1.0, 2.0)], "green", 1.5);
        let svg = doc.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("<line"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("&lt;x&gt;"));
        assert!(svg.contains("polyline"));
    }

    #[test]
    fn palette_wraps() {
        assert_eq!(series_color(0), series_color(8));
        assert_ne!(series_color(0), series_color(1));
    }
}
