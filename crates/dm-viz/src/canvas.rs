//! A raster canvas with a PPM (P6) encoder, and the `plot3D` renderer —
//! the Mathematica Web Service substitute. §4.2: "plot data points sent
//! as a CSV file in three dimension and return the plotted graph as an
//! image file (PNG format)". We return a binary PPM image: a real
//! raster image format, losslessly convertible to PNG, with no codec
//! dependency.

/// An RGB raster canvas.
#[derive(Debug, Clone, PartialEq)]
pub struct Canvas {
    width: usize,
    height: usize,
    pixels: Vec<[u8; 3]>,
}

impl Canvas {
    /// Create a white canvas.
    pub fn new(width: usize, height: usize) -> Canvas {
        Canvas {
            width,
            height,
            pixels: vec![[255, 255, 255]; width * height],
        }
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Read a pixel (row-major; returns black for out-of-range).
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x]
        } else {
            [0, 0, 0]
        }
    }

    /// Set a pixel (silently ignores out-of-range).
    pub fn set(&mut self, x: i64, y: i64, rgb: [u8; 3]) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.pixels[y as usize * self.width + x as usize] = rgb;
        }
    }

    /// Draw a filled disc.
    pub fn disc(&mut self, cx: i64, cy: i64, r: i64, rgb: [u8; 3]) {
        for dy in -r..=r {
            for dx in -r..=r {
                if dx * dx + dy * dy <= r * r {
                    self.set(cx + dx, cy + dy, rgb);
                }
            }
        }
    }

    /// Draw a line (Bresenham).
    pub fn line(&mut self, mut x0: i64, mut y0: i64, x1: i64, y1: i64, rgb: [u8; 3]) {
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            self.set(x0, y0, rgb);
            if x0 == x1 && y0 == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x0 += sx;
            }
            if e2 <= dx {
                err += dx;
                y0 += sy;
            }
        }
    }

    /// Encode as a binary PPM (P6) image.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.reserve(self.pixels.len() * 3);
        for p in &self.pixels {
            out.extend_from_slice(p);
        }
        out
    }
}

/// Render a 3-D point cloud as an isometric-projection raster image —
/// the `plot3D` operation. Points are `(x, y, z)`; colour encodes
/// height (z), and the three axes are drawn from the origin corner.
pub fn plot3d(points: &[(f64, f64, f64)], width: usize, height: usize) -> Canvas {
    let mut canvas = Canvas::new(width, height);
    if points.is_empty() {
        return canvas;
    }
    // Normalise into the unit cube.
    let mut min = [f64::INFINITY; 3];
    let mut max = [f64::NEG_INFINITY; 3];
    for &(x, y, z) in points {
        for (i, v) in [x, y, z].into_iter().enumerate() {
            min[i] = min[i].min(v);
            max[i] = max[i].max(v);
        }
    }
    let norm = |v: f64, i: usize| -> f64 {
        if max[i] > min[i] {
            (v - min[i]) / (max[i] - min[i])
        } else {
            0.5
        }
    };
    // Isometric projection of the unit cube into the canvas.
    let (w, h) = (width as f64, height as f64);
    let project = |x: f64, y: f64, z: f64| -> (i64, i64) {
        let px = 0.5 * w + (x - y) * 0.35 * w;
        let py = 0.82 * h - z * 0.55 * h - (x + y) * 0.16 * h;
        (px as i64, py as i64)
    };
    // Axes from the origin corner.
    let origin = project(0.0, 0.0, 0.0);
    for (target, _label) in [
        (project(1.0, 0.0, 0.0), "x"),
        (project(0.0, 1.0, 0.0), "y"),
        (project(0.0, 0.0, 1.0), "z"),
    ] {
        canvas.line(origin.0, origin.1, target.0, target.1, [120, 120, 120]);
    }
    // Points, back-to-front (painter's order by x+y).
    let mut ordered: Vec<(f64, f64, f64)> = points.to_vec();
    ordered.sort_by(|a, b| {
        (a.0 + a.1)
            .partial_cmp(&(b.0 + b.1))
            .expect("finite coordinates")
    });
    for (x, y, z) in ordered {
        let (nx, ny, nz) = (norm(x, 0), norm(y, 1), norm(z, 2));
        let (px, py) = project(nx, ny, nz);
        let colour = height_colour(nz);
        canvas.disc(px, py, 2, colour);
    }
    canvas
}

/// Blue-to-red height colour map.
fn height_colour(t: f64) -> [u8; 3] {
    let t = t.clamp(0.0, 1.0);
    [(255.0 * t) as u8, 60, (255.0 * (1.0 - t)) as u8]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppm_header_and_size() {
        let c = Canvas::new(4, 3);
        let ppm = c.to_ppm();
        assert!(ppm.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(ppm.len(), 11 + 4 * 3 * 3);
    }

    #[test]
    fn set_and_get() {
        let mut c = Canvas::new(10, 10);
        c.set(3, 4, [1, 2, 3]);
        assert_eq!(c.get(3, 4), [1, 2, 3]);
        c.set(-1, 0, [9, 9, 9]); // silently ignored
        c.set(100, 0, [9, 9, 9]);
        assert_eq!(c.get(0, 0), [255, 255, 255]);
    }

    #[test]
    fn line_connects_endpoints() {
        let mut c = Canvas::new(20, 20);
        c.line(0, 0, 19, 19, [0, 0, 0]);
        assert_eq!(c.get(0, 0), [0, 0, 0]);
        assert_eq!(c.get(19, 19), [0, 0, 0]);
        assert_eq!(c.get(10, 10), [0, 0, 0]);
    }

    #[test]
    fn disc_fills() {
        let mut c = Canvas::new(20, 20);
        c.disc(10, 10, 3, [5, 5, 5]);
        assert_eq!(c.get(10, 10), [5, 5, 5]);
        assert_eq!(c.get(12, 10), [5, 5, 5]);
        assert_eq!(c.get(16, 10), [255, 255, 255]);
    }

    #[test]
    fn plot3d_draws_points_and_axes() {
        let points: Vec<(f64, f64, f64)> = (0..100)
            .map(|i| {
                let t = i as f64 / 100.0;
                (t, (t * std::f64::consts::TAU).sin() * 0.5 + 0.5, t * t)
            })
            .collect();
        let canvas = plot3d(&points, 320, 240);
        // Some non-white pixels must exist.
        let non_white = (0..240)
            .flat_map(|y| (0..320).map(move |x| (x, y)))
            .filter(|&(x, y)| canvas.get(x, y) != [255, 255, 255])
            .count();
        assert!(non_white > 200, "only {non_white} drawn pixels");
        let ppm = canvas.to_ppm();
        assert!(ppm.starts_with(b"P6\n320 240\n"));
    }

    #[test]
    fn plot3d_empty_is_blank() {
        let canvas = plot3d(&[], 32, 32);
        assert_eq!(canvas.get(16, 16), [255, 255, 255]);
    }

    #[test]
    fn height_colour_endpoints() {
        assert_eq!(height_colour(0.0), [0, 60, 255]);
        assert_eq!(height_colour(1.0), [255, 60, 0]);
    }
}
