//! Tree rendering: the TreeVisualizer behind Figure 4 ("Visualising the
//! C4.5 decision tree for the breast-cancer data set") and the Cobweb
//! tree plotter. Accepts a plain [`TreeSpec`] so any upstream model
//! (J48, Cobweb, dendrograms) can be rendered without a dependency on
//! the algorithms crate.

use crate::svg::SvgDocument;

/// One node of a renderable tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeSpecNode {
    /// Node label.
    pub label: String,
    /// Incoming-edge label (empty for the root).
    pub edge: String,
    /// Child indices.
    pub children: Vec<usize>,
    /// Leaf flag (leaves render as boxes, internal nodes as ellipses).
    pub is_leaf: bool,
}

/// An arena tree ready for rendering (index 0 is the root).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TreeSpec {
    /// Nodes in arena order; node 0 is the root.
    pub nodes: Vec<TreeSpecNode>,
}

impl TreeSpec {
    /// Create an empty spec.
    pub fn new() -> TreeSpec {
        TreeSpec::default()
    }

    /// Add a node, returning its index.
    pub fn add<L: Into<String>, E: Into<String>>(
        &mut self,
        label: L,
        edge: E,
        is_leaf: bool,
    ) -> usize {
        self.nodes.push(TreeSpecNode {
            label: label.into(),
            edge: edge.into(),
            children: Vec::new(),
            is_leaf,
        });
        self.nodes.len() - 1
    }

    /// Attach `child` beneath `parent`.
    pub fn connect(&mut self, parent: usize, child: usize) {
        self.nodes[parent].children.push(child);
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf).count()
    }

    /// Depth (root = 1, empty = 0).
    pub fn depth(&self) -> usize {
        fn go(t: &TreeSpec, i: usize) -> usize {
            1 + t.nodes[i]
                .children
                .iter()
                .map(|&c| go(t, c))
                .max()
                .unwrap_or(0)
        }
        if self.nodes.is_empty() {
            0
        } else {
            go(self, 0)
        }
    }

    /// Indented text rendering (edge labels inline).
    pub fn to_text(&self) -> String {
        fn go(t: &TreeSpec, i: usize, depth: usize, out: &mut String) {
            let n = &t.nodes[i];
            let indent = "    ".repeat(depth);
            if n.edge.is_empty() {
                out.push_str(&format!("{indent}{}\n", n.label));
            } else {
                out.push_str(&format!("{indent}{} -> {}\n", n.edge, n.label));
            }
            for &c in &n.children {
                go(t, c, depth + 1, out);
            }
        }
        let mut out = String::new();
        if !self.nodes.is_empty() {
            go(self, 0, 0, &mut out);
        }
        out
    }

    /// Layered SVG rendering: leaves evenly spaced on the x axis,
    /// internal nodes centred over their children, one layer per depth.
    pub fn to_svg(&self) -> String {
        const X_STEP: f64 = 130.0;
        const Y_STEP: f64 = 90.0;
        const MARGIN: f64 = 50.0;

        if self.nodes.is_empty() {
            return SvgDocument::new(200.0, 100.0).finish();
        }

        // Assign x to leaves in in-order, y by depth; internal nodes
        // centred over children.
        let mut pos = vec![(0.0f64, 0.0f64); self.nodes.len()];
        let mut next_leaf_x = 0.0;
        fn layout(
            t: &TreeSpec,
            i: usize,
            depth: usize,
            next_leaf_x: &mut f64,
            pos: &mut [(f64, f64)],
        ) -> f64 {
            let y = depth as f64;
            let x = if t.nodes[i].children.is_empty() {
                let x = *next_leaf_x;
                *next_leaf_x += 1.0;
                x
            } else {
                let xs: Vec<f64> = t.nodes[i]
                    .children
                    .iter()
                    .map(|&c| layout(t, c, depth + 1, next_leaf_x, pos))
                    .collect();
                xs.iter().sum::<f64>() / xs.len() as f64
            };
            pos[i] = (x, y);
            x
        }
        layout(self, 0, 0, &mut next_leaf_x, &mut pos);

        let width = MARGIN * 2.0 + next_leaf_x.max(1.0) * X_STEP;
        let height = MARGIN * 2.0 + (self.depth().max(1) - 1) as f64 * Y_STEP + 40.0;
        let mut doc = SvgDocument::new(width, height);
        let place = |(x, y): (f64, f64)| -> (f64, f64) {
            (MARGIN + x * X_STEP + X_STEP / 2.0, MARGIN + y * Y_STEP)
        };

        // Edges first (under the nodes).
        for (i, n) in self.nodes.iter().enumerate() {
            let (px, py) = place(pos[i]);
            for &c in &n.children {
                let (cx, cy) = place(pos[c]);
                doc.line(px, py, cx, cy, "#888888", 1.0);
                let (mx, my) = ((px + cx) / 2.0, (py + cy) / 2.0 - 4.0);
                if !self.nodes[c].edge.is_empty() {
                    doc.text(mx, my, 11.0, "middle", &self.nodes[c].edge);
                }
            }
        }
        // Nodes.
        for (i, n) in self.nodes.iter().enumerate() {
            let (x, y) = place(pos[i]);
            if n.is_leaf {
                let w = 10.0 + 6.5 * n.label.len() as f64;
                doc.rect(x - w / 2.0, y - 12.0, w, 24.0, "#eef5ff", "#1f77b4");
            } else {
                doc.circle(x, y, 16.0, "#ffe9cc");
            }
            doc.text(x, y + 4.0, 12.0, "middle", &n.label);
        }
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure4_like() -> TreeSpec {
        let mut t = TreeSpec::new();
        let root = t.add("node-caps", "", false);
        let yes = t.add("deg-malig", "= yes", false);
        let no = t.add("no-recurrence-events", "= no", true);
        t.connect(root, yes);
        t.connect(root, no);
        let a = t.add("recurrence-events", "= 3", true);
        let b = t.add("no-recurrence-events", "= 1", true);
        t.connect(yes, a);
        t.connect(yes, b);
        t
    }

    #[test]
    fn text_rendering() {
        let t = figure4_like();
        let text = t.to_text();
        assert!(text.starts_with("node-caps\n"));
        assert!(text.contains("    = yes -> deg-malig"));
        assert!(text.contains("        = 3 -> recurrence-events"));
    }

    #[test]
    fn svg_contains_all_labels_and_edges() {
        let t = figure4_like();
        let svg = t.to_svg();
        assert!(svg.contains("node-caps"));
        assert!(svg.contains("deg-malig"));
        assert!(svg.contains("= yes"));
        assert!(svg.contains("<rect")); // leaves
        assert!(svg.contains("<circle")); // internal nodes
    }

    #[test]
    fn metrics() {
        let t = figure4_like();
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.depth(), 3);
        assert_eq!(TreeSpec::new().depth(), 0);
    }

    #[test]
    fn empty_tree_renders() {
        let svg = TreeSpec::new().to_svg();
        assert!(svg.starts_with("<svg"));
        assert_eq!(TreeSpec::new().to_text(), "");
    }

    #[test]
    fn single_node_tree() {
        let mut t = TreeSpec::new();
        t.add("only", "", true);
        assert!(t.to_svg().contains("only"));
        assert_eq!(t.to_text(), "only\n");
    }
}
