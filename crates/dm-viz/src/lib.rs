//! # dm-viz — visualisation substrate for `faehim-rs`
//!
//! The paper wraps GNUPlot for 2-D plotting, exposes a Mathematica
//! `plot3D` Web Service that "plot\[s\] data points sent as a CSV file in
//! three dimension and return\[s\] the plotted graph as an image file",
//! and ships Triana tools for tree plotting and cluster visualisation
//! (§4.2, §4.3). This crate is the offline equivalent:
//!
//! * [`svg`] — a small SVG document builder;
//! * [`plot`] — scatter / line / histogram charts rendered to SVG (the
//!   GNUPlot substitute), including a cluster visualiser;
//! * [`tree`] — decision-tree and dendrogram rendering: indented text
//!   and a layered SVG layout (the TreeVisualizer of Figure 4);
//! * [`canvas`] — a raster canvas with a PPM encoder and the `plot3D`
//!   projection renderer (the Mathematica substitute returning real
//!   image bytes);
//! * [`ascii`] — terminal renderers for quick inspection;
//! * [`spantree`] — ASCII rendering of [`dm_wsrf::trace`] span trees
//!   (the observability companion: print a workflow's causal chain).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ascii;
pub mod canvas;
pub mod plot;
pub mod spantree;
pub mod svg;
pub mod tree;

pub use canvas::Canvas;
pub use plot::{Chart, Series, SeriesStyle};
pub use tree::TreeSpec;
