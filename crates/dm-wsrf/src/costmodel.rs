//! The QoS cost-model snapshot behind the composition planner (E20).
//!
//! The paper's compositions are hand-wired cables between concrete
//! services; selecting *which* replica serves each abstract step is the
//! QoS service-selection problem (solved knapsack-style by Fan & Yang)
//! biased towards data locality (Sadeghiram et al.). Every input that
//! selection needs already exists as a live signal somewhere in this
//! crate: per-host latency quantiles in [`MonitorLog`], queue depth and
//! shed counters in [`LoadStats`], breaker state in [`BreakerBoard`],
//! outstanding-request counts in `Network::load_snapshot`, and the
//! data-plane inline threshold that decides when a payload travels as a
//! `DataRef` handle instead of inline bytes.
//!
//! [`CostModel`] freezes those signals into one plain-data snapshot so
//! a planner run is a pure function of `(goal, candidates, snapshot,
//! seed)` — re-planning with the same snapshot always yields the same
//! assignment, which is what the determinism benches pin.

use crate::container::LoadStats;
use crate::monitor::MonitorLog;
use crate::resilience::BreakerBoard;
use crate::transport::{DataPlaneConfig, NetworkConfig};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// Approximate wire size of a `DataRef` handle envelope element (kind
/// tag + 128-bit content hash + length). Used to *predict* the bytes a
/// co-located hop still pays when the payload itself is substituted.
pub const DATA_REF_WIRE_BYTES: usize = 96;

/// Everything the planner knows about one host, frozen at snapshot
/// time. Missing telemetry stays `None`/zero — a cold host is scored
/// with the model's defaults, not excluded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostCost {
    /// Outstanding requests (max of wall-clock outstanding and the
    /// capacity model's in-system count), from `Network::load_snapshot`.
    pub outstanding: u64,
    /// Median per-attempt duration from the monitor log.
    pub p50: Option<Duration>,
    /// Nearest-rank p99 per-attempt duration from the monitor log.
    pub p99: Option<Duration>,
    /// `shed / (admitted + shed)` from the host's [`LoadStats`].
    pub shed_rate: f64,
    /// `(faults + transport errors) / invocations` from the monitor.
    pub failure_rate: f64,
    /// `true` when the host's circuit breaker is open — the planner
    /// must never place a step here.
    pub breaker_open: bool,
}

/// A frozen telemetry snapshot plus the link/data-plane parameters
/// needed to price a `(step, replica)` pairing.
#[derive(Debug, Clone)]
pub struct CostModel {
    hosts: BTreeMap<String, HostCost>,
    /// Link cost model used to price predicted transfers.
    pub link: NetworkConfig,
    /// Payloads at or above this many bytes are eligible for `DataRef`
    /// substitution when the receiving host already holds them.
    pub inline_threshold: usize,
    /// Service-time estimate for hosts with no recorded latency.
    pub default_service_time: Duration,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            hosts: BTreeMap::new(),
            link: NetworkConfig::default(),
            inline_threshold: DataPlaneConfig::default().inline_threshold,
            default_service_time: Duration::from_millis(2),
        }
    }
}

impl CostModel {
    /// An empty snapshot: no telemetry, default link parameters. A
    /// planner fed this must still produce a valid plan (cold start).
    pub fn new() -> CostModel {
        CostModel::default()
    }

    /// `true` when no host has any recorded telemetry.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The snapshot's view of `host`, if any signal has been recorded.
    pub fn host(&self, host: &str) -> Option<&HostCost> {
        self.hosts.get(host)
    }

    /// All hosts with recorded telemetry, sorted by name.
    pub fn hosts(&self) -> impl Iterator<Item = (&String, &HostCost)> {
        self.hosts.iter()
    }

    fn entry(&mut self, host: &str) -> &mut HostCost {
        self.hosts.entry(host.to_string()).or_default()
    }

    /// Fold an outstanding-request snapshot (e.g.
    /// `Network::load_snapshot`) into the model.
    pub fn observe_loads(&mut self, loads: &HashMap<String, u64>) {
        for (host, &load) in loads {
            let e = self.entry(host);
            e.outstanding = e.outstanding.max(load);
        }
    }

    /// Fold the monitor log's per-host quantiles and failure rates in.
    pub fn observe_monitor(&mut self, log: &MonitorLog) {
        for s in log.summary_by_host() {
            let e = self.entry(&s.host);
            e.p50 = Some(s.p50_duration);
            e.p99 = Some(s.p99_duration);
            e.failure_rate = s.failure_rate;
        }
    }

    /// Fold one host's admission-control counters in: shed rate and
    /// the in-system depth at the snapshot instant.
    pub fn observe_load_stats(&mut self, host: &str, stats: &LoadStats) {
        let e = self.entry(host);
        let offered = stats.admitted + stats.shed;
        if offered > 0 {
            e.shed_rate = stats.shed as f64 / offered as f64;
        }
        e.outstanding = e.outstanding.max(stats.in_system as u64);
    }

    /// Mark every host whose breaker is open at `now` as unplaceable.
    pub fn observe_breakers(&mut self, board: &BreakerBoard, now: Duration) {
        for host in board.open_hosts(now) {
            self.entry(&host).breaker_open = true;
        }
    }

    /// `false` when the host's breaker is open (a host the snapshot has
    /// never seen is allowed — cold start must not starve the planner).
    pub fn allows(&self, host: &str) -> bool {
        self.hosts.get(host).is_none_or(|h| !h.breaker_open)
    }

    /// The blended load × tail score used by the registry's
    /// least-outstanding ranking: `(outstanding + 1) × p99`, in
    /// nanoseconds. A fast-but-busy host (many requests, small tail)
    /// can beat a slow-but-idle one; with no tail signal the score
    /// degrades to the plain outstanding count.
    pub fn cost_score(outstanding: u64, p99: Duration) -> u128 {
        (outstanding as u128 + 1) * p99.as_nanos().max(1)
    }

    /// Predicted virtual nanoseconds for one invocation on `host`:
    /// queue-depth-many service times ahead of ours plus our own,
    /// inflated by the host's shed and failure rates (each shed or
    /// failed attempt is work a caller re-pays elsewhere).
    pub fn service_nanos(&self, host: &str) -> u128 {
        let (outstanding, tail, pressure) = match self.hosts.get(host) {
            Some(h) => (
                h.outstanding,
                h.p99.unwrap_or(self.default_service_time),
                1.0 + h.shed_rate + h.failure_rate,
            ),
            None => (0, self.default_service_time, 1.0),
        };
        let base = (outstanding as u128 + 1) * tail.as_nanos().max(1);
        (base as f64 * pressure) as u128
    }

    /// Predicted wire bytes for shipping a `bytes`-sized payload to a
    /// step's host. When the previous step ran on the *same* host and
    /// the payload clears the inline threshold, the host's attachment
    /// store already holds it, so only a `DataRef` handle travels.
    pub fn predicted_transfer_bytes(&self, bytes: usize, colocated: bool) -> usize {
        if colocated && bytes >= self.inline_threshold {
            DATA_REF_WIRE_BYTES.min(bytes)
        } else {
            bytes
        }
    }

    /// Predicted virtual nanoseconds to move `bytes` over the link.
    pub fn transfer_nanos(&self, bytes: usize) -> u128 {
        self.link.transmit_time(bytes).as_nanos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{InvocationEvent, Outcome};
    use crate::resilience::BreakerConfig;

    fn event(host: &str, ms: u64, outcome: Outcome) -> InvocationEvent {
        InvocationEvent {
            host: host.into(),
            service: "S".into(),
            operation: "op".into(),
            duration: Duration::from_millis(ms),
            bytes_in: 10,
            bytes_out: 10,
            bytes_saved: 0,
            ref_hits: 0,
            outcome,
        }
    }

    #[test]
    fn empty_model_uses_defaults() {
        let m = CostModel::new();
        assert!(m.is_empty());
        assert!(m.allows("anywhere"));
        assert_eq!(
            m.service_nanos("anywhere"),
            Duration::from_millis(2).as_nanos()
        );
    }

    #[test]
    fn monitor_and_loads_fold_in() {
        let log = MonitorLog::new();
        log.record(event("a", 4, Outcome::Ok));
        log.record(event("a", 8, Outcome::Fault("Server".into())));
        let mut m = CostModel::new();
        m.observe_monitor(&log);
        m.observe_loads(&[("a".to_string(), 3)].into());
        let a = m.host("a").unwrap();
        assert_eq!(a.p99, Some(Duration::from_millis(8)));
        assert_eq!(a.outstanding, 3);
        assert!((a.failure_rate - 0.5).abs() < 1e-12);
        // (3 + 1) queue positions × 8 ms tail × 1.5 failure pressure.
        assert_eq!(
            m.service_nanos("a"),
            (4.0 * Duration::from_millis(8).as_nanos() as f64 * 1.5) as u128
        );
    }

    #[test]
    fn load_stats_set_shed_rate_and_depth() {
        let stats = LoadStats {
            admitted: 6,
            queued: 3,
            shed: 2,
            total_queue_wait: Duration::ZERO,
            in_system: 5,
            queue_waits: crate::metrics::Histogram::new(),
        };
        let mut m = CostModel::new();
        m.observe_load_stats("a", &stats);
        let a = m.host("a").unwrap();
        assert!((a.shed_rate - 0.25).abs() < 1e-12);
        assert_eq!(a.outstanding, 5);
    }

    #[test]
    fn open_breakers_block_placement() {
        let board = BreakerBoard::new(BreakerConfig::default());
        let b = board.breaker("bad");
        for _ in 0..32 {
            b.record_failure(Duration::ZERO);
        }
        let mut m = CostModel::new();
        m.observe_breakers(&board, Duration::ZERO);
        assert!(!m.allows("bad"));
        assert!(m.allows("good"));
    }

    #[test]
    fn cost_score_blends_load_and_tail() {
        // Busy-but-fast beats idle-but-slow.
        let fast_busy = CostModel::cost_score(6, Duration::from_millis(1));
        let slow_idle = CostModel::cost_score(0, Duration::from_millis(20));
        assert!(fast_busy < slow_idle);
        // No tail signal degrades to the outstanding count.
        assert!(
            CostModel::cost_score(2, Duration::from_nanos(1))
                < CostModel::cost_score(3, Duration::from_nanos(1))
        );
    }

    #[test]
    fn colocated_large_payloads_travel_as_refs() {
        let m = CostModel::new();
        let big = m.inline_threshold * 4;
        assert_eq!(m.predicted_transfer_bytes(big, true), DATA_REF_WIRE_BYTES);
        assert_eq!(m.predicted_transfer_bytes(big, false), big);
        // Small payloads always travel inline.
        assert_eq!(m.predicted_transfer_bytes(100, true), 100);
        assert!(m.transfer_nanos(big) > m.transfer_nanos(DATA_REF_WIRE_BYTES));
    }
}
