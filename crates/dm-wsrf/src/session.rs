//! Session management — one of the "variety of additional services to
//! facilitate the entire data mining process … for data translation,
//! visualisation and session management" (§5.4 conclusion).
//!
//! A [`SessionManager`] issues opaque session ids and stores typed
//! attributes per session with a time-to-live, so a user's interactive
//! sequence of Web Service calls (select classifier → fetch options →
//! classify → refine) can carry state across invocations without the
//! client resending it.

use crate::error::{Result, WsError};
use crate::soap::SoapValue;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A live session's state.
#[derive(Debug, Clone)]
struct Session {
    attributes: HashMap<String, SoapValue>,
    last_touched: Instant,
}

/// Issues and tracks sessions.
#[derive(Debug)]
pub struct SessionManager {
    sessions: Mutex<HashMap<String, Session>>,
    ttl: Duration,
    counter: Mutex<u64>,
}

impl SessionManager {
    /// Create with the given idle time-to-live.
    pub fn new(ttl: Duration) -> SessionManager {
        SessionManager {
            sessions: Mutex::new(HashMap::new()),
            ttl,
            counter: Mutex::new(0),
        }
    }

    /// Open a new session, returning its id.
    pub fn create(&self) -> String {
        let mut counter = self.counter.lock();
        *counter += 1;
        let id = format!("session-{:08x}-{:04x}", *counter, std::process::id() as u16);
        self.sessions.lock().insert(
            id.clone(),
            Session {
                attributes: HashMap::new(),
                last_touched: Instant::now(),
            },
        );
        id
    }

    fn with_session<R>(&self, id: &str, f: impl FnOnce(&mut Session) -> R) -> Result<R> {
        let mut sessions = self.sessions.lock();
        let session = sessions
            .get_mut(id)
            .ok_or_else(|| WsError::NotFound(format!("session {id:?}")))?;
        if session.last_touched.elapsed() > self.ttl {
            sessions.remove(id);
            return Err(WsError::NotFound(format!("session {id:?} (expired)")));
        }
        session.last_touched = Instant::now();
        Ok(f(session))
    }

    /// Store an attribute in a session.
    pub fn put(&self, id: &str, key: &str, value: SoapValue) -> Result<()> {
        self.with_session(id, |s| {
            s.attributes.insert(key.to_string(), value);
        })
    }

    /// Fetch an attribute (None if unset).
    pub fn get(&self, id: &str, key: &str) -> Result<Option<SoapValue>> {
        self.with_session(id, |s| s.attributes.get(key).cloned())
    }

    /// Remove an attribute; reports whether it existed.
    pub fn remove(&self, id: &str, key: &str) -> Result<bool> {
        self.with_session(id, |s| s.attributes.remove(key).is_some())
    }

    /// Attribute names of a session, sorted.
    pub fn keys(&self, id: &str) -> Result<Vec<String>> {
        self.with_session(id, |s| {
            let mut keys: Vec<String> = s.attributes.keys().cloned().collect();
            keys.sort();
            keys
        })
    }

    /// Close a session; reports whether it existed.
    pub fn close(&self, id: &str) -> bool {
        self.sessions.lock().remove(id).is_some()
    }

    /// Drop every expired session; returns how many were evicted.
    pub fn sweep(&self) -> usize {
        let mut sessions = self.sessions.lock();
        let before = sessions.len();
        sessions.retain(|_, s| s.last_touched.elapsed() <= self.ttl);
        before - sessions.len()
    }

    /// Number of live (possibly expired-but-unswept) sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// `true` if no sessions are tracked.
    pub fn is_empty(&self) -> bool {
        self.sessions.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> SessionManager {
        SessionManager::new(Duration::from_secs(60))
    }

    #[test]
    fn create_put_get_roundtrip() {
        let m = manager();
        let id = m.create();
        m.put(&id, "classifier", SoapValue::Text("J48".into()))
            .unwrap();
        m.put(&id, "folds", SoapValue::Int(10)).unwrap();
        assert_eq!(
            m.get(&id, "classifier").unwrap(),
            Some(SoapValue::Text("J48".into()))
        );
        assert_eq!(m.get(&id, "missing").unwrap(), None);
        assert_eq!(
            m.keys(&id).unwrap(),
            vec!["classifier".to_string(), "folds".to_string()]
        );
    }

    #[test]
    fn sessions_are_isolated() {
        let m = manager();
        let a = m.create();
        let b = m.create();
        assert_ne!(a, b);
        m.put(&a, "x", SoapValue::Int(1)).unwrap();
        assert_eq!(m.get(&b, "x").unwrap(), None);
    }

    #[test]
    fn close_and_unknown() {
        let m = manager();
        let id = m.create();
        assert!(m.close(&id));
        assert!(!m.close(&id));
        assert!(matches!(m.get(&id, "x"), Err(WsError::NotFound(_))));
        assert!(matches!(
            m.put("bogus", "x", SoapValue::Null),
            Err(WsError::NotFound(_))
        ));
    }

    #[test]
    fn remove_attribute() {
        let m = manager();
        let id = m.create();
        m.put(&id, "x", SoapValue::Int(1)).unwrap();
        assert!(m.remove(&id, "x").unwrap());
        assert!(!m.remove(&id, "x").unwrap());
    }

    #[test]
    fn expiry_and_sweep() {
        let m = SessionManager::new(Duration::from_millis(1));
        let id = m.create();
        std::thread::sleep(Duration::from_millis(5));
        assert!(matches!(m.get(&id, "x"), Err(WsError::NotFound(_))));
        let id2 = m.create();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(m.sweep(), 1);
        let _ = id2;
        assert!(m.is_empty());
    }

    #[test]
    fn touch_extends_lifetime() {
        let m = SessionManager::new(Duration::from_millis(50));
        let id = m.create();
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(20));
            m.put(&id, "keepalive", SoapValue::Null).unwrap(); // touches
        }
        assert!(m.get(&id, "keepalive").unwrap().is_some());
    }
}
