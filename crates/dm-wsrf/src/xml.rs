//! A minimal XML element tree with a writer and a non-validating
//! parser — enough for SOAP envelopes, WSDL documents, and the workflow
//! engine's taskgraph/DAX exports. Supports elements, attributes,
//! character data with the five standard entities, comments, processing
//! instructions (skipped), CDATA, and self-closing tags. No DTDs, no
//! namespace resolution (prefixes travel as part of the name).

use crate::error::{Result, WsError};

/// An XML element: name, attributes, child elements, and text content.
///
/// Mixed content is simplified: all character data of an element is
/// concatenated into `text`, which is sufficient for the documents this
/// toolkit exchanges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    /// Tag name (possibly prefixed, e.g. `soap:Envelope`).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlElement>,
    /// Concatenated character data.
    pub text: String,
}

impl XmlElement {
    /// Create an element with no attributes or children.
    pub fn new<N: Into<String>>(name: N) -> XmlElement {
        XmlElement {
            name: name.into(),
            ..XmlElement::default()
        }
    }

    /// Builder: add an attribute.
    pub fn attr<K: Into<String>, V: Into<String>>(mut self, key: K, value: V) -> XmlElement {
        self.attributes.push((key.into(), value.into()));
        self
    }

    /// Builder: add a child element.
    pub fn child(mut self, child: XmlElement) -> XmlElement {
        self.children.push(child);
        self
    }

    /// Builder: set text content.
    pub fn with_text<T: Into<String>>(mut self, text: T) -> XmlElement {
        self.text = text.into();
        self
    }

    /// Attribute lookup.
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First child with the given name (ignoring any namespace prefix).
    pub fn find(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| local_name(&c.name) == name)
    }

    /// All children with the given name (ignoring prefixes).
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> + 'a {
        self.children
            .iter()
            .filter(move |c| local_name(&c.name) == name)
    }

    /// Serialise to a compact XML string (no declaration).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    /// Serialise with two-space indentation and a trailing newline.
    pub fn to_pretty_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        if pretty && depth > 0 {
            out.push('\n');
            push_indent(out, depth);
        }
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out);
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        escape_into(&self.text, out);
        for c in &self.children {
            c.write(out, depth + 1, pretty);
        }
        if pretty && !self.children.is_empty() {
            out.push('\n');
            push_indent(out, depth);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Strip a namespace prefix: `soap:Body` → `Body`.
pub fn local_name(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

/// Escape the five standard XML entities.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

/// Escape into an existing buffer. Clean runs (the overwhelmingly
/// common case for dataset payloads) are appended in one `push_str`
/// instead of char by char.
pub fn escape_into(s: &str, out: &mut String) {
    let mut rest = s;
    while let Some(i) = rest.find(['&', '<', '>', '"', '\'']) {
        out.push_str(&rest[..i]);
        match rest.as_bytes()[i] {
            b'&' => out.push_str("&amp;"),
            b'<' => out.push_str("&lt;"),
            b'>' => out.push_str("&gt;"),
            b'"' => out.push_str("&quot;"),
            _ => out.push_str("&apos;"),
        }
        rest = &rest[i + 1..];
    }
    out.push_str(rest);
}

/// Length of [`escape`]'s output without allocating it — used by the
/// exact wire-size accounting in [`crate::soap`].
pub fn escaped_len(s: &str) -> usize {
    let mut extra = 0;
    for b in s.bytes() {
        extra += match b {
            b'&' => 4,         // &amp;
            b'"' | b'\'' => 5, // &quot; / &apos;
            b'<' | b'>' => 3,  // &lt; / &gt;
            _ => 0,
        };
    }
    s.len() + extra
}

/// Parse a document into its root element.
pub fn parse(input: &str) -> Result<XmlElement> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog();
    let root = p.element()?;
    p.skip_misc();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing content after the root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> WsError {
        WsError::Xml {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) {
        self.skip_misc();
    }

    /// Skip whitespace, comments, PIs and the XML declaration.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                if let Some(end) = find(self.bytes, self.pos, b"?>") {
                    self.pos = end + 2;
                    continue;
                }
                self.pos = self.bytes.len();
                return;
            }
            if self.starts_with("<!--") {
                if let Some(end) = find(self.bytes, self.pos, b"-->") {
                    self.pos = end + 3;
                    continue;
                }
                self.pos = self.bytes.len();
                return;
            }
            break;
        }
    }

    fn name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn element(&mut self) -> Result<XmlElement> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut el = XmlElement::new(name.clone());

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(el);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self
                        .peek()
                        .ok_or_else(|| self.err("unterminated attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("attribute value must be quoted"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1;
                    el.attributes.push((key, unescape(&raw)));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }

        // Content.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return Err(self.err("mismatched closing tag"));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in closing tag"));
                }
                self.pos += 1;
                // Trim only mixed-content elements: there the character
                // data is pretty-printing indentation. Childless
                // elements carry values whose whitespace is significant.
                if !el.children.is_empty() {
                    el.text = el.text.trim().to_string();
                }
                return Ok(el);
            }
            if self.starts_with("<!--") {
                let end = find(self.bytes, self.pos, b"-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.pos = end + 3;
                continue;
            }
            if self.starts_with("<![CDATA[") {
                let start = self.pos + 9;
                let end = find(self.bytes, start, b"]]>")
                    .ok_or_else(|| self.err("unterminated CDATA"))?;
                el.text
                    .push_str(&String::from_utf8_lossy(&self.bytes[start..end]));
                self.pos = end + 3;
                continue;
            }
            match self.peek() {
                Some(b'<') => {
                    el.children.push(self.element()?);
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]);
                    el.text.push_str(&unescape(&raw));
                }
                None => return Err(self.err("unterminated element content")),
            }
        }
    }
}

fn find(bytes: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    bytes[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Resolve the five standard entities (unknown entities pass through).
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let entity_end = rest.find(';');
        match entity_end {
            Some(end) if end <= 6 => {
                match &rest[..=end] {
                    "&amp;" => out.push('&'),
                    "&lt;" => out.push('<'),
                    "&gt;" => out.push('>'),
                    "&quot;" => out.push('"'),
                    "&apos;" => out.push('\''),
                    other => out.push_str(other),
                }
                rest = &rest[end + 1..];
            }
            _ => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_tree() {
        let doc = XmlElement::new("root")
            .attr("version", "1.0")
            .child(XmlElement::new("child").with_text("hello & <world>"))
            .child(XmlElement::new("empty"));
        let xml = doc.to_xml();
        let parsed = parse(&xml).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parses_declaration_and_comments() {
        let xml = "<?xml version=\"1.0\"?><!-- note --><a><!-- inner --><b/></a>";
        let doc = parse(xml).unwrap();
        assert_eq!(doc.name, "a");
        assert_eq!(doc.children.len(), 1);
    }

    #[test]
    fn attributes_unescaped() {
        let doc = parse("<a title=\"x &amp; y\"/>").unwrap();
        assert_eq!(doc.attribute("title"), Some("x & y"));
    }

    #[test]
    fn cdata_preserved() {
        let doc = parse("<a><![CDATA[1 < 2 && 3 > 2]]></a>").unwrap();
        assert_eq!(doc.text, "1 < 2 && 3 > 2");
    }

    #[test]
    fn namespace_prefixes_kept_but_findable() {
        let doc = parse("<soap:Envelope><soap:Body>x</soap:Body></soap:Envelope>").unwrap();
        assert_eq!(doc.name, "soap:Envelope");
        assert!(doc.find("Body").is_some());
        assert_eq!(local_name("soap:Body"), "Body");
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse("<a><b></a></b>").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn unterminated_rejected() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a attr=>").is_err());
        assert!(parse("<a attr=\"x>").is_err());
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(unescape("&copy; &amp;"), "&copy; &");
        assert_eq!(unescape("lone & ampersand"), "lone & ampersand");
    }

    #[test]
    fn pretty_print_indents() {
        let doc = XmlElement::new("a").child(XmlElement::new("b"));
        let pretty = doc.to_pretty_xml();
        assert!(pretty.contains("\n  <b/>"));
        let parsed = parse(&pretty).unwrap();
        assert_eq!(parsed.name, "a");
    }

    #[test]
    fn quoted_attribute_variants() {
        let doc = parse("<a x='single' y=\"double\"/>").unwrap();
        assert_eq!(doc.attribute("x"), Some("single"));
        assert_eq!(doc.attribute("y"), Some("double"));
    }

    #[test]
    fn escape_handles_runs_and_specials() {
        assert_eq!(
            escape("a&b<c>d\"e'f plain tail"),
            "a&amp;b&lt;c&gt;d&quot;e&apos;f plain tail"
        );
        assert_eq!(escape("no specials at all"), "no specials at all");
        assert_eq!(escape(""), "");
        assert_eq!(escape("&&&"), "&amp;&amp;&amp;");
    }

    #[test]
    fn escaped_len_matches_escape() {
        for s in ["", "plain", "a&b<c>d\"e'f", "&&&", "mixed & <tags> 'x'"] {
            assert_eq!(escaped_len(s), escape(s).len(), "{s:?}");
        }
    }

    #[test]
    fn find_all_filters_by_local_name() {
        let doc = parse("<r><w:item/><item/><other/></r>").unwrap();
        assert_eq!(doc.find_all("item").count(), 2);
    }
}
