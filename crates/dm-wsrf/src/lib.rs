//! # dm-wsrf — the Web Services substrate of `faehim-rs`
//!
//! The paper deploys its data mining algorithms as SOAP Web Services
//! described by WSDL, hosted in Tomcat 5.0 + Axis 1.2, published in a
//! jUDDI registry, and invoked over a 1 Gb/s LAN (§4.5, §4.6, §5.1).
//! None of that stack can be a dependency here, so this crate rebuilds
//! the behaviours the paper relies on:
//!
//! * [`soap`] — a SOAP 1.1-style envelope with typed values, encoded to
//!   and from real XML ([`xml`] is a minimal element-tree reader/writer);
//! * [`wsdl`] — WSDL-style service descriptions (port type, operations,
//!   message parts, endpoint address) with XML round-tripping, so the
//!   workflow engine can import "one tool per operation";
//! * [`transport`] — a simulated network of named hosts with a
//!   configurable latency + bandwidth cost model (calibrated by default
//!   to the paper's 1 Gb/s testbed), fault injection for the
//!   fault-tolerance experiment, and a virtual clock;
//! * [`container`] — an Axis-like service container that deploys
//!   [`container::WebService`] implementations and dispatches envelopes;
//! * [`registry`] — a UDDI-like publish/inquiry registry with per-
//!   service liveness (heartbeats, health-aware inquiry);
//! * [`fleet`] — the federated scale-out (E19): replicated services
//!   across simulated hosts, a gossiped registry with versioned
//!   heartbeats and tombstones, power-of-two-choices replica routing,
//!   and a queue-depth/p99 autoscaler on the virtual clock;
//! * [`costmodel`] — the frozen QoS telemetry snapshot (per-host
//!   latency quantiles, queue depth, shed rate, breaker state, and
//!   predicted transfer bytes) that the E20 composition planner prices
//!   `(step, replica)` pairings with;
//! * [`resilience`] — per-call deadlines and backoff retry budgets on
//!   the virtual clock, per-host circuit breakers, and a resilient
//!   calling front-end over [`transport`];
//! * [`lifecycle`] — the instance lifecycle machinery of §4.5: a
//!   disk-backed state store for the serialise-per-invocation policy
//!   and an in-memory harness that "maintain\[s\] an algorithm instance
//!   object in memory", whose comparison is experiment E4;
//! * [`monitor`] — per-invocation events for the service-monitoring
//!   requirement (§3, category 2);
//! * [`trace`] — causal spans on the virtual clock (workflow run →
//!   task attempt → SOAP call → transport leg → container dispatch →
//!   service handler), propagated across the simulated wire via a
//!   `traceparent` SOAP header;
//! * [`metrics`] — a counters/gauges/histograms registry that absorbs
//!   the monitor, wire, and cache counters, exported as Prometheus
//!   text or a JSON snapshot.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod container;
pub mod costmodel;
pub mod dataplane;
pub mod error;
pub mod fleet;
pub mod lifecycle;
pub mod metrics;
pub mod monitor;
pub mod registry;
pub mod resilience;
pub mod session;
pub mod soap;
pub mod trace;
pub mod transport;
pub mod wsdl;
pub mod xml;

pub use error::{Result, WsError};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::container::{ServiceContainer, ServiceFault, WebService};
    pub use crate::costmodel::{CostModel, HostCost};
    pub use crate::dataplane::{AttachmentStore, CacheStats, LruMap};
    pub use crate::error::{Result, WsError};
    pub use crate::fleet::{
        Autoscaler, AutoscalerConfig, Fleet, FleetConfig, GossipConfig, GossipNode, GossipRegistry,
        P2cRouter, ReplicaRecord, ScaleAction,
    };
    pub use crate::lifecycle::{InstanceStore, LifecycleManager, LifecyclePolicy};
    pub use crate::metrics::MetricsRegistry;
    pub use crate::registry::{ServiceEntry, UddiRegistry};
    pub use crate::resilience::{
        BreakerBoard, BreakerConfig, BreakerState, CircuitBreaker, ResiliencePolicy,
        ResilientCaller,
    };
    pub use crate::soap::{SoapCall, SoapValue};
    pub use crate::trace::{Span, SpanContext, SpanKind, SpanStatus, Tracer};
    pub use crate::transport::{Network, NetworkConfig};
    pub use crate::wsdl::{Operation, Part, WsdlDocument};
}
