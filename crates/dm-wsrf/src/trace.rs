//! Causal tracing: spans timed on the virtual clock, linked by
//! `trace_id`/`span_id`/`parent_span_id`, and propagated across the
//! simulated wire in a W3C-`traceparent`-style SOAP header.
//!
//! The paper's users watched their composed invocations through
//! Triana's workflow monitor; Discovery Net and GridMiner (PAPERS.md)
//! make the same point about end-to-end monitoring of composed mining
//! services. Flat logs ([`crate::monitor::MonitorLog`]) cannot answer
//! "which workflow task caused this dispatch?" — spans can: the
//! executor opens a span per task attempt, `WsTool`/client channels
//! open a SOAP-call span per host attempt, the transport records the
//! request and response legs, and the container records the dispatch
//! and handler work, each child carrying its parent's `span_id`.
//!
//! Propagation is two-layered: **within a thread**, a task-local stack
//! ([`push_current`]/[`current`]) carries the active span so deeper
//! layers need no plumbed-through arguments (workflow worker threads
//! call the whole stack from one thread, so this crosses every layer);
//! **across the wire**, [`SpanContext::to_traceparent`] rides in the
//! envelope header so the server-side dispatch span parents correctly
//! even though client and server share no stack.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What produced a span — one variant per layer of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole workflow enactment (the trace root).
    Workflow,
    /// One execution attempt of a workflow task.
    Task,
    /// One SOAP call attempt against one host (tool or typed client).
    SoapCall,
    /// One transport leg (request or response) across the simulated wire.
    TransportLeg,
    /// The container decoding and dispatching a call on the server side.
    Dispatch,
    /// Work inside a service implementation.
    Handler,
}

impl SpanKind {
    /// Stable lowercase name used in renderings and exports.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Workflow => "workflow",
            SpanKind::Task => "task",
            SpanKind::SoapCall => "soap-call",
            SpanKind::TransportLeg => "transport-leg",
            SpanKind::Dispatch => "dispatch",
            SpanKind::Handler => "handler",
        }
    }
}

/// How a span ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanStatus {
    /// The traced operation completed normally.
    Ok,
    /// The traced operation failed (message attached).
    Error(String),
}

/// The identity a span exports to its children: enough to parent a new
/// span locally or to reconstruct the link on the far side of the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Identifier shared by every span of one enactment.
    pub trace_id: u128,
    /// This span's identifier, unique within the tracer.
    pub span_id: u64,
}

impl SpanContext {
    /// Encode as a W3C-`traceparent`-style header value:
    /// `00-{trace_id:032x}-{span_id:016x}-01`.
    pub fn to_traceparent(self) -> String {
        format!("00-{:032x}-{:016x}-01", self.trace_id, self.span_id)
    }

    /// Decode a `traceparent` header value produced by
    /// [`SpanContext::to_traceparent`].
    pub fn from_traceparent(value: &str) -> Option<SpanContext> {
        let mut parts = value.split('-');
        if parts.next()? != "00" {
            return None;
        }
        let trace = parts.next()?;
        let span = parts.next()?;
        if trace.len() != 32 || span.len() != 16 || parts.next().is_none() {
            return None;
        }
        Some(SpanContext {
            trace_id: u128::from_str_radix(trace, 16).ok()?,
            span_id: u64::from_str_radix(span, 16).ok()?,
        })
    }
}

/// One finished span: identity, causal link, virtual-clock interval,
/// outcome, and free-form attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Identifier shared by every span of one enactment.
    pub trace_id: u128,
    /// This span's identifier.
    pub span_id: u64,
    /// The causing span, `None` for a trace root.
    pub parent_span_id: Option<u64>,
    /// Display name (task, operation, or leg name).
    pub name: String,
    /// Which layer produced the span.
    pub kind: SpanKind,
    /// Virtual-clock instant the span opened.
    pub start: Duration,
    /// Virtual-clock instant the span closed.
    pub end: Duration,
    /// How the traced operation ended.
    pub status: SpanStatus,
    /// Key/value annotations (host, attempt, byte counts, …).
    pub attributes: Vec<(String, String)>,
}

impl Span {
    /// Attribute lookup by key.
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Collects finished spans and allocates identifiers. The clock is
/// injected (the network wires in its virtual clock) so span intervals
/// line up with the transport's simulated time.
pub struct Tracer {
    clock: Arc<dyn Fn() -> Duration + Send + Sync>,
    next_id: AtomicU64,
    spans: Mutex<Vec<Span>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("spans", &self.spans.lock().len())
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// Create a tracer reading timestamps from `clock`.
    pub fn new(clock: Arc<dyn Fn() -> Duration + Send + Sync>) -> Tracer {
        Tracer {
            clock,
            next_id: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// A tracer on the real (monotonic-offset) clock — for tests and
    /// standalone use outside the simulated network.
    pub fn wall_clock() -> Tracer {
        let origin = std::time::Instant::now();
        Tracer::new(Arc::new(move || origin.elapsed()))
    }

    fn allocate_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The tracer's current clock reading.
    pub fn now(&self) -> Duration {
        (self.clock)()
    }

    /// Open a span. A `parent` of `None` starts a new trace (the span
    /// becomes a root); otherwise the span joins the parent's trace.
    pub fn start_span(
        self: &Arc<Self>,
        name: impl Into<String>,
        kind: SpanKind,
        parent: Option<SpanContext>,
    ) -> ActiveSpan {
        let span_id = self.allocate_id();
        let (trace_id, parent_span_id) = match parent {
            Some(ctx) => (ctx.trace_id, Some(ctx.span_id)),
            None => (u128::from(span_id) | (1u128 << 64), None),
        };
        ActiveSpan {
            tracer: Arc::clone(self),
            span: Some(Span {
                trace_id,
                span_id,
                parent_span_id,
                name: name.into(),
                kind,
                start: self.now(),
                end: Duration::ZERO,
                status: SpanStatus::Ok,
                attributes: Vec::new(),
            }),
        }
    }

    /// Snapshot of every finished span so far, in finish order.
    pub fn finished_spans(&self) -> Vec<Span> {
        self.spans.lock().clone()
    }

    /// Number of finished spans.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// `true` when no span has finished yet.
    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }

    /// Drop all finished spans (between experiment phases).
    pub fn clear(&self) {
        self.spans.lock().clear();
    }

    fn record(&self, span: Span) {
        self.spans.lock().push(span);
    }
}

/// A span that is still open. Finishes (and is recorded) on drop; the
/// end timestamp is read from the tracer's clock at that moment.
pub struct ActiveSpan {
    tracer: Arc<Tracer>,
    span: Option<Span>,
}

impl ActiveSpan {
    /// The context children parent under.
    pub fn ctx(&self) -> SpanContext {
        let span = self.span.as_ref().expect("span open until drop");
        SpanContext {
            trace_id: span.trace_id,
            span_id: span.span_id,
        }
    }

    /// Attach a key/value attribute.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        if let Some(span) = self.span.as_mut() {
            span.attributes.push((key.into(), value.into()));
        }
    }

    /// Mark the span failed with `message`.
    pub fn set_error(&mut self, message: impl Into<String>) {
        if let Some(span) = self.span.as_mut() {
            span.status = SpanStatus::Error(message.into());
        }
    }

    /// Make this span the thread's current span until the returned
    /// guard drops; [`child_span`] calls in deeper stack frames parent
    /// under it.
    pub fn make_current(&self) -> CurrentSpanGuard {
        push_current(&self.tracer, self.ctx())
    }

    /// Close the span now (drop does the same).
    pub fn finish(self) {}
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        if let Some(mut span) = self.span.take() {
            span.end = self.tracer.now();
            self.tracer.record(span);
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<(Arc<Tracer>, SpanContext)>> = const { RefCell::new(Vec::new()) };
}

/// Restores the previous current span when dropped.
#[must_use = "dropping the guard immediately pops the span"]
pub struct CurrentSpanGuard {
    _private: (),
}

impl Drop for CurrentSpanGuard {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Push `(tracer, ctx)` as the thread's current span; popped when the
/// guard drops.
pub fn push_current(tracer: &Arc<Tracer>, ctx: SpanContext) -> CurrentSpanGuard {
    CURRENT.with(|stack| stack.borrow_mut().push((Arc::clone(tracer), ctx)));
    CurrentSpanGuard { _private: () }
}

/// The thread's current span, if any layer above established one.
pub fn current() -> Option<(Arc<Tracer>, SpanContext)> {
    CURRENT.with(|stack| stack.borrow().last().map(|(t, ctx)| (Arc::clone(t), *ctx)))
}

/// Open a child of the thread's current span, or `None` when tracing is
/// not active on this call path. This is how leaf layers (service
/// handlers) participate without holding a tracer of their own.
pub fn child_span(name: impl Into<String>, kind: SpanKind) -> Option<ActiveSpan> {
    current().map(|(tracer, ctx)| tracer.start_span(name, kind, Some(ctx)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_clock() -> (Arc<AtomicU64>, Arc<Tracer>) {
        let nanos = Arc::new(AtomicU64::new(0));
        let src = Arc::clone(&nanos);
        let tracer = Arc::new(Tracer::new(Arc::new(move || {
            Duration::from_nanos(src.load(Ordering::Relaxed))
        })));
        (nanos, tracer)
    }

    #[test]
    fn spans_record_interval_status_and_attributes() {
        let (clock, tracer) = manual_clock();
        let mut span = tracer.start_span("work", SpanKind::Task, None);
        span.set_attr("attempt", "1");
        clock.store(5_000, Ordering::Relaxed);
        span.set_error("boom");
        drop(span);
        let spans = tracer.finished_spans();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.name, "work");
        assert_eq!(s.kind, SpanKind::Task);
        assert_eq!(s.start, Duration::ZERO);
        assert_eq!(s.end, Duration::from_nanos(5_000));
        assert_eq!(s.status, SpanStatus::Error("boom".into()));
        assert_eq!(s.attribute("attempt"), Some("1"));
        assert_eq!(s.parent_span_id, None);
    }

    #[test]
    fn children_share_the_trace_and_link_to_parents() {
        let (_, tracer) = manual_clock();
        let root = tracer.start_span("root", SpanKind::Workflow, None);
        let child = tracer.start_span("child", SpanKind::Task, Some(root.ctx()));
        let grandchild = tracer.start_span("leaf", SpanKind::SoapCall, Some(child.ctx()));
        let (root_ctx, child_ctx) = (root.ctx(), child.ctx());
        drop(grandchild);
        drop(child);
        drop(root);
        let spans = tracer.finished_spans();
        assert!(spans.iter().all(|s| s.trace_id == root_ctx.trace_id));
        let leaf = spans.iter().find(|s| s.name == "leaf").unwrap();
        assert_eq!(leaf.parent_span_id, Some(child_ctx.span_id));
        let child = spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(child.parent_span_id, Some(root_ctx.span_id));
    }

    #[test]
    fn separate_roots_get_separate_traces() {
        let (_, tracer) = manual_clock();
        let a = tracer.start_span("a", SpanKind::Workflow, None).ctx();
        let b = tracer.start_span("b", SpanKind::Workflow, None).ctx();
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.span_id, b.span_id);
    }

    #[test]
    fn traceparent_roundtrip_and_rejection() {
        let ctx = SpanContext {
            trace_id: 0xdead_beef_0123,
            span_id: 42,
        };
        let header = ctx.to_traceparent();
        assert_eq!(
            header,
            "00-00000000000000000000deadbeef0123-000000000000002a-01"
        );
        assert_eq!(SpanContext::from_traceparent(&header), Some(ctx));
        for bad in [
            "",
            "01-00000000000000000000000000000001-0000000000000001-01",
            "00-short-0000000000000001-01",
            "00-00000000000000000000000000000001-short-01",
            "00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-0000000000000001-01",
            "00-00000000000000000000000000000001-0000000000000001",
        ] {
            assert_eq!(SpanContext::from_traceparent(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn thread_local_current_nests_and_restores() {
        let (_, tracer) = manual_clock();
        assert!(current().is_none());
        assert!(child_span("orphan", SpanKind::Handler).is_none());
        let root = tracer.start_span("root", SpanKind::Workflow, None);
        {
            let _outer = root.make_current();
            let inner = child_span("inner", SpanKind::Task).unwrap();
            {
                let _inner_guard = inner.make_current();
                assert_eq!(current().unwrap().1, inner.ctx());
            }
            assert_eq!(current().unwrap().1, root.ctx());
        }
        assert!(current().is_none());
    }

    #[test]
    fn current_does_not_leak_across_threads() {
        let (_, tracer) = manual_clock();
        let root = tracer.start_span("root", SpanKind::Workflow, None);
        let _guard = root.make_current();
        std::thread::spawn(|| assert!(current().is_none()))
            .join()
            .unwrap();
    }

    #[test]
    fn clear_and_len() {
        let tracer = Arc::new(Tracer::wall_clock());
        assert!(tracer.is_empty());
        tracer.start_span("x", SpanKind::Task, None).finish();
        assert_eq!(tracer.len(), 1);
        tracer.clear();
        assert!(tracer.is_empty());
    }
}
