//! The service container — the Tomcat/Axis equivalent: services are
//! deployed by name and envelopes are dispatched to them, with every
//! invocation recorded by the monitor.

use crate::dataplane::AttachmentStore;
use crate::error::{Result, WsError};
use crate::metrics::Histogram;
use crate::monitor::{InvocationEvent, MonitorLog, Outcome};
use crate::soap::{SoapCall, SoapResponse, SoapValue};
use crate::trace::{SpanKind, Tracer};
use crate::wsdl::WsdlDocument;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A fault raised by a service implementation; mapped to a SOAP fault
/// on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceFault {
    /// Fault code (`"Client"` for caller errors, `"Server"` otherwise).
    pub code: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl ServiceFault {
    /// A caller-error fault.
    pub fn client<M: Into<String>>(message: M) -> ServiceFault {
        ServiceFault {
            code: "Client",
            message: message.into(),
        }
    }

    /// A service-error fault.
    pub fn server<M: Into<String>>(message: M) -> ServiceFault {
        ServiceFault {
            code: "Server",
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServiceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

/// A deployable Web Service. Implementations use interior mutability
/// for any state (the container shares them across threads).
pub trait WebService: Send + Sync {
    /// Deployment name (also the WSDL service name).
    fn name(&self) -> &str;

    /// The service's WSDL description.
    fn wsdl(&self) -> WsdlDocument;

    /// Invoke an operation with named arguments.
    fn invoke(
        &self,
        operation: &str,
        args: &[(String, SoapValue)],
    ) -> std::result::Result<SoapValue, ServiceFault>;
}

/// Default per-host attachment store bound: 64 MiB, comfortably more
/// than the paper's datasets while still exercising eviction in tests.
pub const DEFAULT_ATTACHMENT_CAPACITY: usize = 64 * 1024 * 1024;

/// Capacity model of one simulated host: a Tomcat/Axis-like connector
/// with a fixed worker pool, a per-request service time charged to the
/// virtual clock, and a bounded FIFO accept queue. Requests arriving
/// while all workers are busy wait in the queue; requests arriving
/// while the queue is full are shed with a `ServerBusy` SOAP fault.
///
/// Hosts have no capacity model by default (legacy behaviour: infinite
/// free concurrency), so nothing changes off the overload path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityConfig {
    /// Parallel worker threads (clamped to at least 1 on install).
    pub workers: usize,
    /// Accept-queue bound beyond the workers themselves; `None` models
    /// an unbounded queue (the pre-admission-control pathology: no
    /// request is ever shed, latency grows without limit under
    /// sustained overload).
    pub queue_limit: Option<usize>,
    /// Virtual time one worker spends serving one request.
    pub service_time: Duration,
}

impl Default for CapacityConfig {
    fn default() -> CapacityConfig {
        CapacityConfig {
            workers: 4,
            queue_limit: Some(8),
            service_time: Duration::from_millis(2),
        }
    }
}

/// The connector's admission decision for one request arriving at a
/// given virtual instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted: the request waits `queue_wait` for a worker, then is
    /// served for `service_time`; both belong on the virtual clock.
    Admitted {
        /// Virtual time spent queued before a worker frees up.
        queue_wait: Duration,
        /// Virtual time the worker spends on the request.
        service_time: Duration,
        /// Requests in the system (serving + queued) after admission.
        depth: usize,
    },
    /// The accept queue was full; the request is shed with a
    /// `ServerBusy` fault and never reaches a service.
    Shed {
        /// Requests in the system at the (refused) arrival.
        in_system: usize,
    },
}

/// Snapshot of one host's admission-control counters.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadStats {
    /// Requests admitted (served immediately or queued).
    pub admitted: u64,
    /// Admitted requests that had to wait for a worker.
    pub queued: u64,
    /// Requests refused with `ServerBusy`.
    pub shed: u64,
    /// Sum of all queue waits (virtual time).
    pub total_queue_wait: Duration,
    /// Requests in the system (serving + queued) at the snapshot's
    /// virtual instant.
    pub in_system: usize,
    /// Distribution of per-request queue waits, in seconds.
    pub queue_waits: Histogram,
}

/// Virtual-clock queueing state behind a capacity model: per-worker
/// busy-until instants plus the completion times of every admitted
/// request still in the system.
#[derive(Debug)]
struct CapacityState {
    config: CapacityConfig,
    /// Virtual instant each worker frees up.
    worker_free: Vec<Duration>,
    /// Virtual completion instants of requests currently in the system.
    in_system: Vec<Duration>,
    admitted: u64,
    queued: u64,
    shed: u64,
    total_queue_wait: Duration,
    queue_waits: Histogram,
}

impl CapacityState {
    fn new(config: CapacityConfig) -> CapacityState {
        let workers = config.workers.max(1);
        CapacityState {
            config: CapacityConfig { workers, ..config },
            worker_free: vec![Duration::ZERO; workers],
            in_system: Vec::new(),
            admitted: 0,
            queued: 0,
            shed: 0,
            total_queue_wait: Duration::ZERO,
            queue_waits: Histogram::new(),
        }
    }

    /// Decide admission for a request arriving at virtual instant
    /// `now`, updating the queueing state. FIFO discipline: arrivals
    /// are assigned to whichever worker frees up earliest.
    fn admit(&mut self, now: Duration) -> Admission {
        self.in_system.retain(|&end| end > now);
        if let Some(limit) = self.config.queue_limit {
            if self.in_system.len() >= self.config.workers + limit {
                self.shed += 1;
                return Admission::Shed {
                    in_system: self.in_system.len(),
                };
            }
        }
        let slot = self
            .worker_free
            .iter()
            .enumerate()
            .min_by_key(|&(_, free)| *free)
            .map(|(i, _)| i)
            .expect("capacity model has at least one worker");
        let start = self.worker_free[slot].max(now);
        let queue_wait = start - now;
        let end = start + self.config.service_time;
        self.worker_free[slot] = end;
        self.in_system.push(end);
        self.admitted += 1;
        if !queue_wait.is_zero() {
            self.queued += 1;
        }
        self.total_queue_wait += queue_wait;
        self.queue_waits.observe(queue_wait.as_secs_f64());
        Admission::Admitted {
            queue_wait,
            service_time: self.config.service_time,
            depth: self.in_system.len(),
        }
    }
}

/// Materialised arguments plus what the resolution saved on the wire.
struct ResolvedArgs {
    args: Vec<(String, SoapValue)>,
    ref_hits: usize,
    bytes_saved: usize,
}

/// An Axis-like container holding deployed services on one host.
pub struct ServiceContainer {
    host: String,
    services: RwLock<HashMap<String, Arc<dyn WebService>>>,
    monitor: Arc<MonitorLog>,
    attachments: Arc<AttachmentStore>,
    tracer: RwLock<Option<Arc<Tracer>>>,
    capacity: Mutex<Option<CapacityState>>,
}

impl ServiceContainer {
    /// Create a container for `host`.
    pub fn new<H: Into<String>>(host: H) -> ServiceContainer {
        ServiceContainer {
            host: host.into(),
            services: RwLock::new(HashMap::new()),
            monitor: Arc::new(MonitorLog::new()),
            attachments: Arc::new(AttachmentStore::new(DEFAULT_ATTACHMENT_CAPACITY)),
            tracer: RwLock::new(None),
            capacity: Mutex::new(None),
        }
    }

    /// Install (or, with `None`, remove) this host's capacity model.
    /// Installing resets all queueing state and load counters.
    pub fn set_capacity(&self, config: Option<CapacityConfig>) {
        *self.capacity.lock() = config.map(CapacityState::new);
    }

    /// The installed capacity model, if any (with `workers` clamped as
    /// stored).
    pub fn capacity(&self) -> Option<CapacityConfig> {
        self.capacity.lock().as_ref().map(|s| s.config)
    }

    /// Admission decision for a request arriving at virtual instant
    /// `now`. `None` means no capacity model is installed and the
    /// request proceeds with the legacy free-concurrency behaviour.
    pub fn admit(&self, now: Duration) -> Option<Admission> {
        self.capacity.lock().as_mut().map(|s| s.admit(now))
    }

    /// Requests in the system (serving + queued) at virtual instant
    /// `now`; 0 without a capacity model. This is the load signal the
    /// registry's least-outstanding ranking consumes.
    pub fn in_system(&self, now: Duration) -> usize {
        match self.capacity.lock().as_mut() {
            Some(state) => {
                state.in_system.retain(|&end| end > now);
                state.in_system.len()
            }
            None => 0,
        }
    }

    /// Snapshot of the host's load counters; `None` without a capacity
    /// model. `in_system` is evaluated at `now` on the virtual clock.
    pub fn load_stats(&self, now: Duration) -> Option<LoadStats> {
        self.capacity.lock().as_mut().map(|state| {
            state.in_system.retain(|&end| end > now);
            LoadStats {
                admitted: state.admitted,
                queued: state.queued,
                shed: state.shed,
                total_queue_wait: state.total_queue_wait,
                in_system: state.in_system.len(),
                queue_waits: state.queue_waits.clone(),
            }
        })
    }

    /// Install (or remove) the tracer this container records dispatch
    /// spans into. `Network::enable_tracing` wires this for every host.
    pub fn set_tracer(&self, tracer: Option<Arc<Tracer>>) {
        *self.tracer.write() = tracer;
    }

    /// The host name this container runs on.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The container's invocation monitor.
    pub fn monitor(&self) -> Arc<MonitorLog> {
        Arc::clone(&self.monitor)
    }

    /// The host-side attachment store: payloads this host has already
    /// received or served, addressable by content hash.
    pub fn attachments(&self) -> Arc<AttachmentStore> {
        Arc::clone(&self.attachments)
    }

    /// Deploy a service (replacing any prior deployment of the name).
    pub fn deploy(&self, service: Arc<dyn WebService>) {
        self.services
            .write()
            .insert(service.name().to_string(), service);
    }

    /// Undeploy by name; returns whether a service was removed.
    pub fn undeploy(&self, name: &str) -> bool {
        self.services.write().remove(name).is_some()
    }

    /// Names of all deployed services, sorted.
    pub fn deployed(&self) -> Vec<String> {
        let mut names: Vec<String> = self.services.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// The WSDL of a deployed service, with the endpoint rewritten to
    /// this host (as Axis publishes it).
    pub fn wsdl_of(&self, name: &str) -> Result<WsdlDocument> {
        let service = self
            .services
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| WsError::NotDeployed(name.to_string()))?;
        let mut wsdl = service.wsdl();
        wsdl.endpoint = format!("http://{}:8080/axis/{}", self.host, name);
        Ok(wsdl)
    }

    /// Resolve any `DataRef` arguments against this host's attachment
    /// store. Returns the materialised arguments (or the originals,
    /// untouched, when no references are present) plus how many
    /// references resolved and the wire bytes they saved. An unknown
    /// reference is the caller's error — the sender substituted a
    /// handle this host never held.
    fn resolve_refs(
        &self,
        args: &[(String, SoapValue)],
    ) -> std::result::Result<ResolvedArgs, ServiceFault> {
        let mut resolved = ResolvedArgs {
            args: Vec::with_capacity(args.len()),
            ref_hits: 0,
            bytes_saved: 0,
        };
        for (name, value) in args {
            if let Some((hash, _, _)) = value.as_data_ref() {
                let payload = self.attachments.get(hash).ok_or_else(|| {
                    ServiceFault::client(format!(
                        "unknown dataRef {hash:032x} (not in {}'s attachment store)",
                        self.host
                    ))
                })?;
                let materialised = payload.to_value();
                resolved.ref_hits += 1;
                // Exact envelope bytes the handle kept off the wire
                // (the element name cancels out of the difference).
                resolved.bytes_saved += materialised
                    .serialized_size("p")
                    .saturating_sub(value.serialized_size("p"));
                resolved.args.push((name.clone(), materialised));
            } else {
                resolved.args.push((name.clone(), value.clone()));
            }
        }
        Ok(resolved)
    }

    /// Dispatch a decoded call, recording the invocation. `DataRef`
    /// arguments are materialised from the attachment store before the
    /// service sees them — services never know whether a payload
    /// arrived inline or by reference.
    pub fn dispatch(&self, call: &SoapCall) -> SoapResponse {
        let service = self.services.read().get(&call.service).cloned();
        let start = Instant::now();
        // The dispatch span parents under the envelope's traceparent
        // header (the transport's request leg) — this is the causal
        // link across the simulated wire. Making it current lets
        // service handlers open child spans of their own.
        let mut dispatch_span = self.tracer.read().clone().map(|t| {
            let mut span = t.start_span(
                format!("{}.{} dispatch", call.service, call.operation),
                SpanKind::Dispatch,
                call.trace_parent,
            );
            span.set_attr("host", self.host.clone());
            span
        });
        let _current = dispatch_span.as_ref().map(|s| s.make_current());
        let has_refs = call.args.iter().any(|(_, v)| v.as_data_ref().is_some());
        let mut ref_hits = 0;
        let mut bytes_saved = 0;
        let response = match service {
            None => SoapResponse::Fault {
                code: "Client".into(),
                message: format!(
                    "service {:?} is not deployed on {}",
                    call.service, self.host
                ),
            },
            Some(s) => {
                let invoked = if has_refs {
                    match self.resolve_refs(&call.args) {
                        Ok(resolved) => {
                            ref_hits = resolved.ref_hits;
                            bytes_saved = resolved.bytes_saved;
                            s.invoke(&call.operation, &resolved.args)
                        }
                        Err(fault) => Err(fault),
                    }
                } else {
                    s.invoke(&call.operation, &call.args)
                };
                match invoked {
                    Ok(v) => SoapResponse::Value(v),
                    Err(fault) => SoapResponse::Fault {
                        code: fault.code.into(),
                        message: fault.message,
                    },
                }
            }
        };
        if let (Some(span), SoapResponse::Fault { code, message }) =
            (dispatch_span.as_mut(), &response)
        {
            span.set_error(format!("[{code}] {message}"));
        }
        let outcome = match &response {
            SoapResponse::Value(_) => Outcome::Ok,
            SoapResponse::Fault { code, .. } => Outcome::Fault(code.clone()),
        };
        self.monitor.record(InvocationEvent {
            host: self.host.clone(),
            service: call.service.clone(),
            operation: call.operation.clone(),
            duration: start.elapsed(),
            bytes_in: call.args.iter().map(|(_, v)| v.wire_size()).sum(),
            bytes_out: match &response {
                SoapResponse::Value(v) => v.wire_size(),
                SoapResponse::Fault { .. } => 64,
            },
            bytes_saved,
            ref_hits,
            outcome,
        });
        response
    }

    /// Dispatch raw envelope XML — the full wire path: decode request,
    /// dispatch, encode response.
    pub fn dispatch_envelope(&self, request_xml: &str) -> String {
        match SoapCall::from_envelope(request_xml) {
            Ok(call) => self.dispatch(&call).to_envelope(&call.operation),
            Err(e) => SoapResponse::Fault {
                code: "Client".into(),
                message: e.to_string(),
            }
            .to_envelope("unknown"),
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// An echo service used by substrate tests.
    pub struct EchoService;

    impl WebService for EchoService {
        fn name(&self) -> &str {
            "Echo"
        }

        fn wsdl(&self) -> WsdlDocument {
            use crate::wsdl::{Operation, Part};
            WsdlDocument::new("Echo", "http://localhost/Echo")
                .operation(Operation::new(
                    "echo",
                    vec![Part::new("message", "string")],
                    Part::new("return", "string"),
                ))
                .operation(Operation::new(
                    "fail",
                    vec![],
                    Part::new("return", "string"),
                ))
        }

        fn invoke(
            &self,
            operation: &str,
            args: &[(String, SoapValue)],
        ) -> std::result::Result<SoapValue, ServiceFault> {
            match operation {
                "echo" => {
                    let msg = args
                        .iter()
                        .find(|(n, _)| n == "message")
                        .map(|(_, v)| v.clone())
                        .ok_or_else(|| ServiceFault::client("missing message"))?;
                    Ok(msg)
                }
                "fail" => Err(ServiceFault::server("deliberate failure")),
                other => Err(ServiceFault::client(format!("no operation {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::EchoService;
    use super::*;

    fn container() -> ServiceContainer {
        let c = ServiceContainer::new("host-a");
        c.deploy(Arc::new(EchoService));
        c
    }

    #[test]
    fn deploy_and_list() {
        let c = container();
        assert_eq!(c.deployed(), vec!["Echo".to_string()]);
        assert!(c.undeploy("Echo"));
        assert!(!c.undeploy("Echo"));
        assert!(c.deployed().is_empty());
    }

    #[test]
    fn dispatch_success() {
        let c = container();
        let call = SoapCall::new("Echo", "echo").arg("message", SoapValue::Text("hi".into()));
        match c.dispatch(&call) {
            SoapResponse::Value(SoapValue::Text(s)) => assert_eq!(s, "hi"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dispatch_fault_paths() {
        let c = container();
        let fail = c.dispatch(&SoapCall::new("Echo", "fail"));
        assert!(matches!(fail, SoapResponse::Fault { code, .. } if code == "Server"));
        let missing = c.dispatch(&SoapCall::new("Nope", "x"));
        assert!(matches!(missing, SoapResponse::Fault { code, .. } if code == "Client"));
        let badop = c.dispatch(&SoapCall::new("Echo", "bogus"));
        assert!(matches!(badop, SoapResponse::Fault { code, .. } if code == "Client"));
    }

    #[test]
    fn envelope_wire_path() {
        let c = container();
        let call = SoapCall::new("Echo", "echo").arg("message", SoapValue::Int(7));
        let response_xml = c.dispatch_envelope(&call.to_envelope());
        let response = SoapResponse::from_envelope(&response_xml).unwrap();
        assert_eq!(response.into_result().unwrap(), SoapValue::Int(7));
    }

    #[test]
    fn garbage_envelope_becomes_client_fault() {
        let c = container();
        let response_xml = c.dispatch_envelope("this is not xml");
        let response = SoapResponse::from_envelope(&response_xml).unwrap();
        assert!(matches!(response, SoapResponse::Fault { code, .. } if code == "Client"));
    }

    #[test]
    fn monitor_records_invocations() {
        let c = container();
        c.dispatch(&SoapCall::new("Echo", "echo").arg("message", SoapValue::Null));
        c.dispatch(&SoapCall::new("Echo", "fail"));
        let events = c.monitor().snapshot();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0].outcome, Outcome::Ok));
        assert!(matches!(events[1].outcome, Outcome::Fault(_)));
        assert_eq!(events[0].service, "Echo");
    }

    #[test]
    fn data_ref_args_resolve_from_attachment_store() {
        use crate::dataplane::{content_ref, Payload};
        let c = container();
        let payload = SoapValue::Text("x".repeat(5000));
        let cr = content_ref(&payload).unwrap();
        c.attachments()
            .insert(cr.hash, Payload::from_value(&payload).unwrap());
        let call = SoapCall::new("Echo", "echo").arg(
            "message",
            SoapValue::DataRef {
                hash: cr.hash,
                len: cr.len,
                kind: cr.kind,
            },
        );
        match c.dispatch(&call) {
            SoapResponse::Value(v) => assert_eq!(v, payload),
            other => panic!("expected materialised payload, got {other:?}"),
        }
        let event = c.monitor().snapshot().pop().unwrap();
        assert_eq!(event.ref_hits, 1);
        assert!(event.bytes_saved > 4000, "saved {}", event.bytes_saved);
    }

    #[test]
    fn unknown_data_ref_is_client_fault() {
        let c = container();
        let call = SoapCall::new("Echo", "echo").arg(
            "message",
            SoapValue::DataRef {
                hash: 0x1234,
                len: 10,
                kind: crate::soap::RefKind::Text,
            },
        );
        match c.dispatch(&call) {
            SoapResponse::Fault { code, message } => {
                assert_eq!(code, "Client");
                assert!(message.contains("dataRef"), "{message}");
            }
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn wsdl_endpoint_rewritten_to_host() {
        let c = container();
        let wsdl = c.wsdl_of("Echo").unwrap();
        assert_eq!(wsdl.endpoint, "http://host-a:8080/axis/Echo");
        assert!(c.wsdl_of("Nope").is_err());
    }

    #[test]
    fn capacity_disabled_by_default() {
        let c = container();
        assert_eq!(c.capacity(), None);
        assert_eq!(c.admit(Duration::ZERO), None);
        assert_eq!(c.load_stats(Duration::ZERO), None);
    }

    #[test]
    fn admission_queues_then_sheds() {
        let c = container();
        c.set_capacity(Some(CapacityConfig {
            workers: 2,
            queue_limit: Some(2),
            service_time: Duration::from_millis(10),
        }));
        let now = Duration::ZERO;
        // Two workers: first two arrivals start immediately.
        for _ in 0..2 {
            match c.admit(now).unwrap() {
                Admission::Admitted { queue_wait, .. } => assert_eq!(queue_wait, Duration::ZERO),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Next two wait one and two service times for a worker to free.
        for expected_ms in [10, 10] {
            match c.admit(now).unwrap() {
                Admission::Admitted { queue_wait, .. } => {
                    assert!(
                        queue_wait >= Duration::from_millis(expected_ms),
                        "wanted >= {expected_ms} ms wait, got {queue_wait:?}"
                    );
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // workers + queue_limit = 4 in system: the fifth is shed.
        assert_eq!(c.admit(now).unwrap(), Admission::Shed { in_system: 4 });

        let stats = c.load_stats(now).unwrap();
        assert_eq!(stats.admitted, 4);
        assert_eq!(stats.queued, 2);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.in_system, 4);
        assert_eq!(stats.queue_waits.count, 4);
    }

    #[test]
    fn capacity_drains_on_the_virtual_clock() {
        let c = container();
        c.set_capacity(Some(CapacityConfig {
            workers: 1,
            queue_limit: Some(0),
            service_time: Duration::from_millis(5),
        }));
        assert!(matches!(
            c.admit(Duration::ZERO).unwrap(),
            Admission::Admitted { .. }
        ));
        // The single worker is busy until t = 5 ms; no queue slots.
        assert!(matches!(
            c.admit(Duration::from_millis(1)).unwrap(),
            Admission::Shed { .. }
        ));
        // Once the clock passes the busy period the host accepts again.
        assert!(matches!(
            c.admit(Duration::from_millis(6)).unwrap(),
            Admission::Admitted { queue_wait, .. } if queue_wait == Duration::ZERO
        ));
        assert_eq!(c.in_system(Duration::from_millis(20)), 0);
    }

    #[test]
    fn unbounded_queue_never_sheds_but_waits_grow() {
        let c = container();
        c.set_capacity(Some(CapacityConfig {
            workers: 1,
            queue_limit: None,
            service_time: Duration::from_millis(1),
        }));
        let mut last_wait = Duration::ZERO;
        for i in 0..64 {
            match c.admit(Duration::ZERO).unwrap() {
                Admission::Admitted { queue_wait, .. } => {
                    assert!(queue_wait >= last_wait, "arrival {i} wait shrank");
                    last_wait = queue_wait;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let stats = c.load_stats(Duration::ZERO).unwrap();
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.in_system, 64);
        assert_eq!(last_wait, Duration::from_millis(63));
    }

    #[test]
    fn set_capacity_resets_state() {
        let c = container();
        let config = CapacityConfig::default();
        c.set_capacity(Some(config));
        c.admit(Duration::ZERO);
        assert_eq!(c.load_stats(Duration::ZERO).unwrap().admitted, 1);
        c.set_capacity(Some(config));
        assert_eq!(c.load_stats(Duration::ZERO).unwrap().admitted, 0);
        c.set_capacity(None);
        assert_eq!(c.load_stats(Duration::ZERO), None);
    }
}
