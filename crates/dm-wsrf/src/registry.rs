//! A UDDI-like service registry.
//!
//! §4.6: "Access to the UDDI registry for inquiry is available at
//! <http://agents-comsc.grid.cf.ac.uk:8334/juddi/inquiry>". This module
//! provides the publish and inquiry operations the toolkit uses:
//! services are published with a name, a host, a WSDL location, and
//! category tags ("classifier", "clustering", "visualisation", ...),
//! and can be found by exact name, name substring, or category.
//!
//! The registry also tracks per-service **liveness** on the virtual
//! clock: services heartbeat ([`UddiRegistry::heartbeat`]), can be
//! marked dead outright, and the health-aware inquiries
//! ([`UddiRegistry::find_by_category_healthy`],
//! [`UddiRegistry::find_healthy`]) filter out dead endpoints and rank
//! fresh ones first, so importers never bind a workflow to a host the
//! monitor already knows is gone.

use crate::error::{Result, WsError};
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap};
use std::time::Duration;

/// One published service record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceEntry {
    /// Service name, e.g. `Classifier`.
    pub name: String,
    /// Host the service is deployed on.
    pub host: String,
    /// WSDL document URL.
    pub wsdl_url: String,
    /// Category tags (UDDI category bag).
    pub categories: Vec<String>,
    /// Free-text description.
    pub description: String,
}

/// Liveness of a published service as the registry sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// No heartbeat has ever been recorded (freshly published).
    Unknown,
    /// A heartbeat arrived within the freshness horizon.
    Alive,
    /// Explicitly marked dead, or the last heartbeat is stale.
    Dead,
}

#[derive(Debug, Clone, Copy, Default)]
struct HealthRecord {
    last_heartbeat: Option<Duration>,
    marked_dead: bool,
}

/// Indexed entry storage: name → entry for O(1) exact inquiry, plus a
/// category → names inverted index so category inquiry is proportional
/// to the result set, not the registry (E11 measured the old list scan
/// at 122 µs per inquiry at 1 000 entries). `BTreeSet` keeps each
/// category's names sorted, which is exactly the order the category
/// inquiry API promises.
#[derive(Debug, Default)]
struct EntryIndex {
    by_name: HashMap<String, ServiceEntry>,
    by_category: HashMap<String, BTreeSet<String>>,
}

impl EntryIndex {
    fn insert(&mut self, entry: ServiceEntry) {
        self.remove(&entry.name);
        for category in &entry.categories {
            self.by_category
                .entry(category.clone())
                .or_default()
                .insert(entry.name.clone());
        }
        self.by_name.insert(entry.name.clone(), entry);
    }

    fn remove(&mut self, name: &str) -> bool {
        let Some(old) = self.by_name.remove(name) else {
            return false;
        };
        for category in &old.categories {
            if let Some(names) = self.by_category.get_mut(category) {
                names.remove(name);
                if names.is_empty() {
                    self.by_category.remove(category);
                }
            }
        }
        true
    }
}

/// The registry. Publishing the same name twice replaces the entry
/// (re-deployment), matching jUDDI's businessService update semantics.
/// Health lives in a side table keyed by service name so entry records
/// stay plain published data.
#[derive(Debug, Default)]
pub struct UddiRegistry {
    entries: RwLock<EntryIndex>,
    health: RwLock<HashMap<String, HealthRecord>>,
}

impl UddiRegistry {
    /// Create an empty registry.
    pub fn new() -> UddiRegistry {
        UddiRegistry::default()
    }

    /// Publish (or replace) a service entry. Re-publishing resets any
    /// previous health record: a redeployed service starts Unknown.
    pub fn publish(&self, entry: ServiceEntry) {
        let mut entries = self.entries.write();
        self.health.write().remove(&entry.name);
        entries.insert(entry);
    }

    /// Remove an entry; returns whether one existed.
    pub fn unpublish(&self, name: &str) -> bool {
        let mut entries = self.entries.write();
        self.health.write().remove(name);
        entries.remove(name)
    }

    /// Record a liveness heartbeat for `name` at virtual time `now`.
    /// Clears any prior dead mark.
    pub fn heartbeat(&self, name: &str, now: Duration) {
        let mut health = self.health.write();
        let record = health.entry(name.to_string()).or_default();
        record.last_heartbeat = Some(now);
        record.marked_dead = false;
    }

    /// Explicitly mark `name` dead (e.g. a breaker opened for its
    /// host). A later heartbeat revives it.
    pub fn mark_dead(&self, name: &str) {
        self.health
            .write()
            .entry(name.to_string())
            .or_default()
            .marked_dead = true;
    }

    /// Health of `name` at `now`: heartbeats older than `freshness`
    /// count as dead, never-heartbeated services are Unknown. The
    /// freshness window is start-inclusive, end-exclusive — a heartbeat
    /// at `t` keeps the service alive for `now ∈ [t, t + freshness)`,
    /// the same half-open convention the fault engine pins for outage
    /// windows and latency spikes, so a heartbeat aged exactly
    /// `freshness` already reads as dead.
    pub fn health_of(&self, name: &str, now: Duration, freshness: Duration) -> HealthStatus {
        let health = self.health.read();
        match health.get(name) {
            None => HealthStatus::Unknown,
            Some(record) if record.marked_dead => HealthStatus::Dead,
            Some(record) => match record.last_heartbeat {
                None => HealthStatus::Unknown,
                Some(at) if now.saturating_sub(at) < freshness => HealthStatus::Alive,
                Some(_) => HealthStatus::Dead,
            },
        }
    }

    /// Number of published services.
    pub fn len(&self) -> usize {
        self.entries.read().by_name.len()
    }

    /// `true` when nothing is published.
    pub fn is_empty(&self) -> bool {
        self.entries.read().by_name.is_empty()
    }

    /// Exact-name inquiry (indexed: one hash lookup).
    pub fn find(&self, name: &str) -> Result<ServiceEntry> {
        self.entries
            .read()
            .by_name
            .get(name)
            .cloned()
            .ok_or_else(|| WsError::NotFound(format!("service {name:?}")))
    }

    /// Substring inquiry (case-insensitive), sorted by name.
    pub fn find_by_name(&self, pattern: &str) -> Vec<ServiceEntry> {
        let needle = pattern.to_ascii_lowercase();
        let mut hits: Vec<ServiceEntry> = self
            .entries
            .read()
            .by_name
            .values()
            .filter(|e| e.name.to_ascii_lowercase().contains(&needle))
            .cloned()
            .collect();
        hits.sort_by(|a, b| a.name.cmp(&b.name));
        hits
    }

    /// Category inquiry, sorted by name. Served from the inverted
    /// index: cost is proportional to the number of matches, and the
    /// `BTreeSet` iterates names already in sorted order.
    pub fn find_by_category(&self, category: &str) -> Vec<ServiceEntry> {
        let entries = self.entries.read();
        match entries.by_category.get(category) {
            None => Vec::new(),
            Some(names) => names
                .iter()
                .filter_map(|name| entries.by_name.get(name).cloned())
                .collect(),
        }
    }

    /// All entries, sorted by name.
    pub fn all(&self) -> Vec<ServiceEntry> {
        let mut entries: Vec<ServiceEntry> =
            self.entries.read().by_name.values().cloned().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    fn rank_healthy(
        &self,
        mut hits: Vec<ServiceEntry>,
        now: Duration,
        freshness: Duration,
    ) -> Vec<ServiceEntry> {
        hits.retain(|e| self.health_of(&e.name, now, freshness) != HealthStatus::Dead);
        // Alive (freshest heartbeat first) ahead of Unknown; names break
        // ties so the order is total.
        hits.sort_by(|a, b| {
            let key = |e: &ServiceEntry| {
                let health = self.health.read();
                match health.get(&e.name).and_then(|r| r.last_heartbeat) {
                    Some(at) => (0u8, std::cmp::Reverse(at)),
                    None => (1u8, std::cmp::Reverse(Duration::ZERO)),
                }
            };
            key(a).cmp(&key(b)).then_with(|| a.name.cmp(&b.name))
        });
        hits
    }

    /// Category inquiry that drops dead endpoints and ranks live ones
    /// (freshest heartbeat) first, then Unknown, by name within ties.
    pub fn find_by_category_healthy(
        &self,
        category: &str,
        now: Duration,
        freshness: Duration,
    ) -> Vec<ServiceEntry> {
        self.rank_healthy(self.find_by_category(category), now, freshness)
    }

    /// Substring inquiry filtered and ranked like
    /// [`find_by_category_healthy`](Self::find_by_category_healthy).
    pub fn find_healthy(
        &self,
        pattern: &str,
        now: Duration,
        freshness: Duration,
    ) -> Vec<ServiceEntry> {
        self.rank_healthy(self.find_by_name(pattern), now, freshness)
    }

    /// Rank `hits` cheapest first: dead endpoints are dropped, and the
    /// survivors are ordered by the blended cost score
    /// [`CostModel::cost_score`] — `(outstanding + 1) × p99` — over the
    /// caller-supplied per-host load (e.g. [`Network::load_snapshot`])
    /// and per-host p99 tail (e.g. the monitor's
    /// [`summary_by_host`](crate::monitor::MonitorLog::summary_by_host)).
    /// A fast-but-busy host can therefore beat a slow-but-idle one;
    /// with an empty `tails` map the score degrades to the plain
    /// outstanding count, the pre-E20 behaviour.
    ///
    /// Hosts a snapshot has never measured are *unknown*, not idle:
    /// they take the lower median of the measured figures (load and
    /// tail alike) and rank after measured hosts at the same score, so
    /// a never-seen replica joins the rotation at a typical depth
    /// instead of always winning — a load-0 default would stampede
    /// every caller onto each cold replica the moment it appears. Ties
    /// fall back to the health ranking — alive-freshest first, then
    /// Unknown, then name — so two equally-scored replicas still prefer
    /// the one heartbeating.
    ///
    /// [`Network::load_snapshot`]: crate::transport::Network::load_snapshot
    /// [`CostModel::cost_score`]: crate::costmodel::CostModel::cost_score
    pub fn rank_least_outstanding(
        &self,
        hits: Vec<ServiceEntry>,
        now: Duration,
        freshness: Duration,
        loads: &HashMap<String, u64>,
        tails: &HashMap<String, Duration>,
    ) -> Vec<ServiceEntry> {
        let mut hits = self.rank_healthy(hits, now, freshness);
        let mut measured: Vec<u64> = hits
            .iter()
            .filter_map(|e| loads.get(&e.host).copied())
            .collect();
        measured.sort_unstable();
        // Lower median (empty snapshot → 0, preserving health order).
        let unknown_load = measured
            .get(measured.len().saturating_sub(1) / 2)
            .copied()
            .unwrap_or(0);
        let mut measured_tails: Vec<Duration> = hits
            .iter()
            .filter_map(|e| tails.get(&e.host).copied())
            .collect();
        measured_tails.sort_unstable();
        // Same lower-median rule for unknown tails; an empty tail map
        // scores every host's tail as 1 ns, reducing the blend to pure
        // load ordering.
        let unknown_tail = measured_tails
            .get(measured_tails.len().saturating_sub(1) / 2)
            .copied()
            .unwrap_or(Duration::from_nanos(1));
        // Stable sort: equal keys keep the health ranking's order. The
        // second key ranks unknown hosts after measured ones at the
        // same score.
        hits.sort_by_key(|e| {
            let (load, measured) = match loads.get(&e.host) {
                Some(&load) => (load, true),
                None => (unknown_load, false),
            };
            let tail = tails.get(&e.host).copied().unwrap_or(unknown_tail);
            (
                crate::costmodel::CostModel::cost_score(load, tail),
                u8::from(!measured),
            )
        });
        hits
    }

    /// Category inquiry ranked cheapest first (see
    /// [`rank_least_outstanding`](Self::rank_least_outstanding)) so a
    /// workflow binding replicas actually spreads load instead of
    /// piling onto the freshest heartbeat.
    pub fn find_by_category_least_loaded(
        &self,
        category: &str,
        now: Duration,
        freshness: Duration,
        loads: &HashMap<String, u64>,
        tails: &HashMap<String, Duration>,
    ) -> Vec<ServiceEntry> {
        self.rank_least_outstanding(
            self.find_by_category(category),
            now,
            freshness,
            loads,
            tails,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, categories: &[&str]) -> ServiceEntry {
        ServiceEntry {
            name: name.to_string(),
            host: "host-a".to_string(),
            wsdl_url: format!("http://host-a:8080/axis/{name}?wsdl"),
            categories: categories.iter().map(|s| s.to_string()).collect(),
            description: String::new(),
        }
    }

    #[test]
    fn publish_and_find() {
        let reg = UddiRegistry::new();
        reg.publish(entry("Classifier", &["classifier", "datamining"]));
        reg.publish(entry("Cobweb", &["clustering", "datamining"]));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.find("Cobweb").unwrap().host, "host-a");
        assert!(reg.find("Nope").is_err());
    }

    #[test]
    fn republish_replaces() {
        let reg = UddiRegistry::new();
        reg.publish(entry("Classifier", &["v1"]));
        let mut updated = entry("Classifier", &["v2"]);
        updated.host = "host-b".into();
        reg.publish(updated);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.find("Classifier").unwrap().host, "host-b");
    }

    #[test]
    fn name_pattern_inquiry() {
        let reg = UddiRegistry::new();
        reg.publish(entry("ClassifierService", &[]));
        reg.publish(entry("ClustererService", &[]));
        reg.publish(entry("PlotService", &[]));
        let hits = reg.find_by_name("service");
        assert_eq!(hits.len(), 3);
        let hits = reg.find_by_name("Cl");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].name, "ClassifierService");
    }

    #[test]
    fn category_inquiry() {
        let reg = UddiRegistry::new();
        reg.publish(entry("J48", &["classifier"]));
        reg.publish(entry("Cobweb", &["clustering"]));
        reg.publish(entry("Classifier", &["classifier"]));
        let hits = reg.find_by_category("classifier");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].name, "Classifier");
        assert!(reg.find_by_category("visualisation").is_empty());
    }

    #[test]
    fn health_lifecycle() {
        let reg = UddiRegistry::new();
        reg.publish(entry("A", &[]));
        let fresh = Duration::from_secs(10);
        assert_eq!(
            reg.health_of("A", Duration::ZERO, fresh),
            HealthStatus::Unknown
        );

        reg.heartbeat("A", Duration::from_secs(5));
        assert_eq!(
            reg.health_of("A", Duration::from_secs(6), fresh),
            HealthStatus::Alive
        );
        // Stale heartbeat reads as dead.
        assert_eq!(
            reg.health_of("A", Duration::from_secs(30), fresh),
            HealthStatus::Dead
        );

        reg.mark_dead("A");
        assert_eq!(
            reg.health_of("A", Duration::from_secs(6), fresh),
            HealthStatus::Dead
        );
        // A heartbeat revives an explicitly dead service.
        reg.heartbeat("A", Duration::from_secs(7));
        assert_eq!(
            reg.health_of("A", Duration::from_secs(8), fresh),
            HealthStatus::Alive
        );

        // Re-publishing resets health to Unknown.
        reg.publish(entry("A", &[]));
        assert_eq!(
            reg.health_of("A", Duration::from_secs(8), fresh),
            HealthStatus::Unknown
        );
    }

    #[test]
    fn healthy_inquiry_filters_and_ranks() {
        let reg = UddiRegistry::new();
        reg.publish(entry("Stale", &["classifier"]));
        reg.publish(entry("Fresh", &["classifier"]));
        reg.publish(entry("Newcomer", &["classifier"]));
        reg.publish(entry("Corpse", &["classifier"]));

        let now = Duration::from_secs(100);
        let fresh = Duration::from_secs(30);
        reg.heartbeat("Stale", Duration::from_secs(10)); // 90 s old: dead
        reg.heartbeat("Fresh", Duration::from_secs(95));
        reg.mark_dead("Corpse");

        let hits = reg.find_by_category_healthy("classifier", now, fresh);
        let names: Vec<&str> = hits.iter().map(|e| e.name.as_str()).collect();
        // Alive first, then never-heartbeated; stale + marked-dead gone.
        assert_eq!(names, ["Fresh", "Newcomer"]);

        let by_name = reg.find_healthy("e", now, fresh);
        assert!(by_name
            .iter()
            .all(|e| e.name != "Corpse" && e.name != "Stale"));

        // The plain inquiries still see everything.
        assert_eq!(reg.find_by_category("classifier").len(), 4);
    }

    #[test]
    fn freshness_window_is_start_inclusive_end_exclusive() {
        // Same half-open convention as the fault engine's outage
        // windows: alive for now ∈ [t, t + freshness), dead at the
        // boundary itself.
        let reg = UddiRegistry::new();
        reg.publish(entry("A", &[]));
        let fresh = Duration::from_secs(30);
        reg.heartbeat("A", Duration::from_secs(10));

        // Age 0 (the heartbeat instant) is alive.
        assert_eq!(
            reg.health_of("A", Duration::from_secs(10), fresh),
            HealthStatus::Alive
        );
        // One nanosecond inside the window is still alive.
        assert_eq!(
            reg.health_of(
                "A",
                Duration::from_secs(40) - Duration::from_nanos(1),
                fresh
            ),
            HealthStatus::Alive
        );
        // A heartbeat aged exactly `freshness` is already dead.
        assert_eq!(
            reg.health_of("A", Duration::from_secs(40), fresh),
            HealthStatus::Dead
        );
    }

    #[test]
    fn least_loaded_inquiry_spreads_replicas() {
        let reg = UddiRegistry::new();
        let replica = |name: &str, host: &str| {
            let mut e = entry(name, &["classifier"]);
            e.host = host.to_string();
            e
        };
        reg.publish(replica("ClassifierA", "host-a"));
        reg.publish(replica("ClassifierB", "host-b"));
        reg.publish(replica("ClassifierC", "host-c"));
        reg.publish(replica("ClassifierDead", "host-d"));
        reg.mark_dead("ClassifierDead");

        let now = Duration::from_secs(100);
        let fresh = Duration::from_secs(30);
        reg.heartbeat("ClassifierA", Duration::from_secs(99));
        reg.heartbeat("ClassifierB", Duration::from_secs(98));
        reg.heartbeat("ClassifierC", Duration::from_secs(97));

        // Health-only ranking piles onto the freshest heartbeat (A).
        let healthy = reg.find_by_category_healthy("classifier", now, fresh);
        assert_eq!(healthy[0].name, "ClassifierA");

        // Load-aware ranking sends the call to the lightest replica.
        let loads: HashMap<String, u64> =
            [("host-a".to_string(), 7), ("host-b".to_string(), 2)].into();
        let ranked =
            reg.find_by_category_least_loaded("classifier", now, fresh, &loads, &HashMap::new());
        let names: Vec<&str> = ranked.iter().map(|e| e.name.as_str()).collect();
        // host-b is the lightest *measured* host (2). host-c was never
        // measured, so it is unknown — it takes the lower median of the
        // measured loads (2) and ranks after the measured host-b, but
        // still ahead of overloaded host-a (7). The dead replica never
        // appears. (The pre-fix code treated unknown as idle, putting C
        // first — the cold-replica stampede.)
        assert_eq!(names, ["ClassifierB", "ClassifierC", "ClassifierA"]);

        // Equal loads fall back to the health ranking's order.
        let ranked = reg.find_by_category_least_loaded(
            "classifier",
            now,
            fresh,
            &HashMap::new(),
            &HashMap::new(),
        );
        let names: Vec<&str> = ranked.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["ClassifierA", "ClassifierB", "ClassifierC"]);
    }

    #[test]
    fn unknown_hosts_rank_after_lightly_loaded_measured_ones() {
        // Regression for the cold-replica stampede: a replica absent
        // from the load snapshot must not outrank every measured host.
        let reg = UddiRegistry::new();
        let replica = |name: &str, host: &str| {
            let mut e = entry(name, &["c"]);
            e.host = host.to_string();
            e
        };
        reg.publish(replica("Idle", "measured-idle"));
        reg.publish(replica("Busy", "measured-busy"));
        reg.publish(replica("Cold", "never-seen"));
        let now = Duration::from_secs(10);
        let fresh = Duration::from_secs(60);

        let loads: HashMap<String, u64> = [
            ("measured-idle".to_string(), 0),
            ("measured-busy".to_string(), 8),
        ]
        .into();
        let names: Vec<String> = reg
            .find_by_category_least_loaded("c", now, fresh, &loads, &HashMap::new())
            .into_iter()
            .map(|e| e.name)
            .collect();
        // Unknown takes the lower median of {0, 8} = 0 but ranks after
        // the measured idle host; it still beats the saturated one.
        assert_eq!(names, ["Idle", "Cold", "Busy"]);
    }

    #[test]
    fn fast_but_busy_host_beats_slow_but_idle_one() {
        // Regression for the E20 cost blend: ranking on outstanding
        // count alone sends the call to the idle host even when its
        // p99 tail is an order of magnitude worse. The blended score
        // (outstanding + 1) × p99 picks the busy-but-fast host.
        let reg = UddiRegistry::new();
        let replica = |name: &str, host: &str| {
            let mut e = entry(name, &["c"]);
            e.host = host.to_string();
            e
        };
        reg.publish(replica("Fast", "busy-fast"));
        reg.publish(replica("Slow", "idle-slow"));
        let now = Duration::from_secs(10);
        let fresh = Duration::from_secs(60);

        let loads: HashMap<String, u64> =
            [("busy-fast".to_string(), 6), ("idle-slow".to_string(), 0)].into();
        // Outstanding count alone (no tails): the idle host wins.
        let names: Vec<String> = reg
            .find_by_category_least_loaded("c", now, fresh, &loads, &HashMap::new())
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, ["Slow", "Fast"]);

        // With p99 tails blended in: 7 × 1 ms = 7 ms for the busy-fast
        // host vs 1 × 20 ms = 20 ms for the idle-slow one.
        let tails: HashMap<String, Duration> = [
            ("busy-fast".to_string(), Duration::from_millis(1)),
            ("idle-slow".to_string(), Duration::from_millis(20)),
        ]
        .into();
        let names: Vec<String> = reg
            .find_by_category_least_loaded("c", now, fresh, &loads, &tails)
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, ["Fast", "Slow"]);
    }

    #[test]
    fn unknown_tails_take_the_lower_median_of_measured_ones() {
        // A host with a measured load but no recorded tail must not be
        // scored at 1 ns (which would make it unbeatable once any other
        // host has a real p99) — it takes the lower median tail.
        let reg = UddiRegistry::new();
        let replica = |name: &str, host: &str| {
            let mut e = entry(name, &["c"]);
            e.host = host.to_string();
            e
        };
        reg.publish(replica("Measured", "with-tail"));
        reg.publish(replica("Tailless", "no-tail"));
        let now = Duration::from_secs(10);
        let fresh = Duration::from_secs(60);
        let loads: HashMap<String, u64> =
            [("with-tail".to_string(), 1), ("no-tail".to_string(), 2)].into();
        let tails: HashMap<String, Duration> =
            [("with-tail".to_string(), Duration::from_millis(4))].into();
        // Tailless inherits the 4 ms median: 3 × 4 ms > 2 × 4 ms.
        let names: Vec<String> = reg
            .find_by_category_least_loaded("c", now, fresh, &loads, &tails)
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, ["Measured", "Tailless"]);
    }

    #[test]
    fn freshest_heartbeat_ranks_first() {
        let reg = UddiRegistry::new();
        reg.publish(entry("Old", &["c"]));
        reg.publish(entry("New", &["c"]));
        reg.heartbeat("Old", Duration::from_secs(1));
        reg.heartbeat("New", Duration::from_secs(9));
        let hits =
            reg.find_by_category_healthy("c", Duration::from_secs(10), Duration::from_secs(60));
        assert_eq!(hits[0].name, "New");
        assert_eq!(hits[1].name, "Old");
    }

    #[test]
    fn category_index_follows_republish_and_unpublish() {
        let reg = UddiRegistry::new();
        reg.publish(entry("S", &["alpha", "beta"]));
        assert_eq!(reg.find_by_category("alpha").len(), 1);
        assert_eq!(reg.find_by_category("beta").len(), 1);

        // Re-publishing with different categories must drop the stale
        // index entries and add the new ones.
        reg.publish(entry("S", &["beta", "gamma"]));
        assert!(reg.find_by_category("alpha").is_empty());
        assert_eq!(reg.find_by_category("beta").len(), 1);
        assert_eq!(reg.find_by_category("gamma").len(), 1);

        reg.unpublish("S");
        assert!(reg.find_by_category("beta").is_empty());
        assert!(reg.find_by_category("gamma").is_empty());
    }

    #[test]
    fn category_results_stay_name_sorted_at_scale() {
        let reg = UddiRegistry::new();
        // Insert in reverse order; the index must still return sorted.
        for i in (0..100).rev() {
            reg.publish(entry(&format!("Svc{i:03}"), &["datamining"]));
        }
        let hits = reg.find_by_category("datamining");
        assert_eq!(hits.len(), 100);
        let names: Vec<&str> = hits.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn unpublish() {
        let reg = UddiRegistry::new();
        reg.publish(entry("X", &[]));
        assert!(reg.unpublish("X"));
        assert!(!reg.unpublish("X"));
        assert!(reg.is_empty());
    }
}
