//! A UDDI-like service registry.
//!
//! §4.6: "Access to the UDDI registry for inquiry is available at
//! <http://agents-comsc.grid.cf.ac.uk:8334/juddi/inquiry>". This module
//! provides the publish and inquiry operations the toolkit uses:
//! services are published with a name, a host, a WSDL location, and
//! category tags ("classifier", "clustering", "visualisation", ...),
//! and can be found by exact name, name substring, or category.

use crate::error::{Result, WsError};
use parking_lot::RwLock;

/// One published service record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceEntry {
    /// Service name, e.g. `Classifier`.
    pub name: String,
    /// Host the service is deployed on.
    pub host: String,
    /// WSDL document URL.
    pub wsdl_url: String,
    /// Category tags (UDDI category bag).
    pub categories: Vec<String>,
    /// Free-text description.
    pub description: String,
}

/// The registry. Publishing the same name twice replaces the entry
/// (re-deployment), matching jUDDI's businessService update semantics.
#[derive(Debug, Default)]
pub struct UddiRegistry {
    entries: RwLock<Vec<ServiceEntry>>,
}

impl UddiRegistry {
    /// Create an empty registry.
    pub fn new() -> UddiRegistry {
        UddiRegistry::default()
    }

    /// Publish (or replace) a service entry.
    pub fn publish(&self, entry: ServiceEntry) {
        let mut entries = self.entries.write();
        entries.retain(|e| e.name != entry.name);
        entries.push(entry);
    }

    /// Remove an entry; returns whether one existed.
    pub fn unpublish(&self, name: &str) -> bool {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|e| e.name != name);
        entries.len() != before
    }

    /// Number of published services.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// `true` when nothing is published.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Exact-name inquiry.
    pub fn find(&self, name: &str) -> Result<ServiceEntry> {
        self.entries
            .read()
            .iter()
            .find(|e| e.name == name)
            .cloned()
            .ok_or_else(|| WsError::NotFound(format!("service {name:?}")))
    }

    /// Substring inquiry (case-insensitive), sorted by name.
    pub fn find_by_name(&self, pattern: &str) -> Vec<ServiceEntry> {
        let needle = pattern.to_ascii_lowercase();
        let mut hits: Vec<ServiceEntry> = self
            .entries
            .read()
            .iter()
            .filter(|e| e.name.to_ascii_lowercase().contains(&needle))
            .cloned()
            .collect();
        hits.sort_by(|a, b| a.name.cmp(&b.name));
        hits
    }

    /// Category inquiry, sorted by name.
    pub fn find_by_category(&self, category: &str) -> Vec<ServiceEntry> {
        let mut hits: Vec<ServiceEntry> = self
            .entries
            .read()
            .iter()
            .filter(|e| e.categories.iter().any(|c| c == category))
            .cloned()
            .collect();
        hits.sort_by(|a, b| a.name.cmp(&b.name));
        hits
    }

    /// All entries, sorted by name.
    pub fn all(&self) -> Vec<ServiceEntry> {
        let mut entries = self.entries.read().clone();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, categories: &[&str]) -> ServiceEntry {
        ServiceEntry {
            name: name.to_string(),
            host: "host-a".to_string(),
            wsdl_url: format!("http://host-a:8080/axis/{name}?wsdl"),
            categories: categories.iter().map(|s| s.to_string()).collect(),
            description: String::new(),
        }
    }

    #[test]
    fn publish_and_find() {
        let reg = UddiRegistry::new();
        reg.publish(entry("Classifier", &["classifier", "datamining"]));
        reg.publish(entry("Cobweb", &["clustering", "datamining"]));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.find("Cobweb").unwrap().host, "host-a");
        assert!(reg.find("Nope").is_err());
    }

    #[test]
    fn republish_replaces() {
        let reg = UddiRegistry::new();
        reg.publish(entry("Classifier", &["v1"]));
        let mut updated = entry("Classifier", &["v2"]);
        updated.host = "host-b".into();
        reg.publish(updated);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.find("Classifier").unwrap().host, "host-b");
    }

    #[test]
    fn name_pattern_inquiry() {
        let reg = UddiRegistry::new();
        reg.publish(entry("ClassifierService", &[]));
        reg.publish(entry("ClustererService", &[]));
        reg.publish(entry("PlotService", &[]));
        let hits = reg.find_by_name("service");
        assert_eq!(hits.len(), 3);
        let hits = reg.find_by_name("Cl");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].name, "ClassifierService");
    }

    #[test]
    fn category_inquiry() {
        let reg = UddiRegistry::new();
        reg.publish(entry("J48", &["classifier"]));
        reg.publish(entry("Cobweb", &["clustering"]));
        reg.publish(entry("Classifier", &["classifier"]));
        let hits = reg.find_by_category("classifier");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].name, "Classifier");
        assert!(reg.find_by_category("visualisation").is_empty());
    }

    #[test]
    fn unpublish() {
        let reg = UddiRegistry::new();
        reg.publish(entry("X", &[]));
        assert!(reg.unpublish("X"));
        assert!(!reg.unpublish("X"));
        assert!(reg.is_empty());
    }
}
