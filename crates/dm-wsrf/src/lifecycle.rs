//! Instance lifecycle management — the machinery behind the paper's one
//! quantitative finding (§4.5):
//!
//! > "when the J48 Web Service was invoked a number of times an
//! > instance of the service was created as an object for each
//! > invocation; if an object already existed this had to be re-built
//! > from its serialised state on disk. On completion of the invocation
//! > the state of the object was recorded: it was serialised and stored
//! > to disk. … To overcome this performance penalty a harness was
//! > implemented that maintained an algorithm instance object in
//! > memory, thereby preventing the Web Services infrastructure from
//! > serialising the object at the completion of each invocation."
//!
//! [`LifecyclePolicy::SerializePerCall`] reproduces the default Axis
//! behaviour (state bytes written to and re-read from a disk-backed
//! [`InstanceStore`] around every call); [`LifecyclePolicy::InMemoryHarness`]
//! is the paper's fix (instances pinned in a typed in-memory cache).
//! Experiment E4 benchmarks one against the other.

use crate::error::{Result, WsError};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which lifecycle the container applies to algorithm instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecyclePolicy {
    /// Default Axis behaviour: rebuild from serialised state before the
    /// call, serialise back to disk after it.
    SerializePerCall,
    /// The paper's harness: keep the live instance in memory.
    InMemoryHarness,
}

/// A disk-backed store of serialised instance state (one file per key).
#[derive(Debug)]
pub struct InstanceStore {
    dir: PathBuf,
}

impl InstanceStore {
    /// Create a store rooted in a fresh unique directory under the
    /// system temp dir.
    pub fn temp() -> Result<InstanceStore> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("faehim-instances-{}-{n}", std::process::id()));
        fs::create_dir_all(&dir).map_err(|e| WsError::Store(e.to_string()))?;
        Ok(InstanceStore { dir })
    }

    /// Create a store in an explicit directory.
    pub fn at(dir: PathBuf) -> Result<InstanceStore> {
        fs::create_dir_all(&dir).map_err(|e| WsError::Store(e.to_string()))?;
        Ok(InstanceStore { dir })
    }

    fn path(&self, key: &str) -> PathBuf {
        // Keys may contain separators; flatten defensively.
        let safe: String = key
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.dir.join(format!("{safe}.state"))
    }

    /// Persist state bytes for `key` (fsync'd write-then-rename is not
    /// needed here — the paper's Axis store was a plain file too).
    pub fn save(&self, key: &str, bytes: &[u8]) -> Result<()> {
        fs::write(self.path(key), bytes).map_err(|e| WsError::Store(e.to_string()))
    }

    /// Load state bytes for `key`, or `None` if never saved.
    pub fn load(&self, key: &str) -> Result<Option<Vec<u8>>> {
        match fs::read(self.path(key)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(WsError::Store(e.to_string())),
        }
    }

    /// Remove the state for `key` (idempotent).
    pub fn remove(&self, key: &str) -> Result<()> {
        match fs::remove_file(self.path(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(WsError::Store(e.to_string())),
        }
    }
}

impl Drop for InstanceStore {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// Per-service lifecycle manager: a policy, the disk store, and the
/// in-memory cache. The cache holds `Arc<dyn Any>` so the manager stays
/// agnostic of the algorithm crate; services downcast to their model
/// type.
pub struct LifecycleManager {
    policy: Mutex<LifecyclePolicy>,
    store: InstanceStore,
    cache: Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>,
    /// Counters for the E4 report.
    serializations: AtomicU64,
    deserializations: AtomicU64,
    cache_hits: AtomicU64,
}

impl LifecycleManager {
    /// Create with the given policy and a fresh temp store.
    pub fn new(policy: LifecyclePolicy) -> Result<LifecycleManager> {
        Ok(LifecycleManager {
            policy: Mutex::new(policy),
            store: InstanceStore::temp()?,
            cache: Mutex::new(HashMap::new()),
            serializations: AtomicU64::new(0),
            deserializations: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        })
    }

    /// The current policy.
    pub fn policy(&self) -> LifecyclePolicy {
        *self.policy.lock()
    }

    /// Switch policy (clears the in-memory cache when leaving the
    /// harness, as undeploying the harness would).
    pub fn set_policy(&self, policy: LifecyclePolicy) {
        let mut p = self.policy.lock();
        if *p == LifecyclePolicy::InMemoryHarness && policy != *p {
            self.cache.lock().clear();
        }
        *p = policy;
    }

    /// Run `call` against the instance for `key`, applying the policy.
    ///
    /// * `restore(bytes)` rebuilds an instance from serialised state;
    /// * `fresh()` creates a brand-new instance when none exists;
    /// * `persist(&T)` serialises the (possibly mutated) instance;
    /// * `call(&mut T)` is the actual operation.
    ///
    /// Under `SerializePerCall`, the sequence is exactly the paper's:
    /// load-or-create → deserialise → call → serialise → store. Under
    /// `InMemoryHarness` the live instance stays pinned in the cache
    /// (behind a mutex, as the paper's harness kept the Java object in
    /// memory) and no bytes are produced.
    pub fn with_instance<T, R>(
        &self,
        key: &str,
        fresh: impl FnOnce() -> T,
        restore: impl FnOnce(&[u8]) -> Result<T>,
        persist: impl FnOnce(&T) -> Vec<u8>,
        call: impl FnOnce(&mut T) -> R,
    ) -> Result<R>
    where
        T: Send + 'static,
    {
        match self.policy() {
            LifecyclePolicy::SerializePerCall => {
                let mut instance = match self.store.load(key)? {
                    Some(bytes) => {
                        self.deserializations.fetch_add(1, Ordering::Relaxed);
                        restore(&bytes)?
                    }
                    None => fresh(),
                };
                let result = call(&mut instance);
                let bytes = persist(&instance);
                self.serializations.fetch_add(1, Ordering::Relaxed);
                self.store.save(key, &bytes)?;
                Ok(result)
            }
            LifecyclePolicy::InMemoryHarness => {
                let cached: Option<Arc<dyn Any + Send + Sync>> =
                    self.cache.lock().get(key).cloned();
                match cached {
                    Some(arc) => {
                        self.cache_hits.fetch_add(1, Ordering::Relaxed);
                        let cell = arc.downcast_ref::<Mutex<T>>().ok_or_else(|| {
                            WsError::Store(format!("cached instance for {key:?} has wrong type"))
                        })?;
                        Ok(call(&mut cell.lock()))
                    }
                    None => {
                        let mut instance = fresh();
                        let result = call(&mut instance);
                        self.cache
                            .lock()
                            .insert(key.to_string(), Arc::new(Mutex::new(instance)));
                        Ok(result)
                    }
                }
            }
        }
    }

    /// `(serialisations, deserialisations, cache_hits)` so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.serializations.load(Ordering::Relaxed),
            self.deserializations.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
        )
    }

    /// Drop all cached and stored state for `key`.
    pub fn evict(&self, key: &str) -> Result<()> {
        self.cache.lock().remove(key);
        self.store.remove(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Counter {
        n: u64,
    }

    fn encode(c: &Counter) -> Vec<u8> {
        c.n.to_le_bytes().to_vec()
    }

    fn decode(b: &[u8]) -> Result<Counter> {
        let arr: [u8; 8] = b
            .try_into()
            .map_err(|_| WsError::Store("bad counter state".into()))?;
        Ok(Counter {
            n: u64::from_le_bytes(arr),
        })
    }

    fn bump(mgr: &LifecycleManager, key: &str) -> u64 {
        mgr.with_instance(
            key,
            || Counter { n: 0 },
            decode,
            encode,
            |c| {
                c.n += 1;
                c.n
            },
        )
        .unwrap()
    }

    #[test]
    fn serialize_per_call_persists_across_calls() {
        let mgr = LifecycleManager::new(LifecyclePolicy::SerializePerCall).unwrap();
        assert_eq!(bump(&mgr, "k"), 1);
        assert_eq!(bump(&mgr, "k"), 2);
        assert_eq!(bump(&mgr, "k"), 3);
        let (ser, de, hits) = mgr.stats();
        assert_eq!(ser, 3);
        assert_eq!(de, 2); // first call creates fresh
        assert_eq!(hits, 0);
    }

    #[test]
    fn harness_keeps_instance_in_memory() {
        let mgr = LifecycleManager::new(LifecyclePolicy::InMemoryHarness).unwrap();
        assert_eq!(bump(&mgr, "k"), 1);
        assert_eq!(bump(&mgr, "k"), 2);
        let (ser, de, hits) = mgr.stats();
        assert_eq!(ser, 0, "harness must not serialise");
        assert_eq!(de, 0);
        assert_eq!(hits, 1);
    }

    #[test]
    fn keys_are_isolated() {
        let mgr = LifecycleManager::new(LifecyclePolicy::SerializePerCall).unwrap();
        assert_eq!(bump(&mgr, "a"), 1);
        assert_eq!(bump(&mgr, "b"), 1);
        assert_eq!(bump(&mgr, "a"), 2);
    }

    #[test]
    fn policy_switch_clears_cache() {
        let mgr = LifecycleManager::new(LifecyclePolicy::InMemoryHarness).unwrap();
        assert_eq!(bump(&mgr, "k"), 1);
        mgr.set_policy(LifecyclePolicy::SerializePerCall);
        // No disk state was ever written by the harness → fresh start.
        assert_eq!(bump(&mgr, "k"), 1);
    }

    #[test]
    fn evict_resets() {
        let mgr = LifecycleManager::new(LifecyclePolicy::SerializePerCall).unwrap();
        bump(&mgr, "k");
        bump(&mgr, "k");
        mgr.evict("k").unwrap();
        assert_eq!(bump(&mgr, "k"), 1);
    }

    #[test]
    fn store_roundtrip_and_missing() {
        let store = InstanceStore::temp().unwrap();
        assert_eq!(store.load("missing").unwrap(), None);
        store.save("model", &[1, 2, 3]).unwrap();
        assert_eq!(store.load("model").unwrap(), Some(vec![1, 2, 3]));
        store.remove("model").unwrap();
        assert_eq!(store.load("model").unwrap(), None);
        store.remove("model").unwrap(); // idempotent
    }

    #[test]
    fn hostile_keys_flattened() {
        let store = InstanceStore::temp().unwrap();
        store.save("../../etc/passwd", &[9]).unwrap();
        assert_eq!(store.load("../../etc/passwd").unwrap(), Some(vec![9]));
    }
}
