//! Service monitoring: "the framework should allow users to monitor the
//! progress of their jobs as they are executed on distributed
//! resources" (§3, category 2). Containers record an event for every
//! dispatch; the toolkit can snapshot, filter, and summarise them.

use parking_lot::Mutex;
use std::time::Duration;

/// Result of one invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The operation returned a value.
    Ok,
    /// The operation returned a SOAP fault (carrying its code).
    Fault(String),
}

/// One recorded invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationEvent {
    /// Host the container runs on.
    pub host: String,
    /// Service name.
    pub service: String,
    /// Operation name.
    pub operation: String,
    /// Wall-clock execution time inside the container.
    pub duration: Duration,
    /// Request payload size (approximate wire bytes).
    pub bytes_in: usize,
    /// Response payload size.
    pub bytes_out: usize,
    /// Success or fault.
    pub outcome: Outcome,
}

/// Aggregate statistics over a set of events.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSummary {
    /// Total invocations.
    pub invocations: usize,
    /// Invocations that returned a fault.
    pub faults: usize,
    /// Sum of execution durations.
    pub total_duration: Duration,
    /// Total request bytes.
    pub bytes_in: usize,
    /// Total response bytes.
    pub bytes_out: usize,
}

/// A thread-safe, append-only invocation log.
#[derive(Debug, Default)]
pub struct MonitorLog {
    events: Mutex<Vec<InvocationEvent>>,
}

impl MonitorLog {
    /// Create an empty log.
    pub fn new() -> MonitorLog {
        MonitorLog::default()
    }

    /// Append one event.
    pub fn record(&self, event: InvocationEvent) {
        self.events.lock().push(event);
    }

    /// Copy of all events so far.
    pub fn snapshot(&self) -> Vec<InvocationEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// `true` when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Clear all events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Summarise, optionally filtered by service name.
    pub fn summary(&self, service: Option<&str>) -> MonitorSummary {
        let events = self.events.lock();
        let mut s = MonitorSummary {
            invocations: 0,
            faults: 0,
            total_duration: Duration::ZERO,
            bytes_in: 0,
            bytes_out: 0,
        };
        for e in events.iter() {
            if let Some(name) = service {
                if e.service != name {
                    continue;
                }
            }
            s.invocations += 1;
            if matches!(e.outcome, Outcome::Fault(_)) {
                s.faults += 1;
            }
            s.total_duration += e.duration;
            s.bytes_in += e.bytes_in;
            s.bytes_out += e.bytes_out;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(service: &str, outcome: Outcome) -> InvocationEvent {
        InvocationEvent {
            host: "h".into(),
            service: service.into(),
            operation: "op".into(),
            duration: Duration::from_millis(5),
            bytes_in: 100,
            bytes_out: 50,
            outcome,
        }
    }

    #[test]
    fn record_and_snapshot() {
        let log = MonitorLog::new();
        assert!(log.is_empty());
        log.record(event("A", Outcome::Ok));
        log.record(event("B", Outcome::Fault("Server".into())));
        assert_eq!(log.len(), 2);
        assert_eq!(log.snapshot().len(), 2);
    }

    #[test]
    fn summary_totals() {
        let log = MonitorLog::new();
        for _ in 0..3 {
            log.record(event("A", Outcome::Ok));
        }
        log.record(event("A", Outcome::Fault("Server".into())));
        let s = log.summary(None);
        assert_eq!(s.invocations, 4);
        assert_eq!(s.faults, 1);
        assert_eq!(s.bytes_in, 400);
        assert_eq!(s.total_duration, Duration::from_millis(20));
    }

    #[test]
    fn summary_filters_by_service() {
        let log = MonitorLog::new();
        log.record(event("A", Outcome::Ok));
        log.record(event("B", Outcome::Ok));
        assert_eq!(log.summary(Some("A")).invocations, 1);
        assert_eq!(log.summary(Some("C")).invocations, 0);
    }

    #[test]
    fn clear_resets() {
        let log = MonitorLog::new();
        log.record(event("A", Outcome::Ok));
        log.clear();
        assert!(log.is_empty());
    }
}
