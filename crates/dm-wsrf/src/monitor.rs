//! Service monitoring: "the framework should allow users to monitor the
//! progress of their jobs as they are executed on distributed
//! resources" (§3, category 2). Containers record an event for every
//! dispatch; the toolkit can snapshot, filter, and summarise them.

use parking_lot::Mutex;
use std::time::Duration;

/// Result of one invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The operation returned a value.
    Ok,
    /// The operation returned a SOAP fault (carrying its code).
    Fault(String),
    /// The call failed in transit (either leg) and never produced a
    /// usable response. Only network-level logs record this; container
    /// logs cannot see transport failures.
    TransportError(String),
}

impl Outcome {
    /// `true` for anything other than a successful return.
    pub fn is_failure(&self) -> bool {
        !matches!(self, Outcome::Ok)
    }
}

/// One recorded invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationEvent {
    /// Host the container runs on.
    pub host: String,
    /// Service name.
    pub service: String,
    /// Operation name.
    pub operation: String,
    /// Wall-clock execution time inside the container.
    pub duration: Duration,
    /// Request payload size (approximate wire bytes).
    pub bytes_in: usize,
    /// Response payload size.
    pub bytes_out: usize,
    /// Wire bytes avoided by pass-by-reference substitution (0 when
    /// the data plane is off or nothing was substituted).
    pub bytes_saved: usize,
    /// Payloads that travelled as `DataRef` handles instead of inline.
    pub ref_hits: usize,
    /// Success or fault.
    pub outcome: Outcome,
}

/// Aggregate statistics over a set of events.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSummary {
    /// Total invocations.
    pub invocations: usize,
    /// Invocations that returned a fault.
    pub faults: usize,
    /// Sum of execution durations.
    pub total_duration: Duration,
    /// Total request bytes.
    pub bytes_in: usize,
    /// Total response bytes.
    pub bytes_out: usize,
    /// Total wire bytes avoided by pass-by-reference substitution.
    pub bytes_saved: usize,
    /// Total payloads that travelled as `DataRef` handles.
    pub ref_hits: usize,
}

/// Per-host aggregate statistics, the registry's and circuit breakers'
/// view of endpoint health.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSummary {
    /// Host name.
    pub host: String,
    /// Total attempts recorded against the host.
    pub invocations: usize,
    /// Attempts that ended in a SOAP fault.
    pub faults: usize,
    /// Attempts that failed in transit (network-level logs only).
    pub transport_errors: usize,
    /// `(faults + transport_errors) / invocations`; 0 when empty.
    pub failure_rate: f64,
    /// Median per-attempt duration.
    pub p50_duration: Duration,
    /// Nearest-rank 95th-percentile per-attempt duration.
    pub p95_duration: Duration,
    /// Nearest-rank 99th-percentile per-attempt duration — the tail
    /// signal the E19 autoscaler, replica router, and E20 planner cost
    /// model act on.
    pub p99_duration: Duration,
    /// Worst per-attempt duration.
    pub max_duration: Duration,
    /// Total request bytes.
    pub bytes_in: usize,
    /// Total response bytes.
    pub bytes_out: usize,
}

/// Per-operation aggregate statistics — the per-chunk wire-accounting
/// view for streaming ops: `bytes_in / invocations` of a `sendChunk`
/// row is the average wire bytes per chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationSummary {
    /// Operation name.
    pub operation: String,
    /// Total invocations of the operation.
    pub invocations: usize,
    /// Invocations that did not return a value.
    pub faults: usize,
    /// Total request bytes.
    pub bytes_in: usize,
    /// Total response bytes.
    pub bytes_out: usize,
    /// Total wire bytes avoided by pass-by-reference substitution.
    pub bytes_saved: usize,
    /// Payloads that travelled as `DataRef` handles.
    pub ref_hits: usize,
    /// Sum of execution durations.
    pub total_duration: Duration,
}

/// Nearest-rank quantile over an ascending-sorted sample: the
/// `ceil(q·n)`-th smallest value, clamped into the sample (so `q = 0`
/// still reads the minimum), and [`Duration::ZERO`] for an empty
/// sample. This is the one quantile definition shared by the per-host
/// summaries, the planner cost model, and the benches — nearest-rank,
/// never interpolated, so a reported p99 is always a value that
/// actually occurred.
pub fn nearest_rank(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (sorted.len() as f64 * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A thread-safe, append-only invocation log.
#[derive(Debug, Default)]
pub struct MonitorLog {
    events: Mutex<Vec<InvocationEvent>>,
}

impl MonitorLog {
    /// Create an empty log.
    pub fn new() -> MonitorLog {
        MonitorLog::default()
    }

    /// Append one event.
    pub fn record(&self, event: InvocationEvent) {
        self.events.lock().push(event);
    }

    /// Copy of all events so far.
    pub fn snapshot(&self) -> Vec<InvocationEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// `true` when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Clear all events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Summarise, optionally filtered by service name.
    pub fn summary(&self, service: Option<&str>) -> MonitorSummary {
        let events = self.events.lock();
        let mut s = MonitorSummary {
            invocations: 0,
            faults: 0,
            total_duration: Duration::ZERO,
            bytes_in: 0,
            bytes_out: 0,
            bytes_saved: 0,
            ref_hits: 0,
        };
        for e in events.iter() {
            if let Some(name) = service {
                if e.service != name {
                    continue;
                }
            }
            s.invocations += 1;
            if e.outcome.is_failure() {
                s.faults += 1;
            }
            s.total_duration += e.duration;
            s.bytes_in += e.bytes_in;
            s.bytes_out += e.bytes_out;
            s.bytes_saved += e.bytes_saved;
            s.ref_hits += e.ref_hits;
        }
        s
    }

    /// Per-operation aggregates, optionally filtered by service name
    /// and sorted by operation name. Streaming consumers read chunk
    /// wire costs here (`sendChunk` → bytes per chunk, `DataRef`
    /// substitutions for repeated chunks) without scanning raw events.
    pub fn summary_by_operation(&self, service: Option<&str>) -> Vec<OperationSummary> {
        let events = self.events.lock();
        let mut ops: Vec<&str> = events
            .iter()
            .filter(|e| service.is_none_or(|s| e.service == s))
            .map(|e| e.operation.as_str())
            .collect();
        ops.sort_unstable();
        ops.dedup();

        ops.into_iter()
            .map(|op| {
                let mut s = OperationSummary {
                    operation: op.to_string(),
                    invocations: 0,
                    faults: 0,
                    bytes_in: 0,
                    bytes_out: 0,
                    bytes_saved: 0,
                    ref_hits: 0,
                    total_duration: Duration::ZERO,
                };
                for e in events
                    .iter()
                    .filter(|e| e.operation == op && service.is_none_or(|sv| e.service == sv))
                {
                    s.invocations += 1;
                    if e.outcome.is_failure() {
                        s.faults += 1;
                    }
                    s.bytes_in += e.bytes_in;
                    s.bytes_out += e.bytes_out;
                    s.bytes_saved += e.bytes_saved;
                    s.ref_hits += e.ref_hits;
                    s.total_duration += e.duration;
                }
                s
            })
            .collect()
    }

    /// Per-host aggregates (failure rate, p50/max duration, traffic),
    /// sorted by host name. This is the feed for health-aware host
    /// selection: a host whose failure rate climbs shows up here before
    /// a breaker trips.
    pub fn summary_by_host(&self) -> Vec<HostSummary> {
        let events = self.events.lock();
        let mut hosts: Vec<&str> = events.iter().map(|e| e.host.as_str()).collect();
        hosts.sort_unstable();
        hosts.dedup();

        hosts
            .into_iter()
            .map(|host| {
                let mut durations: Vec<Duration> = Vec::new();
                let mut s = HostSummary {
                    host: host.to_string(),
                    invocations: 0,
                    faults: 0,
                    transport_errors: 0,
                    failure_rate: 0.0,
                    p50_duration: Duration::ZERO,
                    p95_duration: Duration::ZERO,
                    p99_duration: Duration::ZERO,
                    max_duration: Duration::ZERO,
                    bytes_in: 0,
                    bytes_out: 0,
                };
                for e in events.iter().filter(|e| e.host == host) {
                    s.invocations += 1;
                    match &e.outcome {
                        Outcome::Ok => {}
                        Outcome::Fault(_) => s.faults += 1,
                        Outcome::TransportError(_) => s.transport_errors += 1,
                    }
                    durations.push(e.duration);
                    s.max_duration = s.max_duration.max(e.duration);
                    s.bytes_in += e.bytes_in;
                    s.bytes_out += e.bytes_out;
                }
                durations.sort_unstable();
                // Nearest-rank quantiles: ceil(q·n)-th sorted sample.
                // For the median that is index (n-1)/2; `len/2` would
                // be the *upper* median on even samples, biasing p50
                // high (the PR 3 off-by-one).
                s.p50_duration = nearest_rank(&durations, 0.50);
                s.p95_duration = nearest_rank(&durations, 0.95);
                s.p99_duration = nearest_rank(&durations, 0.99);
                s.failure_rate = (s.faults + s.transport_errors) as f64 / s.invocations as f64;
                s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(service: &str, outcome: Outcome) -> InvocationEvent {
        InvocationEvent {
            host: "h".into(),
            service: service.into(),
            operation: "op".into(),
            duration: Duration::from_millis(5),
            bytes_in: 100,
            bytes_out: 50,
            bytes_saved: 0,
            ref_hits: 0,
            outcome,
        }
    }

    #[test]
    fn record_and_snapshot() {
        let log = MonitorLog::new();
        assert!(log.is_empty());
        log.record(event("A", Outcome::Ok));
        log.record(event("B", Outcome::Fault("Server".into())));
        assert_eq!(log.len(), 2);
        assert_eq!(log.snapshot().len(), 2);
    }

    #[test]
    fn summary_totals() {
        let log = MonitorLog::new();
        for _ in 0..3 {
            log.record(event("A", Outcome::Ok));
        }
        log.record(event("A", Outcome::Fault("Server".into())));
        let s = log.summary(None);
        assert_eq!(s.invocations, 4);
        assert_eq!(s.faults, 1);
        assert_eq!(s.bytes_in, 400);
        assert_eq!(s.total_duration, Duration::from_millis(20));
    }

    #[test]
    fn summary_filters_by_service() {
        let log = MonitorLog::new();
        log.record(event("A", Outcome::Ok));
        log.record(event("B", Outcome::Ok));
        assert_eq!(log.summary(Some("A")).invocations, 1);
        assert_eq!(log.summary(Some("C")).invocations, 0);
    }

    #[test]
    fn summary_by_host_aggregates_and_sorts() {
        let log = MonitorLog::new();
        let on = |host: &str, ms: u64, outcome: Outcome| {
            let mut e = event("A", outcome);
            e.host = host.into();
            e.duration = Duration::from_millis(ms);
            log.record(e);
        };
        on("b", 10, Outcome::Ok);
        on("a", 2, Outcome::Ok);
        on("a", 4, Outcome::TransportError("reset".into()));
        on("a", 6, Outcome::Fault("Server".into()));
        on("a", 8, Outcome::Ok);

        let hosts = log.summary_by_host();
        assert_eq!(hosts.len(), 2);
        let a = &hosts[0];
        assert_eq!(a.host, "a");
        assert_eq!(a.invocations, 4);
        assert_eq!(a.faults, 1);
        assert_eq!(a.transport_errors, 1);
        assert!((a.failure_rate - 0.5).abs() < 1e-12);
        // Nearest-rank median of [2,4,6,8] ms is the 2nd sample, 4 ms.
        assert_eq!(a.p50_duration, Duration::from_millis(4));
        assert_eq!(a.max_duration, Duration::from_millis(8));
        let b = &hosts[1];
        assert_eq!(b.host, "b");
        assert!((b.failure_rate - 0.0).abs() < 1e-12);
    }

    #[test]
    fn p50_is_nearest_rank_not_upper_median() {
        // Two wildly different samples: the nearest-rank median is the
        // lower one. The pre-fix `durations[len / 2]` picked the upper
        // (9 ms) — this test fails on that code.
        let log = MonitorLog::new();
        for ms in [1, 9] {
            let mut e = event("A", Outcome::Ok);
            e.duration = Duration::from_millis(ms);
            log.record(e);
        }
        let hosts = log.summary_by_host();
        assert_eq!(hosts[0].p50_duration, Duration::from_millis(1));
        // Odd-length samples agree under both definitions.
        let mut e = event("A", Outcome::Ok);
        e.duration = Duration::from_millis(5);
        log.record(e);
        assert_eq!(
            log.summary_by_host()[0].p50_duration,
            Duration::from_millis(5)
        );
    }

    #[test]
    fn p99_is_nearest_rank_tail() {
        let log = MonitorLog::new();
        for ms in 1..=100 {
            let mut e = event("A", Outcome::Ok);
            e.duration = Duration::from_millis(ms);
            log.record(e);
        }
        let hosts = log.summary_by_host();
        // Nearest-rank p99 of 1..=100 ms is the 99th sample, not max.
        assert_eq!(hosts[0].p99_duration, Duration::from_millis(99));
        assert_eq!(hosts[0].max_duration, Duration::from_millis(100));
        // A single sample is its own p50/p99/max.
        let solo = MonitorLog::new();
        let mut e = event("B", Outcome::Ok);
        e.duration = Duration::from_millis(7);
        solo.record(e);
        let s = &solo.summary_by_host()[0];
        assert_eq!(
            (s.p50_duration, s.p99_duration, s.max_duration),
            (
                Duration::from_millis(7),
                Duration::from_millis(7),
                Duration::from_millis(7)
            )
        );
    }

    #[test]
    fn nearest_rank_boundary_windows() {
        let ms = |v: u64| Duration::from_millis(v);
        // 0 samples: every quantile reads zero instead of panicking.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(nearest_rank(&[], q), Duration::ZERO);
        }
        // 1 sample: it is its own p50/p95/p99 (rank clamps into the
        // sample even when ceil(q·n) rounds to 0).
        let one = [ms(7)];
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(nearest_rank(&one, q), ms(7));
        }
        // 2 samples: the median is the *lower* sample (ceil(1.0) = 1),
        // while p95 and p99 both read the upper one (ceil(1.9) =
        // ceil(1.98) = 2). An interpolating or upper-median definition
        // would disagree on at least one of these.
        let two = [ms(1), ms(9)];
        assert_eq!(nearest_rank(&two, 0.50), ms(1));
        assert_eq!(nearest_rank(&two, 0.95), ms(9));
        assert_eq!(nearest_rank(&two, 0.99), ms(9));
    }

    #[test]
    fn host_summary_tail_quantiles_on_tiny_windows() {
        // 1-sample window: p50 = p95 = p99 = max.
        let log = MonitorLog::new();
        let mut e = event("A", Outcome::Ok);
        e.duration = Duration::from_millis(3);
        log.record(e);
        let s = &log.summary_by_host()[0];
        assert_eq!(s.p50_duration, Duration::from_millis(3));
        assert_eq!(s.p95_duration, Duration::from_millis(3));
        assert_eq!(s.p99_duration, Duration::from_millis(3));

        // 2-sample window: p50 takes the lower sample, p95/p99 the
        // upper.
        let mut e = event("A", Outcome::Ok);
        e.duration = Duration::from_millis(11);
        log.record(e);
        let s = &log.summary_by_host()[0];
        assert_eq!(s.p50_duration, Duration::from_millis(3));
        assert_eq!(s.p95_duration, Duration::from_millis(11));
        assert_eq!(s.p99_duration, Duration::from_millis(11));
    }

    #[test]
    fn p95_separates_from_p99_at_scale() {
        let log = MonitorLog::new();
        for ms in 1..=100 {
            let mut e = event("A", Outcome::Ok);
            e.duration = Duration::from_millis(ms);
            log.record(e);
        }
        let s = &log.summary_by_host()[0];
        assert_eq!(s.p95_duration, Duration::from_millis(95));
        assert_eq!(s.p99_duration, Duration::from_millis(99));
    }

    #[test]
    fn transport_errors_count_as_failures_in_summary() {
        let log = MonitorLog::new();
        log.record(event("A", Outcome::TransportError("lost".into())));
        assert_eq!(log.summary(None).faults, 1);
        assert!(Outcome::TransportError("x".into()).is_failure());
        assert!(!Outcome::Ok.is_failure());
    }

    #[test]
    fn clear_resets() {
        let log = MonitorLog::new();
        log.record(event("A", Outcome::Ok));
        log.clear();
        assert!(log.is_empty());
    }
}
