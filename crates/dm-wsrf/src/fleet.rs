//! Federated multi-host fleet (E19): replicated services, a gossiped
//! registry, replica-aware routing, and a simulated autoscaler.
//!
//! The paper's deployment was one host at the Welsh e-Science Centre;
//! DAME (PAPERS.md) is the exemplar for the *federated* version of the
//! same idea — mining services replicated across an organisation's
//! hosts, discovered through partial views rather than one
//! authoritative registry. This module promotes the PR 4
//! single-`Network` world into such a fleet:
//!
//! - **Gossip registry** ([`GossipRegistry`]): every host runs a
//!   [`GossipNode`] holding a *partial view* of the fleet's replicas.
//!   Entries are [`ReplicaRecord`]s carrying a version counter and the
//!   virtual-clock instant of their last heartbeat; deregistration is a
//!   *tombstone* that propagates like any other update, so a drained
//!   replica disappears from every view without a central authority.
//!   Views converge by push-pull anti-entropy rounds over a seeded,
//!   deterministic peer choice (a ring edge plus random fanout, so
//!   convergence is bounded by the ring diameter and typically
//!   logarithmic).
//! - **Replica-aware routing** ([`P2cRouter`]): power-of-two-choices
//!   over [`Network::load_snapshot`] — draw two candidate replicas with
//!   a seeded deterministic generator, send the call to the less loaded
//!   one. Replicas the snapshot has never measured are treated as
//!   *unknown*, ranked after lightly-loaded measured replicas instead
//!   of winning every draw (the cold-replica stampede the registry fix
//!   in [`rank_least_outstanding`] addresses the same way).
//! - **Autoscaler** ([`Autoscaler`]): adds or drains replicas from
//!   queue-depth and p99 signals sampled on the virtual clock, with a
//!   cooldown so one burst does not thrash the fleet.
//! - **[`Fleet`]**: glues the above to a [`Network`] — provisions
//!   replica hosts with the E14 capacity model, joins them to the
//!   gossip mesh, heartbeats them, and routes invocations with
//!   health-aware failover across the ordered replicas (PR 1's
//!   job-migration requirement, fleet-sized).
//!
//! Everything runs on the virtual clock and every random choice is
//! seeded, so fleet runs are byte-identical given the same seed —
//! which is what lets E19 pin p99 and shed-rate against replica count.
//!
//! [`rank_least_outstanding`]: crate::registry::UddiRegistry::rank_least_outstanding

use crate::container::{CapacityConfig, WebService};
use crate::error::{Result, WsError};
use crate::registry::ServiceEntry;
use crate::soap::SoapValue;
use crate::transport::Network;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// SplitMix64: the deterministic generator behind every fleet choice
/// (gossip peers, power-of-two draws, tie-breaks). One stateless
/// function of a counter, so replaying the same seed replays the same
/// sequence regardless of what else the process is doing.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One replica as a gossip view sees it: the published entry plus the
/// metadata anti-entropy needs to order concurrent updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaRecord {
    /// The published service entry (`entry.host` is the replica host).
    pub entry: ServiceEntry,
    /// Version counter, bumped by the origin on every mutation
    /// (publish, heartbeat, deregister). Higher version wins a merge.
    pub version: u64,
    /// Virtual instant of the last heartbeat at the origin.
    pub heartbeat_at: Duration,
    /// Deregistration marker. Tombstones propagate like live records
    /// and win merges at equal version, so a drain is never resurrected
    /// by a stale copy arriving later.
    pub tombstone: bool,
}

impl ReplicaRecord {
    /// The view key: one record per `(service, host)` replica.
    pub fn key(&self) -> String {
        replica_key(&self.entry.name, &self.entry.host)
    }

    /// Merge precedence: higher version wins; at equal version a
    /// tombstone beats a live record (deregistration is sticky), and a
    /// fresher heartbeat beats a staler one.
    fn supersedes(&self, other: &ReplicaRecord) -> bool {
        (self.version, self.tombstone, self.heartbeat_at)
            > (other.version, other.tombstone, other.heartbeat_at)
    }
}

/// View key for one replica of `service` on `host`.
pub fn replica_key(service: &str, host: &str) -> String {
    format!("{service}@{host}")
}

/// One host's partial view of the fleet.
#[derive(Debug, Default)]
pub struct GossipNode {
    host: String,
    view: RwLock<HashMap<String, ReplicaRecord>>,
}

impl GossipNode {
    /// A node for `host` with an empty view.
    pub fn new<H: Into<String>>(host: H) -> GossipNode {
        GossipNode {
            host: host.into(),
            view: RwLock::new(HashMap::new()),
        }
    }

    /// The host this node runs on.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Publish (or re-publish) a replica into this node's view with a
    /// fresh heartbeat. Bumps the version past whatever the view holds,
    /// so a re-publish revives even a tombstoned replica.
    pub fn publish(&self, entry: ServiceEntry, now: Duration) {
        let key = replica_key(&entry.name, &entry.host);
        let mut view = self.view.write();
        let version = view.get(&key).map_or(1, |r| r.version + 1);
        view.insert(
            key,
            ReplicaRecord {
                entry,
                version,
                heartbeat_at: now,
                tombstone: false,
            },
        );
    }

    /// Record a heartbeat for a live replica; returns whether the view
    /// held one. Tombstoned replicas do not heartbeat (a drained host
    /// must re-publish to rejoin).
    pub fn heartbeat(&self, service: &str, host: &str, now: Duration) -> bool {
        let mut view = self.view.write();
        match view.get_mut(&replica_key(service, host)) {
            Some(record) if !record.tombstone => {
                record.version += 1;
                record.heartbeat_at = now;
                true
            }
            _ => false,
        }
    }

    /// Tombstone a replica (deregistration). The tombstone carries a
    /// bumped version so it propagates through gossip and wins merges
    /// against every stale live copy.
    pub fn deregister(&self, service: &str, host: &str, now: Duration) -> bool {
        let mut view = self.view.write();
        match view.get_mut(&replica_key(service, host)) {
            Some(record) => {
                record.version += 1;
                record.tombstone = true;
                record.heartbeat_at = now;
                true
            }
            None => false,
        }
    }

    /// Live replicas of `service` at `now`: not tombstoned and
    /// heartbeated within `freshness` (start-inclusive, end-exclusive —
    /// the registry's half-open convention). Sorted by host, so every
    /// converged node answers in the same order.
    pub fn live_replicas(
        &self,
        service: &str,
        now: Duration,
        freshness: Duration,
    ) -> Vec<ServiceEntry> {
        let mut hits: Vec<ServiceEntry> = self
            .view
            .read()
            .values()
            .filter(|r| {
                !r.tombstone
                    && r.entry.name == service
                    && now.saturating_sub(r.heartbeat_at) < freshness
            })
            .map(|r| r.entry.clone())
            .collect();
        hits.sort_by(|a, b| a.host.cmp(&b.host));
        hits
    }

    /// Hosts of the live replicas of `service` (see
    /// [`live_replicas`](Self::live_replicas)).
    pub fn live_hosts(&self, service: &str, now: Duration, freshness: Duration) -> Vec<String> {
        self.live_replicas(service, now, freshness)
            .into_iter()
            .map(|e| e.host)
            .collect()
    }

    /// Number of records in the view, tombstones included.
    pub fn view_len(&self) -> usize {
        self.view.read().len()
    }

    /// A copy of the whole view (what a push-pull exchange ships).
    pub fn view_snapshot(&self) -> Vec<ReplicaRecord> {
        self.view.read().values().cloned().collect()
    }

    /// Canonical digest of the view for convergence checks: sorted
    /// `(key, version, tombstone)` triples.
    pub fn digest(&self) -> Vec<(String, u64, bool)> {
        let mut digest: Vec<(String, u64, bool)> = self
            .view
            .read()
            .iter()
            .map(|(k, r)| (k.clone(), r.version, r.tombstone))
            .collect();
        digest.sort();
        digest
    }

    /// Merge incoming records: each replaces the local copy only when
    /// it supersedes it. Returns the number applied.
    pub fn merge(&self, records: &[ReplicaRecord]) -> usize {
        let mut view = self.view.write();
        let mut applied = 0;
        for record in records {
            let key = record.key();
            let replace = match view.get(&key) {
                None => true,
                Some(local) => record.supersedes(local),
            };
            if replace {
                view.insert(key, record.clone());
                applied += 1;
            }
        }
        applied
    }
}

/// Anti-entropy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Random peers each node pushes-pulls with per round, in addition
    /// to its ring successor.
    pub fanout: usize,
    /// Seed for the deterministic peer choice.
    pub seed: u64,
    /// Heartbeat freshness horizon for liveness.
    pub freshness: Duration,
}

impl Default for GossipConfig {
    fn default() -> GossipConfig {
        GossipConfig {
            fanout: 2,
            seed: 0xE19,
            freshness: Duration::from_secs(30),
        }
    }
}

/// The fleet's sharded registry: one [`GossipNode`] per member host,
/// synchronised by deterministic push-pull anti-entropy rounds. There
/// is no authoritative copy — any node answers inquiries from its own
/// (possibly stale) view, and [`run_round`](Self::run_round) drives
/// the views together.
pub struct GossipRegistry {
    nodes: RwLock<Vec<Arc<GossipNode>>>,
    config: GossipConfig,
    round: AtomicU64,
}

impl GossipRegistry {
    /// A registry whose mesh members are `hosts`.
    pub fn new(hosts: &[&str], config: GossipConfig) -> GossipRegistry {
        GossipRegistry {
            nodes: RwLock::new(
                hosts
                    .iter()
                    .map(|h| Arc::new(GossipNode::new(*h)))
                    .collect(),
            ),
            config,
            round: AtomicU64::new(0),
        }
    }

    /// The anti-entropy configuration.
    pub fn config(&self) -> GossipConfig {
        self.config
    }

    /// Add a host's node to the mesh (idempotent), returning it.
    pub fn add_node(&self, host: &str) -> Arc<GossipNode> {
        let mut nodes = self.nodes.write();
        if let Some(node) = nodes.iter().find(|n| n.host() == host) {
            return Arc::clone(node);
        }
        let node = Arc::new(GossipNode::new(host));
        nodes.push(Arc::clone(&node));
        node
    }

    /// The node gossiping on `host`, if it is a mesh member.
    pub fn node(&self, host: &str) -> Option<Arc<GossipNode>> {
        self.nodes.read().iter().find(|n| n.host() == host).cloned()
    }

    /// All mesh nodes, in join order.
    pub fn nodes(&self) -> Vec<Arc<GossipNode>> {
        self.nodes.read().clone()
    }

    /// Anti-entropy rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }

    /// One anti-entropy round: every node push-pulls its full view with
    /// its ring successor plus `fanout` seeded-random peers. The ring
    /// edge guarantees any update reaches all N nodes within N − 1
    /// rounds even at fanout 0; the random edges make the typical case
    /// logarithmic. Returns the number of record replacements applied
    /// across the mesh (0 means the round found every view identical).
    pub fn run_round(&self) -> usize {
        let nodes = self.nodes.read().clone();
        let n = nodes.len();
        if n < 2 {
            self.round.fetch_add(1, Ordering::Relaxed);
            return 0;
        }
        let round = self.round.fetch_add(1, Ordering::Relaxed);
        let mut applied = 0;
        for (i, node) in nodes.iter().enumerate() {
            // Ring successor first, then the seeded random peers.
            let mut peers = vec![(i + 1) % n];
            for k in 0..self.config.fanout {
                let draw = splitmix64(
                    self.config
                        .seed
                        .wrapping_add(round.wrapping_mul(0x9E37))
                        .wrapping_add((i as u64) << 24)
                        .wrapping_add(k as u64),
                );
                let peer = (draw % (n as u64 - 1)) as usize;
                // Skip over self: peers draw from the other n-1 nodes.
                let peer = if peer >= i { peer + 1 } else { peer };
                if !peers.contains(&peer) {
                    peers.push(peer);
                }
            }
            for peer in peers {
                let other = &nodes[peer];
                // Push-pull: both sides end the exchange with the union
                // of the two views under the merge precedence.
                applied += other.merge(&node.view_snapshot());
                applied += node.merge(&other.view_snapshot());
            }
        }
        applied
    }

    /// Whether every node currently holds an identical view.
    pub fn converged(&self) -> bool {
        let nodes = self.nodes.read();
        let Some(first) = nodes.first() else {
            return true;
        };
        let digest = first.digest();
        nodes.iter().skip(1).all(|n| n.digest() == digest)
    }

    /// Run rounds until the mesh converges, up to `max_rounds`.
    /// Returns the rounds it took, or `None` if the bound was hit
    /// first.
    pub fn sync(&self, max_rounds: usize) -> Option<usize> {
        for used in 0..=max_rounds {
            if self.converged() {
                return Some(used);
            }
            if used == max_rounds {
                break;
            }
            self.run_round();
        }
        None
    }
}

/// Effective load of every candidate for ranking: measured hosts keep
/// their snapshot figure; hosts the snapshot has never measured are
/// *unknown* and take the lower median of the measured loads, ranked
/// after measured hosts at the same figure. This is the anti-stampede
/// rule: a cold replica joins the rotation at a typical load instead
/// of winning every draw with a fictitious 0.
fn effective_loads(candidates: &[String], loads: &HashMap<String, u64>) -> Vec<(u64, bool)> {
    let mut measured: Vec<u64> = candidates
        .iter()
        .filter_map(|h| loads.get(h).copied())
        .collect();
    measured.sort_unstable();
    let unknown = measured
        .get(measured.len().saturating_sub(1) / 2)
        .copied()
        .unwrap_or(0);
    candidates
        .iter()
        .map(|h| match loads.get(h) {
            Some(&load) => (load, false),
            None => (unknown, true),
        })
        .collect()
}

/// Power-of-two-choices replica router. Each call draws two distinct
/// candidates from a seeded deterministic sequence and routes to the
/// less loaded of the pair (ties broken by another seeded bit), which
/// is within a constant of least-loaded routing while sampling only
/// two queue depths — the classic "power of two choices" result.
///
/// The draw counter makes consecutive calls from one driver thread a
/// reproducible sequence; concurrent callers still get valid draws,
/// but the interleaving (and hence the per-call choices) follows the
/// callers' scheduling. Byte-identical *routing sequences* therefore
/// hold for sequential drivers, while byte-identical *results* hold
/// regardless because every replica serves the same pure operations.
#[derive(Debug)]
pub struct P2cRouter {
    seed: u64,
    draws: AtomicU64,
}

impl P2cRouter {
    /// A router with a fixed seed.
    pub fn new(seed: u64) -> P2cRouter {
        P2cRouter {
            seed,
            draws: AtomicU64::new(0),
        }
    }

    /// The routing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Calls routed so far.
    pub fn draws(&self) -> u64 {
        self.draws.load(Ordering::Relaxed)
    }

    /// Order `candidates` for one call: the power-of-two winner first,
    /// then every other candidate by ascending effective load (unknown
    /// after measured, host name as the total-order tie-break) as the
    /// failover sequence. Candidates are consumed in the given order;
    /// pass a deterministically ordered slice (e.g. a converged gossip
    /// view's host-sorted answer) for reproducible routing.
    pub fn order(&self, candidates: &[String], loads: &HashMap<String, u64>) -> Vec<String> {
        let n = candidates.len();
        let draw = self.draws.fetch_add(1, Ordering::Relaxed);
        if n <= 1 {
            return candidates.to_vec();
        }
        let eff = effective_loads(candidates, loads);
        let r = splitmix64(self.seed.wrapping_add(draw.wrapping_mul(0x9E37_79B9)));
        let i = (r % n as u64) as usize;
        let j = {
            let step = 1 + ((r >> 24) % (n as u64 - 1)) as usize;
            (i + step) % n
        };
        // Less loaded of the two wins; a dead-even pair is split by a
        // seeded coin so repeated ties don't always favour one side.
        let winner = match eff[i].cmp(&eff[j]) {
            std::cmp::Ordering::Less => i,
            std::cmp::Ordering::Greater => j,
            std::cmp::Ordering::Equal => {
                if (r >> 60) & 1 == 0 {
                    i
                } else {
                    j
                }
            }
        };
        let mut rest: Vec<usize> = (0..n).filter(|&k| k != winner).collect();
        rest.sort_by(|&a, &b| {
            eff[a]
                .cmp(&eff[b])
                .then_with(|| candidates[a].cmp(&candidates[b]))
        });
        std::iter::once(winner)
            .chain(rest)
            .map(|k| candidates[k].clone())
            .collect()
    }
}

/// What the autoscaler decided at a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Add a replica.
    Up,
    /// Drain (tombstone) a replica.
    Down,
    /// Leave the fleet as it is.
    Hold,
}

/// Autoscaler thresholds. Signals are sampled by the driver on the
/// virtual clock: queue depth per replica comes from
/// [`Network::load_snapshot`], p99 from the driver's own sojourn
/// samples (the monitor's per-host p99 works too).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalerConfig {
    /// Never drain below this many replicas.
    pub min_replicas: usize,
    /// Never grow beyond this many replicas.
    pub max_replicas: usize,
    /// Scale up when mean in-system requests per replica exceed this.
    pub queue_high: f64,
    /// ... or when the sampled p99 exceeds this.
    pub p99_high: Duration,
    /// Drain when queue depth per replica falls below this *and* p99
    /// sits below half of `p99_high`.
    pub queue_low: f64,
    /// Minimum virtual time between scale actions (anti-thrash).
    pub cooldown: Duration,
}

impl Default for AutoscalerConfig {
    fn default() -> AutoscalerConfig {
        AutoscalerConfig {
            min_replicas: 1,
            max_replicas: 16,
            queue_high: 4.0,
            p99_high: Duration::from_millis(20),
            queue_low: 1.0,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// One logged autoscaler decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleEvent {
    /// Virtual instant of the tick.
    pub at: Duration,
    /// The decision.
    pub action: ScaleAction,
    /// Replica count *before* the action was applied.
    pub replicas: usize,
    /// Mean in-system requests per replica at the tick.
    pub queue_per_replica: f64,
    /// Sampled p99 at the tick.
    pub p99: Duration,
}

/// Queue-depth + p99 driven scaler on the virtual clock.
#[derive(Debug)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    last_action_at: Mutex<Option<Duration>>,
    log: Mutex<Vec<ScaleEvent>>,
}

impl Autoscaler {
    /// A scaler with the given thresholds.
    pub fn new(config: AutoscalerConfig) -> Autoscaler {
        Autoscaler {
            config,
            last_action_at: Mutex::new(None),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The thresholds in force.
    pub fn config(&self) -> AutoscalerConfig {
        self.config
    }

    /// Decide at virtual instant `now` with `replicas` active, a mean
    /// of `queue_per_replica` requests in system per replica, and a
    /// sampled `p99`. Up/Down decisions are logged and start the
    /// cooldown; Holds inside the cooldown window are not logged.
    pub fn decide(
        &self,
        now: Duration,
        replicas: usize,
        queue_per_replica: f64,
        p99: Duration,
    ) -> ScaleAction {
        let mut last = self.last_action_at.lock();
        if let Some(at) = *last {
            if now.saturating_sub(at) < self.config.cooldown {
                return ScaleAction::Hold;
            }
        }
        let c = &self.config;
        let action = if (queue_per_replica > c.queue_high || p99 > c.p99_high)
            && replicas < c.max_replicas
        {
            ScaleAction::Up
        } else if queue_per_replica < c.queue_low
            && p99 < c.p99_high / 2
            && replicas > c.min_replicas
        {
            ScaleAction::Down
        } else {
            ScaleAction::Hold
        };
        if action != ScaleAction::Hold {
            *last = Some(now);
        }
        self.log.lock().push(ScaleEvent {
            at: now,
            action,
            replicas,
            queue_per_replica,
            p99,
        });
        action
    }

    /// Every logged decision, in tick order.
    pub fn history(&self) -> Vec<ScaleEvent> {
        self.log.lock().clone()
    }
}

/// How a [`Fleet`] provisions one replicated service.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The replicated service's name (and gossip inquiry key).
    pub service: String,
    /// Replica hosts are named `{host_prefix}-{n}`.
    pub host_prefix: String,
    /// E14 capacity model installed on every replica host.
    pub capacity: CapacityConfig,
    /// Anti-entropy parameters for the fleet's registry.
    pub gossip: GossipConfig,
    /// Seed of the power-of-two-choices router.
    pub routing_seed: u64,
}

impl FleetConfig {
    /// A config for `service` with defaults everywhere else.
    pub fn new<S: Into<String>>(service: S) -> FleetConfig {
        let service = service.into();
        FleetConfig {
            host_prefix: format!("fleet-{}", service.to_ascii_lowercase()),
            service,
            capacity: CapacityConfig::default(),
            gossip: GossipConfig::default(),
            routing_seed: 0xE19,
        }
    }
}

/// Builds a fresh instance of the replicated service for each replica
/// host (each replica gets its own state, as separate deployments
/// would).
pub type ServiceFactory = Arc<dyn Fn() -> Arc<dyn WebService> + Send + Sync>;

/// A replicated service on a simulated multi-host fleet: provisions
/// replica hosts on the [`Network`] with the E14 capacity model, joins
/// each to the gossip mesh, heartbeats them, routes invocations with
/// power-of-two-choices, and fails over across the ordered replicas.
pub struct Fleet {
    network: Arc<Network>,
    config: FleetConfig,
    factory: ServiceFactory,
    gossip: Arc<GossipRegistry>,
    router: P2cRouter,
    active: Mutex<Vec<String>>,
    spawned: AtomicU64,
    last_served: Mutex<Option<String>>,
}

impl Fleet {
    /// A fleet with no replicas yet. `factory` builds the service
    /// instance deployed on each replica host.
    pub fn new(network: Arc<Network>, config: FleetConfig, factory: ServiceFactory) -> Fleet {
        let gossip = Arc::new(GossipRegistry::new(&[], config.gossip));
        Fleet {
            router: P2cRouter::new(config.routing_seed),
            network,
            config,
            factory,
            gossip,
            active: Mutex::new(Vec::new()),
            spawned: AtomicU64::new(0),
            last_served: Mutex::new(None),
        }
    }

    /// The fleet's gossiped registry.
    pub fn gossip(&self) -> &GossipRegistry {
        &self.gossip
    }

    /// The fleet's router.
    pub fn router(&self) -> &P2cRouter {
        &self.router
    }

    /// Hosts currently serving (not drained), in provisioning order.
    pub fn active_replicas(&self) -> Vec<String> {
        self.active.lock().clone()
    }

    /// The replica that served the most recent successful
    /// [`invoke`](Self::invoke).
    pub fn last_served(&self) -> Option<String> {
        self.last_served.lock().clone()
    }

    /// Provision one replica at virtual instant `now`: add the host,
    /// deploy a fresh service instance, install the capacity model,
    /// join the gossip mesh, and publish + heartbeat the replica on its
    /// own node (the partial view the rest of the mesh will pull).
    /// Returns the new host's name.
    pub fn add_replica(&self, now: Duration) -> String {
        let id = self.spawned.fetch_add(1, Ordering::Relaxed);
        let host = format!("{}-{id}", self.config.host_prefix);
        let container = self.network.add_host(&host);
        container.deploy((self.factory)());
        container.set_capacity(Some(self.config.capacity));
        let node = self.gossip.add_node(&host);
        node.publish(
            ServiceEntry {
                name: self.config.service.clone(),
                host: host.clone(),
                wsdl_url: format!("http://{host}/axis/{}?wsdl", self.config.service),
                categories: vec!["datamining".into(), "fleet".into()],
                description: format!("fleet replica {id} of {}", self.config.service),
            },
            now,
        );
        self.active.lock().push(host.clone());
        host
    }

    /// Drain the most recently provisioned active replica: tombstone it
    /// on its own gossip node (the deregistration propagates with the
    /// next rounds) and stop routing to it. The host and its container
    /// stay up to finish in-flight work. Returns the drained host.
    pub fn drain_replica(&self, now: Duration) -> Option<String> {
        let host = self.active.lock().pop()?;
        if let Some(node) = self.gossip.node(&host) {
            node.deregister(&self.config.service, &host, now);
        }
        Some(host)
    }

    /// Heartbeat every active replica on its own gossip node at `now`.
    pub fn heartbeat_all(&self, now: Duration) {
        for host in self.active.lock().iter() {
            if let Some(node) = self.gossip.node(host) {
                node.heartbeat(&self.config.service, host, now);
            }
        }
    }

    /// Route one call at `now`: inquire a seeded-chosen gossip node's
    /// partial view for live replicas (so routing sees exactly what a
    /// real member would, staleness included), then order them
    /// power-of-two-choices over the network's load snapshot. The
    /// first host is the pick; the rest are the failover sequence.
    pub fn route(&self, now: Duration) -> Vec<String> {
        let nodes = self.gossip.nodes();
        if nodes.is_empty() {
            return Vec::new();
        }
        // Consult the node a seeded draw lands on — a different member
        // each call, like real clients spread across the mesh.
        let pick = splitmix64(
            self.config
                .routing_seed
                .wrapping_add(0xC0FFEE)
                .wrapping_add(self.router.draws()),
        ) % nodes.len() as u64;
        let candidates = nodes[pick as usize].live_hosts(
            &self.config.service,
            now,
            self.config.gossip.freshness,
        );
        self.router
            .order(&candidates, &self.network.load_snapshot())
    }

    /// Invoke `operation` on the fleet at `now`: route, then try the
    /// ordered replicas, migrating past transport failures and
    /// saturated (`ServerBusy`) hosts — PR 1's health-aware failover at
    /// fleet scale. Application faults surface immediately.
    pub fn invoke(
        &self,
        now: Duration,
        operation: &str,
        args: Vec<(String, SoapValue)>,
    ) -> Result<SoapValue> {
        let hosts = self.route(now);
        if hosts.is_empty() {
            return Err(WsError::NotFound(format!(
                "no live replicas of {:?} in the gossip view",
                self.config.service
            )));
        }
        let mut last_err = None;
        for host in &hosts {
            match self
                .network
                .invoke(host, &self.config.service, operation, args.clone())
            {
                Ok(value) => {
                    *self.last_served.lock() = Some(host.clone());
                    return Ok(value);
                }
                Err(err) if err.is_retryable() || err.is_server_busy() => last_err = Some(err),
                Err(err) => return Err(err),
            }
        }
        Err(last_err.expect("at least one replica attempted"))
    }

    /// One autoscaler tick at `now`: sample mean in-system depth per
    /// active replica from the load snapshot, let `scaler` decide with
    /// the driver-sampled `p99`, and apply the action (provision or
    /// drain). Returns the decision.
    pub fn autoscale_tick(&self, now: Duration, scaler: &Autoscaler, p99: Duration) -> ScaleAction {
        let replicas = self.active_replicas();
        let loads = self.network.load_snapshot();
        let depth: u64 = replicas
            .iter()
            .map(|h| loads.get(h).copied().unwrap_or(0))
            .sum();
        let queue_per_replica = if replicas.is_empty() {
            0.0
        } else {
            depth as f64 / replicas.len() as f64
        };
        let action = scaler.decide(now, replicas.len(), queue_per_replica, p99);
        match action {
            ScaleAction::Up => {
                self.add_replica(now);
            }
            ScaleAction::Down => {
                self.drain_replica(now);
            }
            ScaleAction::Hold => {}
        }
        action
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("service", &self.config.service)
            .field("active", &self.active_replicas())
            .field("rounds", &self.gossip.rounds())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(service: &str, host: &str) -> ServiceEntry {
        ServiceEntry {
            name: service.to_string(),
            host: host.to_string(),
            wsdl_url: format!("http://{host}/axis/{service}?wsdl"),
            categories: vec!["datamining".into()],
            description: String::new(),
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Low-entropy counters still spread across the range.
        let a = splitmix64(0) % 1000;
        let b = splitmix64(1) % 1000;
        assert_ne!(a, b);
    }

    #[test]
    fn merge_precedence_version_then_tombstone_then_heartbeat() {
        let node = GossipNode::new("a");
        node.publish(entry("Mine", "h1"), Duration::from_secs(1));
        let base = node.view_snapshot().pop().unwrap();

        // Higher version always wins.
        let mut newer = base.clone();
        newer.version += 1;
        newer.heartbeat_at = Duration::ZERO;
        assert_eq!(node.merge(&[newer.clone()]), 1);
        // Same version: a stale copy does not reapply.
        assert_eq!(node.merge(&[newer.clone()]), 0);
        // Same version, tombstone wins.
        let mut dead = newer.clone();
        dead.tombstone = true;
        assert_eq!(node.merge(&[dead.clone()]), 1);
        // The live copy at the same version cannot resurrect it.
        assert_eq!(node.merge(&[newer]), 0);
        // Same version + tombstone, fresher heartbeat wins.
        let mut fresher = dead;
        fresher.heartbeat_at += Duration::from_secs(5);
        assert_eq!(node.merge(&[fresher]), 1);
    }

    #[test]
    fn gossip_converges_and_tombstones_propagate() {
        let hosts = ["h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"];
        let reg = GossipRegistry::new(&hosts, GossipConfig::default());
        let now = Duration::from_secs(1);
        // Each node learns only of its own replica.
        for host in hosts {
            reg.node(host).unwrap().publish(entry("Mine", host), now);
        }
        assert!(!reg.converged());
        // The ring edge alone bounds convergence by N-1 rounds; with
        // fanout 2 push-pull it's far faster.
        let rounds = reg
            .sync(hosts.len())
            .expect("must converge within N rounds");
        assert!(rounds >= 1);
        for host in hosts {
            let view = reg.node(host).unwrap();
            assert_eq!(view.view_len(), hosts.len());
            assert_eq!(
                view.live_hosts("Mine", now, Duration::from_secs(30)).len(),
                8
            );
        }

        // Deregister on ONE node; the tombstone reaches every view.
        reg.node("h3")
            .unwrap()
            .deregister("Mine", "h3", now + Duration::from_secs(1));
        reg.sync(hosts.len())
            .expect("tombstone propagation converges");
        for host in hosts {
            let live = reg
                .node(host)
                .unwrap()
                .live_hosts("Mine", now, Duration::from_secs(30));
            assert_eq!(
                live.len(),
                7,
                "node {host} still routes to the drained replica"
            );
            assert!(!live.contains(&"h3".to_string()));
        }
    }

    #[test]
    fn gossip_rounds_are_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let hosts = ["a", "b", "c", "d", "e"];
            let reg = GossipRegistry::new(
                &hosts,
                GossipConfig {
                    seed,
                    ..GossipConfig::default()
                },
            );
            for host in hosts {
                reg.node(host)
                    .unwrap()
                    .publish(entry("Mine", host), Duration::from_secs(1));
            }
            let mut deltas = Vec::new();
            for _ in 0..4 {
                deltas.push(reg.run_round());
            }
            (deltas, reg.node("a").unwrap().digest())
        };
        assert_eq!(run(7), run(7));
        let (deltas_a, _) = run(7);
        let (deltas_b, _) = run(8);
        // Different seeds walk different peer sequences (delta traces
        // differ), yet both converge.
        assert!(deltas_a != deltas_b || deltas_a.iter().sum::<usize>() > 0);
    }

    #[test]
    fn stale_heartbeats_drop_out_of_live_view() {
        let node = GossipNode::new("a");
        node.publish(entry("Mine", "h1"), Duration::from_secs(1));
        let fresh = Duration::from_secs(10);
        assert_eq!(
            node.live_hosts("Mine", Duration::from_secs(5), fresh).len(),
            1
        );
        // Half-open horizon: age == freshness is already stale.
        assert!(node
            .live_hosts("Mine", Duration::from_secs(11), fresh)
            .is_empty());
        assert!(node.heartbeat("Mine", "h1", Duration::from_secs(12)));
        assert_eq!(
            node.live_hosts("Mine", Duration::from_secs(13), fresh)
                .len(),
            1
        );
        // Tombstoned replicas neither heartbeat nor serve.
        node.deregister("Mine", "h1", Duration::from_secs(14));
        assert!(!node.heartbeat("Mine", "h1", Duration::from_secs(15)));
        assert!(node
            .live_hosts("Mine", Duration::from_secs(15), fresh)
            .is_empty());
        // Re-publishing revives with a version past the tombstone's.
        node.publish(entry("Mine", "h1"), Duration::from_secs(16));
        assert_eq!(
            node.live_hosts("Mine", Duration::from_secs(17), fresh)
                .len(),
            1
        );
    }

    #[test]
    fn p2c_prefers_the_less_loaded_of_the_pair() {
        let router = P2cRouter::new(42);
        let candidates: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let loads: HashMap<String, u64> = [
            ("a".to_string(), 50),
            ("b".to_string(), 0),
            ("c".to_string(), 50),
        ]
        .into();
        // Over many draws the idle replica must win far more often than
        // a loaded one — every pair containing "b" routes to "b".
        let mut wins: HashMap<String, u32> = HashMap::new();
        for _ in 0..300 {
            let order = router.order(&candidates, &loads);
            *wins.entry(order[0].clone()).or_default() += 1;
        }
        let b_wins = wins.get("b").copied().unwrap_or(0);
        assert!(
            b_wins > 150,
            "idle replica won only {b_wins}/300 draws: {wins:?}"
        );
    }

    #[test]
    fn p2c_sequences_are_byte_identical_for_a_seed() {
        let drive = |seed: u64| {
            let router = P2cRouter::new(seed);
            let candidates: Vec<String> = (0..6).map(|i| format!("h{i}")).collect();
            let loads: HashMap<String, u64> = candidates
                .iter()
                .enumerate()
                .map(|(i, h)| (h.clone(), i as u64))
                .collect();
            (0..64)
                .map(|_| router.order(&candidates, &loads))
                .collect::<Vec<_>>()
        };
        assert_eq!(drive(9), drive(9));
        assert_ne!(drive(9), drive(10), "seeds must actually steer the draws");
    }

    #[test]
    fn unknown_replicas_do_not_stampede() {
        let router = P2cRouter::new(7);
        let candidates: Vec<String> = vec!["cold".into(), "warm".into(), "hot".into()];
        // "cold" was never measured; measured loads are 2 and 10.
        let loads: HashMap<String, u64> = [("warm".to_string(), 2), ("hot".to_string(), 10)].into();
        let mut cold_wins = 0;
        for _ in 0..300 {
            if router.order(&candidates, &loads)[0] == "cold" {
                cold_wins += 1;
            }
        }
        // Unknown takes the lower median (2) and loses the tie to the
        // measured host, so the cold replica never sweeps the fleet —
        // it only beats the overloaded one.
        assert!(
            cold_wins < 150,
            "cold replica won {cold_wins}/300 draws despite unknown load"
        );
        assert!(cold_wins > 0, "unknown replicas must still take traffic");
    }

    #[test]
    fn autoscaler_scales_on_signals_with_cooldown() {
        let scaler = Autoscaler::new(AutoscalerConfig {
            min_replicas: 1,
            max_replicas: 4,
            queue_high: 4.0,
            p99_high: Duration::from_millis(20),
            queue_low: 1.0,
            cooldown: Duration::from_secs(1),
        });
        let ms = Duration::from_millis;
        // Deep queues scale up.
        assert_eq!(scaler.decide(ms(0), 2, 9.0, ms(5)), ScaleAction::Up);
        // Inside the cooldown: hold, whatever the signals say.
        assert_eq!(scaler.decide(ms(500), 3, 9.0, ms(50)), ScaleAction::Hold);
        // p99 alone also triggers after the cooldown.
        assert_eq!(scaler.decide(ms(1500), 3, 1.5, ms(50)), ScaleAction::Up);
        // Quiet fleet drains...
        assert_eq!(scaler.decide(ms(3000), 4, 0.2, ms(3)), ScaleAction::Down);
        // ...but never below the floor.
        assert_eq!(scaler.decide(ms(5000), 1, 0.0, ms(0)), ScaleAction::Hold);
        // Nor above the ceiling.
        assert_eq!(scaler.decide(ms(7000), 4, 99.0, ms(99)), ScaleAction::Hold);
        let history = scaler.history();
        assert_eq!(
            history
                .iter()
                .filter(|e| e.action == ScaleAction::Up)
                .count(),
            2
        );
        assert_eq!(
            history
                .iter()
                .filter(|e| e.action == ScaleAction::Down)
                .count(),
            1
        );
    }

    #[test]
    fn fleet_provisions_routes_and_drains() {
        use crate::container::test_support::EchoService;
        let network = Arc::new(Network::new());
        let mut config = FleetConfig::new("Echo");
        config.capacity = CapacityConfig {
            workers: 2,
            queue_limit: Some(8),
            service_time: Duration::from_millis(1),
        };
        let fleet = Fleet::new(
            Arc::clone(&network),
            config,
            Arc::new(|| Arc::new(EchoService)),
        );
        let now = network.now();
        let h0 = fleet.add_replica(now);
        let h1 = fleet.add_replica(now);
        let h2 = fleet.add_replica(now);
        assert_eq!(
            fleet.active_replicas(),
            [h0.clone(), h1.clone(), h2.clone()]
        );
        fleet.gossip().sync(8).expect("fleet mesh converges");

        let out = fleet
            .invoke(
                network.now(),
                "echo",
                vec![("message".into(), SoapValue::Text("hi".into()))],
            )
            .unwrap();
        assert_eq!(out, SoapValue::Text("hi".into()));
        assert!(fleet.last_served().is_some());

        // Drain the newest replica; after propagation no route lists it.
        assert_eq!(fleet.drain_replica(network.now()), Some(h2.clone()));
        fleet.gossip().sync(8).expect("drain propagates");
        for _ in 0..20 {
            let route = fleet.route(network.now());
            assert!(
                !route.contains(&h2),
                "drained replica still routed: {route:?}"
            );
            assert!(!route.is_empty());
        }
    }

    #[test]
    fn fleet_fails_over_dead_replicas() {
        use crate::container::test_support::EchoService;
        let network = Arc::new(Network::new());
        let fleet = Fleet::new(
            Arc::clone(&network),
            FleetConfig::new("Echo"),
            Arc::new(|| Arc::new(EchoService)),
        );
        let now = network.now();
        let h0 = fleet.add_replica(now);
        let _h1 = fleet.add_replica(now);
        fleet.gossip().sync(4).unwrap();
        network.set_host_down(&h0, true);
        // Every call still completes via the surviving replica.
        for _ in 0..10 {
            let out = fleet
                .invoke(
                    network.now(),
                    "echo",
                    vec![("message".into(), SoapValue::Text("x".into()))],
                )
                .unwrap();
            assert_eq!(out, SoapValue::Text("x".into()));
            assert_ne!(fleet.last_served().as_deref(), Some(h0.as_str()));
        }
    }
}
