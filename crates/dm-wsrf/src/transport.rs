//! The simulated network.
//!
//! The paper's services ran over HTTP on a 1 Gb/s LAN (§5.1). This
//! module provides the equivalent substrate: named hosts, each with a
//! service container; invocation serialises the call to envelope XML,
//! charges a latency + bandwidth cost against a **virtual clock**,
//! dispatches, and charges the response the same way. A fault plan
//! injects transport failures for the fault-tolerance experiment (E9).
//!
//! Virtual time (not `thread::sleep`) keeps the benchmarks fast and
//! deterministic while preserving the *shape* of network costs: a
//! 2 MB ARFF dataset genuinely costs ~16 ms of virtual time at 1 Gb/s
//! while a 200-byte control message costs ~the base latency.

use crate::container::ServiceContainer;
use crate::error::{Result, WsError};
use crate::soap::{SoapCall, SoapResponse, SoapValue};
use crate::wsdl::WsdlDocument;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Link cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// One-way base latency per message.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl Default for NetworkConfig {
    /// The paper's testbed: 1 Gb/s LAN, sub-millisecond latency.
    fn default() -> Self {
        NetworkConfig {
            latency: Duration::from_micros(500),
            bandwidth_bytes_per_sec: 125_000_000.0, // 1 Gb/s
        }
    }
}

impl NetworkConfig {
    /// Virtual transmission time of a message of `bytes`.
    pub fn transmit_time(&self, bytes: usize) -> Duration {
        let transfer = bytes as f64 / self.bandwidth_bytes_per_sec;
        self.latency + Duration::from_secs_f64(transfer)
    }
}

/// Failure-injection plan for E9: per-host probability of a transport
/// failure on each message, with a seeded RNG for determinism.
#[derive(Debug)]
struct FaultPlan {
    probability: HashMap<String, f64>,
    rng: StdRng,
    /// Hosts currently marked down (fail every message).
    down: Vec<String>,
}

/// The simulated network: hosts, cost model, virtual clock, fault plan.
pub struct Network {
    config: NetworkConfig,
    hosts: RwLock<HashMap<String, Arc<ServiceContainer>>>,
    virtual_nanos: AtomicU64,
    faults: Mutex<FaultPlan>,
}

impl Network {
    /// Create a network with the default (1 Gb/s) cost model.
    pub fn new() -> Network {
        Network::with_config(NetworkConfig::default())
    }

    /// Create with an explicit cost model.
    pub fn with_config(config: NetworkConfig) -> Network {
        Network {
            config,
            hosts: RwLock::new(HashMap::new()),
            virtual_nanos: AtomicU64::new(0),
            faults: Mutex::new(FaultPlan {
                probability: HashMap::new(),
                rng: StdRng::seed_from_u64(0xFAE),
                down: Vec::new(),
            }),
        }
    }

    /// The cost model in force.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Add (or fetch) a host and its container.
    pub fn add_host(&self, name: &str) -> Arc<ServiceContainer> {
        let mut hosts = self.hosts.write();
        Arc::clone(
            hosts
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(ServiceContainer::new(name))),
        )
    }

    /// Look up an existing host.
    pub fn host(&self, name: &str) -> Result<Arc<ServiceContainer>> {
        self.hosts
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| WsError::UnknownHost(name.to_string()))
    }

    /// All host names, sorted.
    pub fn hosts(&self) -> Vec<String> {
        let mut names: Vec<String> = self.hosts.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Accumulated virtual network time.
    pub fn virtual_time(&self) -> Duration {
        Duration::from_nanos(self.virtual_nanos.load(Ordering::Relaxed))
    }

    /// Reset the virtual clock (between benchmark runs).
    pub fn reset_virtual_time(&self) {
        self.virtual_nanos.store(0, Ordering::Relaxed);
    }

    fn charge(&self, bytes: usize) -> Duration {
        let cost = self.config.transmit_time(bytes);
        self.virtual_nanos.fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
        cost
    }

    /// Set a host's per-message failure probability (0 clears).
    pub fn set_failure_probability(&self, host: &str, p: f64) {
        let mut plan = self.faults.lock();
        if p <= 0.0 {
            plan.probability.remove(host);
        } else {
            plan.probability.insert(host.to_string(), p.min(1.0));
        }
    }

    /// Reseed the fault RNG (determinism between runs).
    pub fn reseed_faults(&self, seed: u64) {
        self.faults.lock().rng = StdRng::seed_from_u64(seed);
    }

    /// Mark a host down (all messages fail) or back up.
    pub fn set_host_down(&self, host: &str, down: bool) {
        let mut plan = self.faults.lock();
        if down {
            if !plan.down.iter().any(|h| h == host) {
                plan.down.push(host.to_string());
            }
        } else {
            plan.down.retain(|h| h != host);
        }
    }

    fn check_fault(&self, host: &str) -> Result<()> {
        let mut plan = self.faults.lock();
        if plan.down.iter().any(|h| h == host) {
            return Err(WsError::Transport(format!("host {host} is down")));
        }
        if let Some(&p) = plan.probability.get(host) {
            if plan.rng.random_bool(p) {
                return Err(WsError::Transport(format!(
                    "connection to {host} reset (injected fault)"
                )));
            }
        }
        Ok(())
    }

    /// Invoke `service.operation(args)` on `host` over the full wire
    /// path: envelope encode → transmit → dispatch → transmit → decode.
    pub fn invoke(
        &self,
        host: &str,
        service: &str,
        operation: &str,
        args: Vec<(String, SoapValue)>,
    ) -> Result<SoapValue> {
        let container = self.host(host)?;
        self.check_fault(host)?;
        let call = SoapCall {
            service: service.to_string(),
            operation: operation.to_string(),
            args,
        };
        let request_xml = call.to_envelope();
        self.charge(request_xml.len());
        let response_xml = container.dispatch_envelope(&request_xml);
        self.check_fault(host)?;
        self.charge(response_xml.len());
        SoapResponse::from_envelope(&response_xml)?.into_result()
    }

    /// Fetch a deployed service's WSDL from a host (what a `?wsdl` HTTP
    /// request did on the paper's testbed), charging transport.
    pub fn fetch_wsdl(&self, host: &str, service: &str) -> Result<WsdlDocument> {
        let container = self.host(host)?;
        self.check_fault(host)?;
        let wsdl = container.wsdl_of(service)?;
        self.charge(wsdl.to_xml().len());
        Ok(wsdl)
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::test_support::EchoService;

    fn network_with_echo() -> Network {
        let net = Network::new();
        let host = net.add_host("host-a");
        host.deploy(Arc::new(EchoService));
        net
    }

    #[test]
    fn invoke_over_the_wire() {
        let net = network_with_echo();
        let result = net
            .invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Text("hello".into()))],
            )
            .unwrap();
        assert_eq!(result, SoapValue::Text("hello".into()));
    }

    #[test]
    fn virtual_clock_advances_with_payload() {
        let net = network_with_echo();
        net.invoke(
            "host-a",
            "Echo",
            "echo",
            vec![("message".into(), SoapValue::Text("x".into()))],
        )
        .unwrap();
        let small = net.virtual_time();
        assert!(small >= Duration::from_micros(1000), "two messages, two latencies");

        net.reset_virtual_time();
        net.invoke(
            "host-a",
            "Echo",
            "echo",
            vec![("message".into(), SoapValue::Text("y".repeat(10_000_000)))],
        )
        .unwrap();
        let big = net.virtual_time();
        // 20 MB round trip at 1 Gb/s ≈ 160 ms ≫ the small call.
        assert!(big > small * 10, "big {big:?} vs small {small:?}");
    }

    #[test]
    fn transmit_time_formula() {
        let cfg = NetworkConfig::default();
        let t = cfg.transmit_time(125_000_000); // 1 second of data
        assert!(t >= Duration::from_secs(1));
        assert!(t < Duration::from_millis(1002));
    }

    #[test]
    fn unknown_host_rejected() {
        let net = network_with_echo();
        assert!(matches!(
            net.invoke("nowhere", "Echo", "echo", vec![]),
            Err(WsError::UnknownHost(_))
        ));
    }

    #[test]
    fn faults_surface_as_soap_faults() {
        let net = network_with_echo();
        let err = net.invoke("host-a", "Echo", "fail", vec![]).unwrap_err();
        assert!(matches!(err, WsError::Fault { code, .. } if code == "Server"));
        let err2 = net.invoke("host-a", "Nope", "x", vec![]).unwrap_err();
        assert!(matches!(err2, WsError::Fault { code, .. } if code == "Client"));
    }

    #[test]
    fn host_down_fails_transport() {
        let net = network_with_echo();
        net.set_host_down("host-a", true);
        assert!(matches!(
            net.invoke("host-a", "Echo", "echo", vec![]),
            Err(WsError::Transport(_))
        ));
        net.set_host_down("host-a", false);
        assert!(net
            .invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Null)]
            )
            .is_ok());
    }

    #[test]
    fn probabilistic_faults_fire_roughly_at_rate() {
        let net = network_with_echo();
        net.set_failure_probability("host-a", 0.5);
        net.reseed_faults(42);
        let mut failures = 0;
        for _ in 0..200 {
            if net
                .invoke(
                    "host-a",
                    "Echo",
                    "echo",
                    vec![("message".into(), SoapValue::Null)],
                )
                .is_err()
            {
                failures += 1;
            }
        }
        assert!((60..=180).contains(&failures), "failures {failures}");
        net.set_failure_probability("host-a", 0.0);
        assert!(net
            .invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Null)]
            )
            .is_ok());
    }

    #[test]
    fn wsdl_fetch_charges_transport() {
        let net = network_with_echo();
        net.reset_virtual_time();
        let wsdl = net.fetch_wsdl("host-a", "Echo").unwrap();
        assert_eq!(wsdl.service, "Echo");
        assert!(net.virtual_time() > Duration::ZERO);
    }

    #[test]
    fn concurrent_invocations_are_safe_and_complete() {
        // The container and network are shared across workflow worker
        // threads; hammer one service from eight threads.
        let net = std::sync::Arc::new(network_with_echo());
        let mut handles = Vec::new();
        for t in 0..8 {
            let net = std::sync::Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let msg = format!("t{t}-{i}");
                    let out = net
                        .invoke(
                            "host-a",
                            "Echo",
                            "echo",
                            vec![("message".into(), SoapValue::Text(msg.clone()))],
                        )
                        .unwrap();
                    assert_eq!(out, SoapValue::Text(msg));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(net.host("host-a").unwrap().monitor().len(), 400);
    }

    #[test]
    fn add_host_is_idempotent() {
        let net = Network::new();
        let a = net.add_host("h");
        let b = net.add_host("h");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(net.hosts(), vec!["h".to_string()]);
    }
}
