//! The simulated network.
//!
//! The paper's services ran over HTTP on a 1 Gb/s LAN (§5.1). This
//! module provides the equivalent substrate: named hosts, each with a
//! service container; invocation serialises the call to envelope XML,
//! charges a latency + bandwidth cost against a **virtual clock**,
//! dispatches, and charges the response the same way.
//!
//! A scripted per-host fault engine drives the fault-tolerance
//! experiment (E9): random per-message failures, hosts marked down,
//! outage windows and latency spikes scheduled on the virtual clock,
//! square-wave "flapping", and response-envelope corruption that
//! surfaces as decode errors. Failures distinguish the **request leg**
//! ([`WsError::Transport`] — the service never ran) from the
//! **response leg** ([`WsError::ResponseLost`] — the service may have
//! executed before the reply was lost), which is what retry layers
//! need to account for duplicated work.
//!
//! Virtual time (not `thread::sleep`) keeps the benchmarks fast and
//! deterministic while preserving the *shape* of network costs: a
//! 2 MB ARFF dataset genuinely costs ~16 ms of virtual time at 1 Gb/s
//! while a 200-byte control message costs ~the base latency.

use crate::container::{Admission, ServiceContainer};
use crate::dataplane::{content_ref, AttachmentStore, Payload};
use crate::error::{Result, WsError, SERVER_BUSY_CODE};
use crate::monitor::{InvocationEvent, MonitorLog, Outcome};
use crate::soap::{SoapCall, SoapResponse, SoapValue};
use crate::trace::{self, SpanKind, Tracer};
use crate::wsdl::WsdlDocument;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Link cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// One-way base latency per message.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl Default for NetworkConfig {
    /// The paper's testbed: 1 Gb/s LAN, sub-millisecond latency.
    fn default() -> Self {
        NetworkConfig {
            latency: Duration::from_micros(500),
            bandwidth_bytes_per_sec: 125_000_000.0, // 1 Gb/s
        }
    }
}

impl NetworkConfig {
    /// Virtual transmission time of a message of `bytes`.
    pub fn transmit_time(&self, bytes: usize) -> Duration {
        let transfer = bytes as f64 / self.bandwidth_bytes_per_sec;
        self.latency + Duration::from_secs_f64(transfer)
    }
}

/// Configuration of the content-addressed data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataPlaneConfig {
    /// Text/Bytes payloads of at least this many bytes are eligible for
    /// pass-by-reference substitution; smaller ones always ship inline
    /// (a handle would not be smaller).
    pub inline_threshold: usize,
    /// Byte bound of every host-side attachment store.
    pub host_store_capacity: usize,
    /// Byte bound of the client/engine-side attachment store.
    pub client_store_capacity: usize,
}

impl Default for DataPlaneConfig {
    fn default() -> Self {
        DataPlaneConfig {
            inline_threshold: 1024,
            host_store_capacity: crate::container::DEFAULT_ATTACHMENT_CAPACITY,
            client_store_capacity: crate::container::DEFAULT_ATTACHMENT_CAPACITY,
        }
    }
}

#[derive(Clone)]
struct DataPlaneState {
    config: DataPlaneConfig,
    client_store: Arc<AttachmentStore>,
}

/// Wire-cost accounting snapshot: what actually crossed the simulated
/// network, and what the data plane kept off it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Envelopes transmitted (request + response legs + WSDL fetches).
    pub envelopes: u64,
    /// Total envelope bytes charged to the virtual clock.
    pub bytes: u64,
    /// Envelope bytes avoided by substituting `DataRef` handles.
    pub bytes_saved: u64,
    /// Payloads that travelled as handles instead of inline.
    pub ref_substitutions: u64,
    /// Envelope serialisations performed (one per encoded message).
    pub serialisations: u64,
}

#[derive(Debug, Default)]
struct WireCounters {
    envelopes: AtomicU64,
    bytes: AtomicU64,
    bytes_saved: AtomicU64,
    ref_substitutions: AtomicU64,
    serialisations: AtomicU64,
}

impl WireCounters {
    fn snapshot(&self) -> WireStats {
        WireStats {
            envelopes: self.envelopes.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            bytes_saved: self.bytes_saved.load(Ordering::Relaxed),
            ref_substitutions: self.ref_substitutions.load(Ordering::Relaxed),
            serialisations: self.serialisations.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.envelopes.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.bytes_saved.store(0, Ordering::Relaxed);
        self.ref_substitutions.store(0, Ordering::Relaxed);
        self.serialisations.store(0, Ordering::Relaxed);
    }

    fn sent(&self, bytes: usize) {
        self.envelopes.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.serialisations.fetch_add(1, Ordering::Relaxed);
    }

    fn substituted(&self, saved: usize) {
        self.ref_substitutions.fetch_add(1, Ordering::Relaxed);
        self.bytes_saved.fetch_add(saved as u64, Ordering::Relaxed);
    }
}

/// Which half of the wire path a fault fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Leg {
    Request,
    Response,
}

/// Per-invocation wire accounting threaded through `invoke_wire`.
#[derive(Debug, Default)]
struct LegAccounting {
    bytes_in: usize,
    bytes_out: usize,
    bytes_saved: usize,
    ref_hits: usize,
}

/// Scripted faults for one host. All windows are on the virtual clock.
#[derive(Debug, Default, Clone)]
struct HostFaults {
    /// Per-message random failure probability.
    probability: f64,
    /// Probability a response envelope is corrupted in transit.
    corrupt_probability: f64,
    /// Hard down (every message fails) until cleared.
    down: bool,
    /// Scheduled outages: messages fail while `from <= now < until`.
    outages: Vec<(Duration, Duration)>,
    /// Latency spikes: `(from, until, extra)` adds `extra` to every
    /// message charge while the window is active.
    latency_spikes: Vec<(Duration, Duration, Duration)>,
    /// Square-wave flapping: `(period, up_fraction)` — the host is up
    /// for the first `up_fraction` of each period, down for the rest.
    flap: Option<(Duration, f64)>,
}

impl HostFaults {
    fn is_unreachable(&self, now: Duration) -> Option<String> {
        if self.down {
            return Some("host marked down".to_string());
        }
        if let Some(&(from, until)) = self
            .outages
            .iter()
            .find(|&&(from, until)| from <= now && now < until)
        {
            return Some(format!("scripted outage {from:?}..{until:?}"));
        }
        if let Some((period, up_fraction)) = self.flap {
            if !period.is_zero() {
                let phase = now.as_nanos() % period.as_nanos();
                let up_for = (period.as_nanos() as f64 * up_fraction.clamp(0.0, 1.0)) as u128;
                if phase >= up_for {
                    return Some(format!("flapping (down phase of {period:?} cycle)"));
                }
            }
        }
        None
    }

    fn extra_latency(&self, now: Duration) -> Duration {
        self.latency_spikes
            .iter()
            .filter(|&&(from, until, _)| from <= now && now < until)
            .map(|&(_, _, extra)| extra)
            .sum()
    }
}

/// Failure-injection engine for E9: scripted per-host faults plus a
/// seeded RNG for the probabilistic ones, so runs are deterministic.
#[derive(Debug)]
struct FaultPlan {
    hosts: HashMap<String, HostFaults>,
    rng: StdRng,
}

impl FaultPlan {
    fn host_mut(&mut self, host: &str) -> &mut HostFaults {
        self.hosts.entry(host.to_string()).or_default()
    }
}

/// The simulated network: hosts, cost model, virtual clock, fault
/// engine, and a network-level monitor log that — unlike the container
/// logs — sees transport failures.
pub struct Network {
    config: NetworkConfig,
    hosts: RwLock<HashMap<String, Arc<ServiceContainer>>>,
    virtual_nanos: Arc<AtomicU64>,
    faults: Mutex<FaultPlan>,
    monitor: MonitorLog,
    dataplane: RwLock<Option<DataPlaneState>>,
    wire: WireCounters,
    tracer: RwLock<Option<Arc<Tracer>>>,
    outstanding: Mutex<HashMap<String, u64>>,
}

impl Network {
    /// Create a network with the default (1 Gb/s) cost model.
    pub fn new() -> Network {
        Network::with_config(NetworkConfig::default())
    }

    /// Create with an explicit cost model.
    pub fn with_config(config: NetworkConfig) -> Network {
        Network {
            config,
            hosts: RwLock::new(HashMap::new()),
            virtual_nanos: Arc::new(AtomicU64::new(0)),
            faults: Mutex::new(FaultPlan {
                hosts: HashMap::new(),
                rng: StdRng::seed_from_u64(0xFAE),
            }),
            monitor: MonitorLog::new(),
            dataplane: RwLock::new(None),
            wire: WireCounters::default(),
            tracer: RwLock::new(None),
            outstanding: Mutex::new(HashMap::new()),
        }
    }

    /// The cost model in force.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Add (or fetch) a host and its container.
    pub fn add_host(&self, name: &str) -> Arc<ServiceContainer> {
        let mut hosts = self.hosts.write();
        Arc::clone(hosts.entry(name.to_string()).or_insert_with(|| {
            let c = ServiceContainer::new(name);
            if let Some(dp) = self.dataplane.read().as_ref() {
                c.attachments().set_capacity(dp.config.host_store_capacity);
            }
            if let Some(tracer) = self.tracer.read().as_ref() {
                c.set_tracer(Some(Arc::clone(tracer)));
            }
            Arc::new(c)
        }))
    }

    /// Turn on the content-addressed data plane: large Text/Bytes
    /// payloads are substituted with `DataRef` handles whenever the
    /// receiving side's attachment store already holds the bytes, and
    /// stored on first sight so the *next* transfer is a handle.
    /// Existing hosts' stores are re-bounded to the configured capacity.
    pub fn enable_data_plane(&self, config: DataPlaneConfig) {
        for container in self.hosts.read().values() {
            container
                .attachments()
                .set_capacity(config.host_store_capacity);
        }
        *self.dataplane.write() = Some(DataPlaneState {
            config,
            client_store: Arc::new(AttachmentStore::new(config.client_store_capacity)),
        });
    }

    /// Turn the data plane back off (payloads ship inline again).
    pub fn disable_data_plane(&self) {
        *self.dataplane.write() = None;
    }

    /// Turn on causal tracing: a [`Tracer`] on this network's virtual
    /// clock records transport-leg spans for every invocation, and
    /// every container (existing and future) records dispatch spans
    /// parented under the request leg via the envelope's `traceparent`
    /// header.
    pub fn enable_tracing(&self) -> Arc<Tracer> {
        let nanos = Arc::clone(&self.virtual_nanos);
        let tracer = Arc::new(Tracer::new(Arc::new(move || {
            Duration::from_nanos(nanos.load(Ordering::Relaxed))
        })));
        for container in self.hosts.read().values() {
            container.set_tracer(Some(Arc::clone(&tracer)));
        }
        *self.tracer.write() = Some(Arc::clone(&tracer));
        tracer
    }

    /// Stop recording spans (existing spans are kept in the tracer).
    pub fn disable_tracing(&self) {
        for container in self.hosts.read().values() {
            container.set_tracer(None);
        }
        *self.tracer.write() = None;
    }

    /// The active tracer, when tracing is enabled.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.tracer.read().clone()
    }

    /// Whether the data plane is on.
    pub fn data_plane_enabled(&self) -> bool {
        self.dataplane.read().is_some()
    }

    /// The client/engine-side attachment store, when the data plane is
    /// enabled.
    pub fn client_store(&self) -> Option<Arc<AttachmentStore>> {
        self.dataplane
            .read()
            .as_ref()
            .map(|dp| Arc::clone(&dp.client_store))
    }

    /// Wire-cost accounting snapshot.
    pub fn wire_stats(&self) -> WireStats {
        self.wire.snapshot()
    }

    /// Zero the wire-cost counters (between experiment phases).
    pub fn reset_wire_stats(&self) {
        self.wire.reset();
    }

    /// Look up an existing host.
    pub fn host(&self, name: &str) -> Result<Arc<ServiceContainer>> {
        self.hosts
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| WsError::UnknownHost(name.to_string()))
    }

    /// All host names, sorted.
    pub fn hosts(&self) -> Vec<String> {
        let mut names: Vec<String> = self.hosts.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Accumulated virtual network time.
    pub fn virtual_time(&self) -> Duration {
        Duration::from_nanos(self.virtual_nanos.load(Ordering::Relaxed))
    }

    /// The current virtual instant — alias of [`virtual_time`]
    /// (Self::virtual_time) read as "now" by resilience code.
    pub fn now(&self) -> Duration {
        self.virtual_time()
    }

    /// Advance the virtual clock without sending anything. Backoff
    /// sleeps in the resilience layer are charged through here, so
    /// recovery latency is measurable while runs stay fast.
    pub fn advance_virtual_time(&self, by: Duration) {
        self.virtual_nanos
            .fetch_add(by.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Reset the virtual clock (between benchmark runs).
    pub fn reset_virtual_time(&self) {
        self.virtual_nanos.store(0, Ordering::Relaxed);
    }

    /// Pin the virtual clock to an absolute instant. Open-loop load
    /// generators use this to place each arrival at its scheduled time
    /// regardless of what earlier requests charged; unlike
    /// [`advance_virtual_time`](Self::advance_virtual_time) it can move
    /// the clock backwards, so it belongs in single-threaded experiment
    /// drivers, not concurrent callers.
    pub fn set_virtual_time(&self, to: Duration) {
        self.virtual_nanos
            .store(to.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Calls currently inside [`invoke`](Self::invoke) against `host` —
    /// the wall-clock outstanding counter threaded through the
    /// transport for load-aware ranking.
    pub fn outstanding(&self, host: &str) -> u64 {
        self.outstanding.lock().get(host).copied().unwrap_or(0)
    }

    /// Per-host load estimate for the registry's least-outstanding
    /// ranking: the larger of the wall-clock outstanding counter and
    /// the requests in the host's capacity system at the current
    /// virtual instant (queued + serving; 0 without a capacity model).
    pub fn load_snapshot(&self) -> HashMap<String, u64> {
        let now = self.virtual_time();
        let outstanding = self.outstanding.lock().clone();
        self.hosts
            .read()
            .iter()
            .map(|(name, container)| {
                let wall = outstanding.get(name).copied().unwrap_or(0);
                let queued = container.in_system(now) as u64;
                (name.clone(), wall.max(queued))
            })
            .collect()
    }

    /// The network-level attempt log. Every `invoke` records here —
    /// including transport failures, which container logs cannot see.
    pub fn monitor(&self) -> &MonitorLog {
        &self.monitor
    }

    fn charge(&self, host: &str, bytes: usize) -> Duration {
        let spike = {
            let plan = self.faults.lock();
            plan.hosts
                .get(host)
                .map(|f| f.extra_latency(self.virtual_time()))
                .unwrap_or(Duration::ZERO)
        };
        let cost = self.config.transmit_time(bytes) + spike;
        self.virtual_nanos
            .fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
        cost
    }

    /// Set a host's per-message random failure probability (0 clears).
    pub fn set_failure_probability(&self, host: &str, p: f64) {
        self.faults.lock().host_mut(host).probability = p.clamp(0.0, 1.0);
    }

    /// Set the probability that a response envelope is corrupted in
    /// transit (surfacing to the caller as an XML decode error).
    pub fn set_corrupt_probability(&self, host: &str, p: f64) {
        self.faults.lock().host_mut(host).corrupt_probability = p.clamp(0.0, 1.0);
    }

    /// Reseed the fault RNG (determinism between runs).
    pub fn reseed_faults(&self, seed: u64) {
        self.faults.lock().rng = StdRng::seed_from_u64(seed);
    }

    /// Mark a host down (all messages fail) or back up.
    pub fn set_host_down(&self, host: &str, down: bool) {
        self.faults.lock().host_mut(host).down = down;
    }

    /// Schedule an outage window on the virtual clock: every message to
    /// `host` fails while `from <= now < until`.
    pub fn add_outage(&self, host: &str, from: Duration, until: Duration) {
        self.faults
            .lock()
            .host_mut(host)
            .outages
            .push((from, until));
    }

    /// Schedule a latency spike: every message to `host` costs an extra
    /// `extra` while `from <= now < until`.
    pub fn add_latency_spike(&self, host: &str, from: Duration, until: Duration, extra: Duration) {
        self.faults
            .lock()
            .host_mut(host)
            .latency_spikes
            .push((from, until, extra));
    }

    /// Make `host` flap on a square wave: up for the first
    /// `up_fraction` of every `period`, down for the rest.
    pub fn set_flapping(&self, host: &str, period: Duration, up_fraction: f64) {
        self.faults.lock().host_mut(host).flap = Some((period, up_fraction));
    }

    /// Clear every scripted and probabilistic fault for `host`.
    pub fn clear_faults(&self, host: &str) {
        self.faults.lock().hosts.remove(host);
    }

    fn check_fault(&self, host: &str, leg: Leg) -> Result<()> {
        let now = self.virtual_time();
        let mut plan = self.faults.lock();
        let Some(faults) = plan.hosts.get(host).cloned() else {
            return Ok(());
        };
        let reason = if let Some(why) = faults.is_unreachable(now) {
            Some(format!("host {host} unreachable: {why}"))
        } else if faults.probability > 0.0 && plan.rng.random_bool(faults.probability) {
            Some(format!("connection to {host} reset (injected fault)"))
        } else {
            None
        };
        match reason {
            None => Ok(()),
            Some(message) => Err(match leg {
                Leg::Request => WsError::Transport(message),
                Leg::Response => WsError::ResponseLost(message),
            }),
        }
    }

    /// Should this response envelope be corrupted, and if so mangle it.
    fn maybe_corrupt(&self, host: &str, response_xml: &mut String) {
        let mut plan = self.faults.lock();
        let p = plan
            .hosts
            .get(host)
            .map(|f| f.corrupt_probability)
            .unwrap_or(0.0);
        if p > 0.0 && plan.rng.random_bool(p) {
            // Truncate mid-document: the envelope no longer balances,
            // so decoding fails at the SOAP layer like a torn TCP
            // stream would.
            let mut cut = response_xml.len() / 2;
            while cut > 0 && !response_xml.is_char_boundary(cut) {
                cut -= 1;
            }
            response_xml.truncate(cut);
        }
    }

    /// Invoke `service.operation(args)` on `host` over the full wire
    /// path: envelope encode → transmit → dispatch → transmit → decode.
    /// Records the attempt (including transport failures) in the
    /// network monitor.
    pub fn invoke(
        &self,
        host: &str,
        service: &str,
        operation: &str,
        args: Vec<(String, SoapValue)>,
    ) -> Result<SoapValue> {
        let started = self.virtual_time();
        *self.outstanding.lock().entry(host.to_string()).or_insert(0) += 1;
        let mut wire = LegAccounting::default();
        let result = self.invoke_wire(host, service, operation, args, &mut wire);
        if let Some(count) = self.outstanding.lock().get_mut(host) {
            *count = count.saturating_sub(1);
        }
        let outcome = match &result {
            Ok(_) => Outcome::Ok,
            Err(WsError::Fault { code, .. }) => Outcome::Fault(code.clone()),
            Err(e) => Outcome::TransportError(e.to_string()),
        };
        self.monitor.record(InvocationEvent {
            host: host.to_string(),
            service: service.to_string(),
            operation: operation.to_string(),
            duration: self.virtual_time() - started,
            bytes_in: wire.bytes_in,
            bytes_out: wire.bytes_out,
            bytes_saved: wire.bytes_saved,
            ref_hits: wire.ref_hits,
            outcome,
        });
        result
    }

    /// Substitute eligible payloads in `values` with `DataRef` handles
    /// wherever `store` (the receiving side) already holds the bytes;
    /// payloads seen for the first time are inserted so the *next*
    /// transfer is a handle. Returns the pinned payloads of the
    /// substituted values, so the receive path can materialise them
    /// without racing a concurrent eviction.
    fn substitute_refs(
        &self,
        dp: &DataPlaneState,
        store: &AttachmentStore,
        values: &mut [(String, SoapValue)],
        wire: &mut LegAccounting,
    ) -> Vec<(u128, Payload)> {
        let mut pinned = Vec::new();
        for (_, value) in values.iter_mut() {
            let eligible = match value {
                SoapValue::Text(s) => s.len() >= dp.config.inline_threshold,
                SoapValue::Bytes(b) => b.len() >= dp.config.inline_threshold,
                _ => false,
            };
            if !eligible {
                continue;
            }
            let Some(cr) = content_ref(value) else {
                continue;
            };
            match store.get(cr.hash) {
                Some(payload) => {
                    let handle = SoapValue::DataRef {
                        hash: cr.hash,
                        len: cr.len,
                        kind: cr.kind,
                    };
                    // Exact envelope bytes kept off the wire: the
                    // element name is the same either way, so any name
                    // cancels out of the difference.
                    let saved = value
                        .serialized_size("p")
                        .saturating_sub(handle.serialized_size("p"));
                    wire.bytes_saved += saved;
                    wire.ref_hits += 1;
                    self.wire.substituted(saved);
                    pinned.push((cr.hash, payload));
                    *value = handle;
                }
                None => {
                    if let Some(payload) = Payload::from_value(value) {
                        store.insert(cr.hash, payload);
                    }
                }
            }
        }
        pinned
    }

    fn invoke_wire(
        &self,
        host: &str,
        service: &str,
        operation: &str,
        mut args: Vec<(String, SoapValue)>,
        wire: &mut LegAccounting,
    ) -> Result<SoapValue> {
        let container = self.host(host)?;
        // Request leg: a failure here means the service never ran.
        // The leg span parents under whatever span the caller made
        // current (a SOAP-call span in WsTool/ClientChannel), and its
        // own context rides the envelope so the container's dispatch
        // span links under this leg.
        let tracer = self.tracer.read().clone();
        let mut request_leg = tracer.as_ref().map(|t| {
            let parent = trace::current().map(|(_, ctx)| ctx);
            let mut span = t.start_span(
                format!("{service}.{operation} request"),
                SpanKind::TransportLeg,
                parent,
            );
            span.set_attr("host", host);
            span
        });
        if let Err(e) = self.check_fault(host, Leg::Request) {
            if let Some(span) = request_leg.as_mut() {
                span.set_error(e.to_string());
            }
            return Err(e);
        }
        let dp = self.dataplane.read().clone();
        if let Some(dp) = &dp {
            // The receiving side of the request leg is the host's store.
            self.substitute_refs(dp, &container.attachments(), &mut args, wire);
        }
        let call = SoapCall {
            service: service.to_string(),
            operation: operation.to_string(),
            args,
            trace_parent: request_leg.as_ref().map(|s| s.ctx()),
        };
        let request_xml = call.to_envelope();
        wire.bytes_in = request_xml.len();
        self.wire.sent(request_xml.len());
        self.charge(host, request_xml.len());
        if let Some(mut span) = request_leg.take() {
            span.set_attr("bytes", request_xml.len().to_string());
        }
        // Admission control: when the host has a capacity model its
        // connector either queues the request — charging the queue wait
        // plus service time to the virtual clock before dispatch — or
        // sheds it with a retryable `ServerBusy` fault when the bounded
        // accept queue is full. Hosts without a capacity model keep the
        // legacy free-concurrency behaviour, byte for byte.
        match container.admit(self.virtual_time()) {
            Some(Admission::Shed { in_system }) => {
                return Err(WsError::Fault {
                    code: SERVER_BUSY_CODE.to_string(),
                    message: format!(
                        "host {host} is at capacity ({in_system} requests in system); \
                         request shed"
                    ),
                });
            }
            Some(Admission::Admitted {
                queue_wait,
                service_time,
                ..
            }) => {
                self.advance_virtual_time(queue_wait + service_time);
            }
            None => {}
        }
        // Server side: decode, dispatch, substitute the response
        // payload if the *client's* store already holds it, encode.
        // (This is `ServiceContainer::dispatch_envelope` with the
        // data-plane substitution spliced in between dispatch and
        // encode.)
        let mut pinned = Vec::new();
        let mut response_xml = match SoapCall::from_envelope(&request_xml) {
            Ok(decoded) => {
                let mut response = container.dispatch(&decoded);
                if let (Some(dp), SoapResponse::Value(v)) = (&dp, &mut response) {
                    let mut returns = vec![(String::new(), std::mem::replace(v, SoapValue::Null))];
                    pinned = self.substitute_refs(dp, &dp.client_store, &mut returns, wire);
                    *v = returns.pop().map(|(_, v)| v).unwrap_or(SoapValue::Null);
                }
                response.to_envelope(&decoded.operation)
            }
            Err(e) => SoapResponse::Fault {
                code: "Client".into(),
                message: e.to_string(),
            }
            .to_envelope("unknown"),
        };
        // Response leg: the service has already executed; a failure or
        // corruption from here on may leave duplicated work behind.
        let mut response_leg = tracer.as_ref().map(|t| {
            let parent = trace::current().map(|(_, ctx)| ctx);
            let mut span = t.start_span(
                format!("{service}.{operation} response"),
                SpanKind::TransportLeg,
                parent,
            );
            span.set_attr("host", host);
            span
        });
        if let Err(e) = self.check_fault(host, Leg::Response) {
            if let Some(span) = response_leg.as_mut() {
                span.set_error(e.to_string());
            }
            return Err(e);
        }
        self.maybe_corrupt(host, &mut response_xml);
        wire.bytes_out = response_xml.len();
        self.wire.sent(response_xml.len());
        self.charge(host, response_xml.len());
        if let Some(mut span) = response_leg.take() {
            span.set_attr("bytes", response_xml.len().to_string());
        }
        let value = SoapResponse::from_envelope(&response_xml)?.into_result()?;
        // Client side: materialise a returned handle. The pinned
        // payload from substitution time makes this immune to the
        // client store evicting the entry mid-flight.
        if let Some((hash, _, _)) = value.as_data_ref() {
            if let Some((_, payload)) = pinned.iter().find(|(h, _)| *h == hash) {
                return Ok(payload.to_value());
            }
            let fetched = dp
                .as_ref()
                .and_then(|dp| dp.client_store.get(hash))
                .map(|p| p.to_value());
            return fetched.ok_or_else(|| {
                WsError::Malformed(format!("unresolvable dataRef {hash:032x} in response"))
            });
        }
        Ok(value)
    }

    /// Fetch a deployed service's WSDL from a host (what a `?wsdl` HTTP
    /// request did on the paper's testbed), charging transport.
    pub fn fetch_wsdl(&self, host: &str, service: &str) -> Result<WsdlDocument> {
        let container = self.host(host)?;
        self.check_fault(host, Leg::Request)?;
        let wsdl = container.wsdl_of(service)?;
        let len = wsdl.to_xml().len();
        self.wire.sent(len);
        self.charge(host, len);
        Ok(wsdl)
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("config", &self.config)
            .field("hosts", &self.hosts())
            .field("virtual_time", &self.virtual_time())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::test_support::EchoService;

    fn network_with_echo() -> Network {
        let net = Network::new();
        let host = net.add_host("host-a");
        host.deploy(Arc::new(EchoService));
        net
    }

    #[test]
    fn invoke_over_the_wire() {
        let net = network_with_echo();
        let result = net
            .invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Text("hello".into()))],
            )
            .unwrap();
        assert_eq!(result, SoapValue::Text("hello".into()));
    }

    #[test]
    fn virtual_clock_advances_with_payload() {
        let net = network_with_echo();
        net.invoke(
            "host-a",
            "Echo",
            "echo",
            vec![("message".into(), SoapValue::Text("x".into()))],
        )
        .unwrap();
        let small = net.virtual_time();
        assert!(
            small >= Duration::from_micros(1000),
            "two messages, two latencies"
        );

        net.reset_virtual_time();
        net.invoke(
            "host-a",
            "Echo",
            "echo",
            vec![("message".into(), SoapValue::Text("y".repeat(10_000_000)))],
        )
        .unwrap();
        let big = net.virtual_time();
        // 20 MB round trip at 1 Gb/s ≈ 160 ms ≫ the small call.
        assert!(big > small * 10, "big {big:?} vs small {small:?}");
    }

    #[test]
    fn transmit_time_formula() {
        let cfg = NetworkConfig::default();
        let t = cfg.transmit_time(125_000_000); // 1 second of data
        assert!(t >= Duration::from_secs(1));
        assert!(t < Duration::from_millis(1002));
    }

    #[test]
    fn unknown_host_rejected() {
        let net = network_with_echo();
        assert!(matches!(
            net.invoke("nowhere", "Echo", "echo", vec![]),
            Err(WsError::UnknownHost(_))
        ));
    }

    #[test]
    fn faults_surface_as_soap_faults() {
        let net = network_with_echo();
        let err = net.invoke("host-a", "Echo", "fail", vec![]).unwrap_err();
        assert!(matches!(err, WsError::Fault { code, .. } if code == "Server"));
        let err2 = net.invoke("host-a", "Nope", "x", vec![]).unwrap_err();
        assert!(matches!(err2, WsError::Fault { code, .. } if code == "Client"));
    }

    #[test]
    fn host_down_fails_transport() {
        let net = network_with_echo();
        net.set_host_down("host-a", true);
        assert!(matches!(
            net.invoke("host-a", "Echo", "echo", vec![]),
            Err(WsError::Transport(_))
        ));
        net.set_host_down("host-a", false);
        assert!(net
            .invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Null)]
            )
            .is_ok());
    }

    #[test]
    fn probabilistic_faults_fire_roughly_at_rate() {
        let net = network_with_echo();
        net.set_failure_probability("host-a", 0.5);
        net.reseed_faults(42);
        let mut failures = 0;
        for _ in 0..200 {
            if net
                .invoke(
                    "host-a",
                    "Echo",
                    "echo",
                    vec![("message".into(), SoapValue::Null)],
                )
                .is_err()
            {
                failures += 1;
            }
        }
        assert!((60..=180).contains(&failures), "failures {failures}");
        net.set_failure_probability("host-a", 0.0);
        assert!(net
            .invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Null)]
            )
            .is_ok());
    }

    #[test]
    fn outage_windows_follow_the_virtual_clock() {
        let net = network_with_echo();
        net.add_outage(
            "host-a",
            Duration::from_millis(10),
            Duration::from_millis(20),
        );
        let call = |net: &Network| {
            net.invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Null)],
            )
        };
        assert!(call(&net).is_ok(), "before the window");
        net.advance_virtual_time(Duration::from_millis(12));
        let err = call(&net).unwrap_err();
        assert!(
            matches!(err, WsError::Transport(ref m) if m.contains("outage")),
            "{err:?}"
        );
        net.advance_virtual_time(Duration::from_millis(10));
        assert!(call(&net).is_ok(), "after the window");
    }

    #[test]
    fn flapping_host_alternates() {
        let net = network_with_echo();
        net.set_flapping("host-a", Duration::from_millis(10), 0.5);
        let mut up = 0;
        let mut down = 0;
        for _ in 0..40 {
            let r = net.invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Null)],
            );
            if r.is_ok() {
                up += 1;
            } else {
                down += 1;
            }
            net.advance_virtual_time(Duration::from_millis(3));
        }
        assert!(
            up > 5 && down > 5,
            "square wave should hit both phases: {up}/{down}"
        );
    }

    #[test]
    fn latency_spike_inflates_charges() {
        let net = network_with_echo();
        net.reset_virtual_time();
        net.invoke(
            "host-a",
            "Echo",
            "echo",
            vec![("message".into(), SoapValue::Null)],
        )
        .unwrap();
        let normal = net.virtual_time();

        net.reset_virtual_time();
        net.add_latency_spike(
            "host-a",
            Duration::ZERO,
            Duration::from_secs(60),
            Duration::from_millis(50),
        );
        net.invoke(
            "host-a",
            "Echo",
            "echo",
            vec![("message".into(), SoapValue::Null)],
        )
        .unwrap();
        let spiked = net.virtual_time();
        assert!(
            spiked >= normal + Duration::from_millis(100),
            "two legs, 50 ms each: {spiked:?} vs {normal:?}"
        );
        net.clear_faults("host-a");
    }

    #[test]
    fn response_leg_faults_are_response_lost() {
        let net = network_with_echo();
        // Fire only on the second fault check (response leg): probability
        // 1.0 would kill the request leg, so flip the host down *during*
        // dispatch via an outage that starts after the request charge.
        let call_cost = net.config().transmit_time(200); // > request envelope
        net.add_outage("host-a", call_cost / 4, Duration::from_secs(60));
        let err = net
            .invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Text("x".repeat(2000)))],
            )
            .unwrap_err();
        assert!(matches!(err, WsError::ResponseLost(_)), "{err:?}");
        assert!(err.work_may_have_executed());
        assert!(err.is_retryable());
    }

    #[test]
    fn corrupt_responses_surface_as_decode_errors() {
        let net = network_with_echo();
        net.set_corrupt_probability("host-a", 1.0);
        let err = net
            .invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Text("hello".into()))],
            )
            .unwrap_err();
        assert!(
            matches!(err, WsError::Xml { .. } | WsError::Malformed(_)),
            "corruption should fail decode: {err:?}"
        );
        net.set_corrupt_probability("host-a", 0.0);
        assert!(net
            .invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Null)]
            )
            .is_ok());
    }

    #[test]
    fn network_monitor_sees_transport_failures() {
        let net = network_with_echo();
        net.invoke(
            "host-a",
            "Echo",
            "echo",
            vec![("message".into(), SoapValue::Null)],
        )
        .unwrap();
        net.set_host_down("host-a", true);
        let _ = net.invoke("host-a", "Echo", "echo", vec![]);
        net.set_host_down("host-a", false);

        let events = net.monitor().snapshot();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0].outcome, crate::monitor::Outcome::Ok));
        assert!(matches!(
            events[1].outcome,
            crate::monitor::Outcome::TransportError(_)
        ));
        // Container logs can't see the failed attempt.
        assert_eq!(net.host("host-a").unwrap().monitor().len(), 1);
        let by_host = net.monitor().summary_by_host();
        assert_eq!(by_host.len(), 1);
        assert!((by_host[0].failure_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wsdl_fetch_charges_transport() {
        let net = network_with_echo();
        net.reset_virtual_time();
        let wsdl = net.fetch_wsdl("host-a", "Echo").unwrap();
        assert_eq!(wsdl.service, "Echo");
        assert!(net.virtual_time() > Duration::ZERO);
    }

    #[test]
    fn concurrent_invocations_are_safe_and_complete() {
        // The container and network are shared across workflow worker
        // threads; hammer one service from eight threads.
        let net = std::sync::Arc::new(network_with_echo());
        let mut handles = Vec::new();
        for t in 0..8 {
            let net = std::sync::Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let msg = format!("t{t}-{i}");
                    let out = net
                        .invoke(
                            "host-a",
                            "Echo",
                            "echo",
                            vec![("message".into(), SoapValue::Text(msg.clone()))],
                        )
                        .unwrap();
                    assert_eq!(out, SoapValue::Text(msg));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(net.host("host-a").unwrap().monitor().len(), 400);
    }

    #[test]
    fn data_plane_dedupes_repeated_payloads() {
        let net = network_with_echo();
        net.enable_data_plane(DataPlaneConfig::default());
        let payload = SoapValue::Text("d".repeat(50_000));
        let call = |net: &Network| {
            net.invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), payload.clone())],
            )
            .unwrap()
        };

        // Cold: payload ships inline on both legs and is remembered by
        // both stores.
        net.reset_virtual_time();
        assert_eq!(call(&net), payload);
        let cold_time = net.virtual_time();
        let cold = net.wire_stats();
        assert!(cold.bytes > 100_000, "two inline legs: {cold:?}");
        assert_eq!(cold.ref_substitutions, 0);

        // Warm: both legs travel as handles; outputs byte-identical.
        net.reset_virtual_time();
        net.reset_wire_stats();
        assert_eq!(call(&net), payload);
        let warm_time = net.virtual_time();
        let warm = net.wire_stats();
        assert_eq!(warm.ref_substitutions, 2, "{warm:?}");
        assert!(
            warm.bytes * 20 < cold.bytes,
            "warm {} vs cold {}",
            warm.bytes,
            cold.bytes
        );
        assert!(warm.bytes_saved > 90_000, "{warm:?}");
        assert!(warm_time < cold_time, "{warm_time:?} vs {cold_time:?}");

        // The monitor saw the substitutions.
        let event = net.monitor().snapshot().pop().unwrap();
        assert_eq!(event.ref_hits, 2);
        assert!(event.bytes_saved > 90_000);
    }

    #[test]
    fn data_plane_ignores_small_payloads() {
        let net = network_with_echo();
        net.enable_data_plane(DataPlaneConfig::default());
        let small = SoapValue::Text("tiny".into());
        for _ in 0..3 {
            let out = net
                .invoke(
                    "host-a",
                    "Echo",
                    "echo",
                    vec![("message".into(), small.clone())],
                )
                .unwrap();
            assert_eq!(out, small);
        }
        assert_eq!(net.wire_stats().ref_substitutions, 0);
        assert!(net.host("host-a").unwrap().attachments().is_empty());
    }

    #[test]
    fn data_plane_survives_host_store_eviction() {
        // Host store too small for both payloads: the second insert
        // evicts the first, so re-sending payload A re-ships it inline
        // (a transparent re-fetch) and everything still round-trips.
        let net = network_with_echo();
        net.enable_data_plane(DataPlaneConfig {
            inline_threshold: 1024,
            host_store_capacity: 60_000,
            client_store_capacity: 1024 * 1024,
        });
        let a = SoapValue::Text("a".repeat(50_000));
        let b = SoapValue::Text("b".repeat(50_000));
        let call = |v: &SoapValue| {
            net.invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), v.clone())],
            )
            .unwrap()
        };
        assert_eq!(call(&a), a); // a cached on host
        assert_eq!(call(&b), b); // b evicts a
        let store = net.host("host-a").unwrap().attachments();
        assert_eq!(store.stats().evictions, 1);
        assert_eq!(call(&a), a); // inline again, transparently
        let stats = store.stats();
        assert_eq!(stats.lookups, stats.hits + stats.misses);
    }

    #[test]
    fn data_plane_off_by_default_and_disablable() {
        let net = network_with_echo();
        assert!(!net.data_plane_enabled());
        assert!(net.client_store().is_none());
        net.enable_data_plane(DataPlaneConfig::default());
        assert!(net.data_plane_enabled());
        assert!(net.client_store().is_some());
        net.disable_data_plane();
        assert!(!net.data_plane_enabled());
        let payload = SoapValue::Text("z".repeat(10_000));
        for _ in 0..2 {
            net.invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), payload.clone())],
            )
            .unwrap();
        }
        assert_eq!(net.wire_stats().ref_substitutions, 0);
    }

    #[test]
    fn outage_window_boundaries_are_start_inclusive_end_exclusive() {
        // Pin the scripted-fault window semantics so scenarios are
        // reproducible: a request at exactly `from` is faulted, a
        // request at exactly `until` is not.
        let net = network_with_echo();
        let from = Duration::from_millis(10);
        let until = Duration::from_millis(20);
        net.add_outage("host-a", from, until);
        let call = |net: &Network| {
            net.invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Null)],
            )
        };
        net.reset_virtual_time();
        net.advance_virtual_time(from);
        assert!(
            call(&net).is_err(),
            "exactly window.start must be inside the outage"
        );
        net.reset_virtual_time();
        net.advance_virtual_time(until);
        assert!(
            call(&net).is_ok(),
            "exactly window.end must be outside the outage"
        );
    }

    #[test]
    fn latency_spike_boundaries_match_outage_semantics() {
        let net = network_with_echo();
        let from = Duration::from_millis(10);
        let until = Duration::from_millis(20);
        let extra = Duration::from_secs(1);
        net.add_latency_spike("host-a", from, until, extra);
        // At exactly `until` the spike no longer applies: a whole call
        // (two legs) costs far less than one spiked leg would.
        net.reset_virtual_time();
        net.advance_virtual_time(until);
        net.invoke(
            "host-a",
            "Echo",
            "echo",
            vec![("message".into(), SoapValue::Null)],
        )
        .unwrap();
        assert!(net.virtual_time() < until + extra);
        // At exactly `from` it does: the request leg pays the
        // surcharge (the 1 s spike then pushes the clock past the
        // window, so only proving start-inclusion needs leg one).
        net.reset_virtual_time();
        net.advance_virtual_time(from);
        net.invoke(
            "host-a",
            "Echo",
            "echo",
            vec![("message".into(), SoapValue::Null)],
        )
        .unwrap();
        assert!(net.virtual_time() >= from + extra);
    }

    #[test]
    fn bytes_saved_is_the_exact_envelope_difference() {
        // Regression for the hard-coded 80-byte DataRef estimate: the
        // accounting must equal (inline envelope) − (ref envelope),
        // measured on the actual serialised bytes.
        let net = network_with_echo();
        net.enable_data_plane(DataPlaneConfig::default());
        let payload = SoapValue::Text("d".repeat(50_000));
        let call = |net: &Network| {
            net.invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), payload.clone())],
            )
            .unwrap()
        };
        // Cold run ships inline on both legs; measure those envelopes.
        call(&net);
        let cold = net.wire_stats();
        // Warm run substitutes both legs.
        net.reset_wire_stats();
        call(&net);
        let warm = net.wire_stats();
        assert_eq!(warm.ref_substitutions, 2);
        let actual_difference = cold.bytes - warm.bytes;
        assert_eq!(
            warm.bytes_saved, actual_difference,
            "bytes_saved must equal the measured envelope shrinkage \
             (the old fixed-80 estimate was off by the real handle size)"
        );
        // The container-side resolution reports the same exact number
        // for its leg.
        let event = net.monitor().snapshot().pop().unwrap();
        assert_eq!(event.ref_hits, 2);
        // The per-value saving: inline content is 50 000 chars, the
        // handle's content is 32+1+5+1+4 = 43 chars, and the type name
        // differs by one char ("string" vs "dataRef") — per leg.
        assert_eq!(event.bytes_saved, warm.bytes_saved as usize);
    }

    #[test]
    fn tracing_records_linked_transport_and_dispatch_spans() {
        use crate::trace::SpanStatus;
        let net = network_with_echo();
        let tracer = net.enable_tracing();
        // An enclosing SOAP-call span (as WsTool/ClientChannel would
        // open) makes both transport legs siblings in one trace.
        {
            let call_span = tracer.start_span("Echo.echo", SpanKind::SoapCall, None);
            let _current = call_span.make_current();
            net.invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Text("hi".into()))],
            )
            .unwrap();
        }
        let spans = tracer.finished_spans();
        let request = spans
            .iter()
            .find(|s| s.kind == SpanKind::TransportLeg && s.name.ends_with("request"))
            .expect("request leg span");
        let response = spans
            .iter()
            .find(|s| s.kind == SpanKind::TransportLeg && s.name.ends_with("response"))
            .expect("response leg span");
        let dispatch = spans
            .iter()
            .find(|s| s.kind == SpanKind::Dispatch)
            .expect("dispatch span");
        // The dispatch span parents under the request leg via the
        // traceparent header; all three share the trace.
        assert_eq!(dispatch.parent_span_id, Some(request.span_id));
        assert_eq!(dispatch.trace_id, request.trace_id);
        assert_eq!(response.trace_id, request.trace_id);
        assert_eq!(request.status, SpanStatus::Ok);
        assert!(request.attribute("bytes").is_some());
        assert_eq!(request.attribute("host"), Some("host-a"));
        // Spans are stamped on the virtual clock: the request leg ends
        // at or before the response leg starts.
        assert!(request.end <= response.start);

        // A transport failure marks the leg span as an error.
        net.set_host_down("host-a", true);
        let _ = net.invoke("host-a", "Echo", "echo", vec![]);
        let failed = tracer
            .finished_spans()
            .into_iter()
            .rfind(|s| s.kind == SpanKind::TransportLeg)
            .unwrap();
        assert!(matches!(failed.status, SpanStatus::Error(_)));

        net.disable_tracing();
        assert!(net.tracer().is_none());
        let before = tracer.len();
        net.set_host_down("host-a", false);
        net.invoke(
            "host-a",
            "Echo",
            "echo",
            vec![("message".into(), SoapValue::Null)],
        )
        .unwrap();
        assert_eq!(tracer.len(), before, "no spans once tracing is off");
    }

    #[test]
    fn add_host_is_idempotent() {
        let net = Network::new();
        let a = net.add_host("h");
        let b = net.add_host("h");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(net.hosts(), vec!["h".to_string()]);
    }

    #[test]
    fn admission_charges_service_and_queue_time() {
        use crate::container::CapacityConfig;
        let net = network_with_echo();
        net.host("host-a")
            .unwrap()
            .set_capacity(Some(CapacityConfig {
                workers: 1,
                queue_limit: Some(4),
                service_time: Duration::from_millis(3),
            }));
        let echo = |net: &Network| {
            net.invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Text("hi".into()))],
            )
            .unwrap()
        };

        let before = net.virtual_time();
        echo(&net);
        let first = net.virtual_time() - before;
        // First arrival finds the worker idle: transmit + 3 ms service.
        assert!(first >= Duration::from_millis(3), "charged {first:?}");

        // Rewind the clock so the second arrival lands while the first
        // still occupies the worker: its queue wait is also charged.
        net.set_virtual_time(before);
        let second = {
            echo(&net);
            net.virtual_time() - before
        };
        assert!(
            second >= first + Duration::from_millis(3),
            "queue wait not charged: first {first:?}, second {second:?}"
        );
    }

    #[test]
    fn saturated_host_sheds_with_server_busy_fault() {
        use crate::container::CapacityConfig;
        use crate::error::SERVER_BUSY_CODE;
        let net = network_with_echo();
        net.host("host-a")
            .unwrap()
            .set_capacity(Some(CapacityConfig {
                workers: 1,
                queue_limit: Some(0),
                service_time: Duration::from_secs(1),
            }));
        let call = || {
            net.invoke(
                "host-a",
                "Echo",
                "echo",
                vec![("message".into(), SoapValue::Text("hi".into()))],
            )
        };
        call().unwrap();
        // Worker busy for a simulated second and no queue: rewinding to
        // the same instant makes the second arrival concurrent → shed.
        net.set_virtual_time(Duration::ZERO);
        let err = call().unwrap_err();
        assert!(err.is_server_busy(), "{err}");
        assert!(err.is_retryable());
        assert!(!err.work_may_have_executed());
        match &err {
            WsError::Fault { code, .. } => assert_eq!(code, SERVER_BUSY_CODE),
            other => panic!("unexpected {other:?}"),
        }
        // The monitor records the shed as a fault outcome for ranking.
        let events = net.monitor().snapshot();
        assert!(events.iter().any(
            |e| matches!(&e.outcome, crate::monitor::Outcome::Fault(c) if c == SERVER_BUSY_CODE)
        ));
    }

    #[test]
    fn capacity_off_leaves_wire_accounting_identical() {
        use crate::container::CapacityConfig;
        let run = |capacity: Option<CapacityConfig>| {
            let net = network_with_echo();
            net.host("host-a").unwrap().set_capacity(capacity);
            let value = net
                .invoke(
                    "host-a",
                    "Echo",
                    "echo",
                    vec![("message".into(), SoapValue::Text("payload".into()))],
                )
                .unwrap();
            (value, net.wire_stats())
        };
        // A single request far below saturation: admission control must
        // not change the envelopes, the result, or the bytes on the wire.
        let (base_value, base_wire) = run(None);
        let (value, wire) = run(Some(CapacityConfig::default()));
        assert_eq!(base_value, value);
        assert_eq!(base_wire, wire);
    }

    #[test]
    fn outstanding_and_load_snapshot_track_in_flight_work() {
        use crate::container::CapacityConfig;
        let net = network_with_echo();
        assert_eq!(net.outstanding("host-a"), 0);
        net.host("host-a")
            .unwrap()
            .set_capacity(Some(CapacityConfig {
                workers: 1,
                queue_limit: None,
                service_time: Duration::from_secs(60),
            }));
        net.invoke(
            "host-a",
            "Echo",
            "echo",
            vec![("message".into(), SoapValue::Null)],
        )
        .unwrap();
        // The wall-clock counter returns to zero after the call. The
        // invoke also advanced the virtual clock past the simulated
        // minute of service, so rewind to mid-service: the capacity
        // model still holds the request in system there, and the
        // snapshot reports that figure.
        assert_eq!(net.outstanding("host-a"), 0);
        net.set_virtual_time(Duration::from_secs(30));
        let loads = net.load_snapshot();
        assert_eq!(loads.get("host-a"), Some(&1));
    }
}
