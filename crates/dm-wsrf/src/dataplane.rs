//! The content-addressed data plane.
//!
//! The paper's SOAP messages ship every dataset and serialised model
//! inline on every call — §4.5 measures exactly that cost. This module
//! supplies the era's remedy (SOAP attachments / DIME, and the
//! data-locality strategy of Grid-WEKA): payloads are identified by a
//! stable **content hash** and can travel as compact
//! [`crate::soap::SoapValue::DataRef`] handles once the receiving side
//! already holds the bytes in its [`AttachmentStore`].
//!
//! Three pieces live here:
//!
//! * content hashing ([`content_hash`], [`fingerprint`]) — a seeded
//!   double-FNV-1a 128-bit digest, dependency-free and stable across
//!   runs, used both for attachment identity and for memoisation keys;
//! * [`AttachmentStore`] — a size-bounded, thread-safe LRU of payloads
//!   keyed by content hash, with hit/miss/eviction counters. One store
//!   sits in every service container (the host side) and one in the
//!   network (the client/engine side);
//! * [`LruMap`] — the generic entry-bounded LRU underneath the
//!   trained-model and memoisation caches in the upper layers.

use crate::soap::{RefKind, SoapValue};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// FNV-1a over two 64-bit lanes with distinct offset bases, cross-mixed
/// so the lanes decorrelate. Not cryptographic — collision resistance
/// only needs to hold against honest workloads, like the CRC-style
/// content ids of the DIME era.
#[derive(Debug, Clone)]
pub struct Hasher128 {
    lo: u64,
    hi: u64,
}

impl Default for Hasher128 {
    fn default() -> Self {
        Hasher128::new()
    }
}

impl Hasher128 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Start a fresh digest.
    pub fn new() -> Hasher128 {
        Hasher128 {
            lo: 0xcbf2_9ce4_8422_2325,
            hi: 0x6c62_272e_07bb_0142,
        }
    }

    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ u64::from(b)).wrapping_mul(Self::PRIME);
            self.hi = (self.hi ^ u64::from(b)).wrapping_mul(Self::PRIME) ^ self.lo.rotate_left(29);
        }
    }

    /// Absorb a single tag byte (used to separate value kinds).
    pub fn write_u8(&mut self, byte: u8) {
        self.write(&[byte]);
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }
}

/// Hash a byte string.
pub fn hash_bytes(bytes: &[u8]) -> u128 {
    let mut h = Hasher128::new();
    h.write(bytes);
    h.finish()
}

/// A content-addressed description of a Text or Bytes payload: what a
/// [`crate::soap::SoapValue::DataRef`] carries on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentRef {
    /// Content hash of the payload bytes (kind-tagged).
    pub hash: u128,
    /// Payload length in bytes.
    pub len: u64,
    /// Whether the payload was a string or binary.
    pub kind: RefKind,
}

/// Compute the content address of a value, if it is one of the payload
/// kinds the data plane can pass by reference (Text or Bytes). The
/// hash is tagged by kind so equal byte strings of different kinds
/// never alias.
pub fn content_ref(value: &SoapValue) -> Option<ContentRef> {
    let (tag, bytes, kind) = match value {
        SoapValue::Text(s) => (b'T', s.as_bytes(), RefKind::Text),
        SoapValue::Bytes(b) => (b'B', b.as_slice(), RefKind::Bytes),
        _ => return None,
    };
    let mut h = Hasher128::new();
    h.write_u8(tag);
    h.write(bytes);
    Some(ContentRef {
        hash: h.finish(),
        len: bytes.len() as u64,
        kind,
    })
}

/// Structural fingerprint of any SOAP value — every variant, nested
/// lists included. This is the memoisation key material: two values
/// fingerprint equal iff they would serialise identically.
pub fn fingerprint(value: &SoapValue) -> u128 {
    let mut h = Hasher128::new();
    fingerprint_into(value, &mut h);
    h.finish()
}

fn fingerprint_into(value: &SoapValue, h: &mut Hasher128) {
    match value {
        SoapValue::Null => h.write_u8(0),
        SoapValue::Bool(b) => {
            h.write_u8(1);
            h.write_u8(u8::from(*b));
        }
        SoapValue::Int(i) => {
            h.write_u8(2);
            h.write(&i.to_le_bytes());
        }
        SoapValue::Double(d) => {
            h.write_u8(3);
            h.write(&d.to_bits().to_le_bytes());
        }
        SoapValue::Text(s) => {
            h.write_u8(4);
            h.write(&(s.len() as u64).to_le_bytes());
            h.write(s.as_bytes());
        }
        SoapValue::Bytes(b) => {
            h.write_u8(5);
            h.write(&(b.len() as u64).to_le_bytes());
            h.write(b);
        }
        SoapValue::List(items) => {
            h.write_u8(6);
            h.write(&(items.len() as u64).to_le_bytes());
            for item in items {
                fingerprint_into(item, h);
            }
        }
        SoapValue::DataRef { hash, len, kind } => {
            h.write_u8(7);
            h.write(&hash.to_le_bytes());
            h.write(&len.to_le_bytes());
            h.write_u8(match kind {
                RefKind::Text => 0,
                RefKind::Bytes => 1,
            });
        }
    }
}

/// A stored payload. Text and binary bodies are kept behind `Arc` so
/// hits never copy until the payload is materialised into a value.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A string body.
    Text(Arc<str>),
    /// A binary body.
    Bytes(Arc<[u8]>),
}

impl Payload {
    /// Capture the payload of a Text or Bytes value.
    pub fn from_value(value: &SoapValue) -> Option<Payload> {
        match value {
            SoapValue::Text(s) => Some(Payload::Text(Arc::from(s.as_str()))),
            SoapValue::Bytes(b) => Some(Payload::Bytes(Arc::from(b.as_slice()))),
            _ => None,
        }
    }

    /// Materialise back into a SOAP value.
    pub fn to_value(&self) -> SoapValue {
        match self {
            Payload::Text(s) => SoapValue::Text(s.to_string()),
            Payload::Bytes(b) => SoapValue::Bytes(b.to_vec()),
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Payload::Text(s) => s.len(),
            Payload::Bytes(b) => b.len(),
        }
    }

    /// `true` for a zero-length payload.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Counter snapshot shared by every cache in the data plane. The
/// invariant callers may rely on: `lookups == hits + misses`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total `get` calls.
    pub lookups: u64,
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries added.
    pub insertions: u64,
    /// Entries pushed out by the capacity bound.
    pub evictions: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Payload bytes currently held (0 for entry-bounded caches that do
    /// not track sizes).
    pub bytes: usize,
}

#[derive(Debug, Default)]
struct Counters {
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl Counters {
    fn hit(&self) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self, entries: usize, bytes: usize) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

struct StoreInner {
    /// hash → (payload, recency sequence number).
    map: HashMap<u128, (Payload, u64)>,
    /// recency sequence → hash; the first entry is the LRU victim.
    order: BTreeMap<u64, u128>,
    clock: u64,
    bytes: usize,
    capacity: usize,
}

impl StoreInner {
    fn touch(&mut self, hash: u128) {
        if let Some((_, seq)) = self.map.get_mut(&hash) {
            self.order.remove(seq);
            self.clock += 1;
            *seq = self.clock;
            self.order.insert(self.clock, hash);
        }
    }

    fn evict_lru(&mut self) -> bool {
        let Some((&seq, &hash)) = self.order.iter().next() else {
            return false;
        };
        self.order.remove(&seq);
        if let Some((payload, _)) = self.map.remove(&hash) {
            self.bytes -= payload.len();
        }
        true
    }
}

/// A size-bounded LRU attachment store keyed by content hash.
///
/// Every host container owns one (the server side of pass-by-reference)
/// and the network owns one for the client/engine side. `get` counts a
/// hit or miss and refreshes recency; `insert` evicts least-recently
/// used payloads until the byte bound holds. A payload larger than the
/// whole store is not cached at all — callers simply keep shipping it
/// inline.
pub struct AttachmentStore {
    inner: Mutex<StoreInner>,
    counters: Counters,
}

impl std::fmt::Debug for AttachmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("AttachmentStore")
            .field("entries", &stats.entries)
            .field("bytes", &stats.bytes)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl AttachmentStore {
    /// Create a store bounded to `capacity_bytes` of payload.
    pub fn new(capacity_bytes: usize) -> AttachmentStore {
        AttachmentStore {
            inner: Mutex::new(StoreInner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                clock: 0,
                bytes: 0,
                capacity: capacity_bytes,
            }),
            counters: Counters::default(),
        }
    }

    /// The byte bound.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Rebound the store, evicting LRU payloads if it now overflows.
    pub fn set_capacity(&self, capacity_bytes: usize) {
        let mut inner = self.inner.lock();
        inner.capacity = capacity_bytes;
        let mut evicted = 0;
        while inner.bytes > inner.capacity && inner.evict_lru() {
            evicted += 1;
        }
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
    }

    /// Fetch a payload by hash, counting a hit or miss and refreshing
    /// recency on hit.
    pub fn get(&self, hash: u128) -> Option<Payload> {
        let mut inner = self.inner.lock();
        match inner.map.get(&hash) {
            Some((payload, _)) => {
                let payload = payload.clone();
                inner.touch(hash);
                self.counters.hit();
                Some(payload)
            }
            None => {
                self.counters.miss();
                None
            }
        }
    }

    /// Presence check without touching recency or counters (test and
    /// diagnostic use).
    pub fn contains(&self, hash: u128) -> bool {
        self.inner.lock().map.contains_key(&hash)
    }

    /// Insert a payload, evicting LRU entries until the byte bound
    /// holds. Oversized payloads (larger than the whole store) are
    /// dropped rather than cached.
    pub fn insert(&self, hash: u128, payload: Payload) {
        let mut inner = self.inner.lock();
        if payload.len() > inner.capacity {
            return;
        }
        if inner.map.contains_key(&hash) {
            inner.touch(hash);
            return;
        }
        inner.bytes += payload.len();
        inner.clock += 1;
        let seq = inner.clock;
        inner.map.insert(hash, (payload, seq));
        inner.order.insert(seq, hash);
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
        let mut evicted = 0;
        while inner.bytes > inner.capacity && inner.evict_lru() {
            evicted += 1;
        }
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
    }

    /// Number of payloads held.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().map.is_empty()
    }

    /// Payload bytes currently held.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Counter snapshot (`lookups == hits + misses`).
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        self.counters.snapshot(inner.map.len(), inner.bytes)
    }

    /// Drop every payload (counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
        inner.bytes = 0;
    }
}

struct LruInner<K, V> {
    map: HashMap<K, (V, u64)>,
    order: BTreeMap<u64, K>,
    clock: u64,
    capacity: usize,
}

/// A generic entry-bounded LRU map with the same counter discipline as
/// [`AttachmentStore`]. The trained-model cache (`dm-services`) and the
/// workflow memoisation cache (`dm-workflow`) are both built on this.
pub struct LruMap<K, V> {
    inner: Mutex<LruInner<K, V>>,
    counters: Counters,
}

impl<K: Eq + Hash + Clone, V: Clone> LruMap<K, V> {
    /// Create a map bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> LruMap<K, V> {
        LruMap {
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                clock: 0,
                capacity: capacity.max(1),
            }),
            counters: Counters::default(),
        }
    }

    /// Fetch, counting a hit or miss and refreshing recency on hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock();
        match inner.map.get(key) {
            Some((value, _)) => {
                let value = value.clone();
                let seq = inner.map.get(key).map(|(_, s)| *s).unwrap_or_default();
                inner.order.remove(&seq);
                inner.clock += 1;
                let clock = inner.clock;
                if let Some((_, s)) = inner.map.get_mut(key) {
                    *s = clock;
                }
                inner.order.insert(clock, key.clone());
                self.counters.hit();
                Some(value)
            }
            None => {
                self.counters.miss();
                None
            }
        }
    }

    /// Presence check without counters or recency effects.
    pub fn contains(&self, key: &K) -> bool {
        self.inner.lock().map.contains_key(key)
    }

    /// Insert (replacing any previous value), evicting the LRU entry
    /// when the entry bound is exceeded.
    pub fn insert(&self, key: K, value: V) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let seq = inner.clock;
        if let Some((_, old_seq)) = inner.map.insert(key.clone(), (value, seq)) {
            inner.order.remove(&old_seq);
        } else {
            self.counters.insertions.fetch_add(1, Ordering::Relaxed);
        }
        inner.order.insert(seq, key);
        while inner.map.len() > inner.capacity {
            let Some((&victim_seq, victim)) = inner.order.iter().next() else {
                break;
            };
            let victim = victim.clone();
            inner.order.remove(&victim_seq);
            inner.map.remove(&victim);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of entries held.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().map.is_empty()
    }

    /// Counter snapshot (`lookups == hits + misses`).
    pub fn stats(&self) -> CacheStats {
        self.counters.snapshot(self.inner.lock().map.len(), 0)
    }

    /// Drop every entry (counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
    }
}

impl<K, V> std::fmt::Debug for LruMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruMap")
            .field("entries", &self.inner.lock().map.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text(n: usize, fill: char) -> SoapValue {
        SoapValue::Text(fill.to_string().repeat(n))
    }

    fn stored(v: &SoapValue) -> (u128, Payload) {
        let r = content_ref(v).unwrap();
        (r.hash, Payload::from_value(v).unwrap())
    }

    #[test]
    fn content_hash_is_stable_and_kind_tagged() {
        let a = content_ref(&SoapValue::Text("abc".into())).unwrap();
        let b = content_ref(&SoapValue::Text("abc".into())).unwrap();
        assert_eq!(a, b);
        let bytes = content_ref(&SoapValue::Bytes(b"abc".to_vec())).unwrap();
        assert_ne!(a.hash, bytes.hash, "kind tag must separate Text/Bytes");
        assert_eq!(a.len, 3);
        assert!(content_ref(&SoapValue::Int(3)).is_none());
    }

    #[test]
    fn fingerprint_distinguishes_structure() {
        let a = fingerprint(&SoapValue::List(vec![
            SoapValue::Text("ab".into()),
            SoapValue::Text("c".into()),
        ]));
        let b = fingerprint(&SoapValue::List(vec![
            SoapValue::Text("a".into()),
            SoapValue::Text("bc".into()),
        ]));
        assert_ne!(a, b, "length prefixes must prevent concatenation aliasing");
        assert_ne!(
            fingerprint(&SoapValue::Int(1)),
            fingerprint(&SoapValue::Bool(true))
        );
        assert_eq!(
            fingerprint(&SoapValue::Double(0.5)),
            fingerprint(&SoapValue::Double(0.5))
        );
    }

    #[test]
    fn store_counts_hits_and_misses() {
        let store = AttachmentStore::new(1024);
        let (hash, payload) = stored(&text(10, 'x'));
        assert!(store.get(hash).is_none());
        store.insert(hash, payload);
        assert!(store.get(hash).is_some());
        assert!(store.get(hash).is_some());
        let stats = store.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.lookups, stats.hits + stats.misses);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 10);
    }

    #[test]
    fn store_evicts_lru_first() {
        // Capacity fits two 10-byte payloads; touching A must make B
        // the victim when C arrives.
        let store = AttachmentStore::new(20);
        let (ha, pa) = stored(&text(10, 'a'));
        let (hb, pb) = stored(&text(10, 'b'));
        let (hc, pc) = stored(&text(10, 'c'));
        store.insert(ha, pa);
        store.insert(hb, pb);
        assert!(store.get(ha).is_some(), "touch A");
        store.insert(hc, pc);
        assert!(store.contains(ha), "recently used survives");
        assert!(!store.contains(hb), "LRU entry is evicted");
        assert!(store.contains(hc));
        assert_eq!(store.stats().evictions, 1);
        assert!(store.bytes() <= 20);
    }

    #[test]
    fn store_rejects_oversized_payloads() {
        let store = AttachmentStore::new(8);
        let (h, p) = stored(&text(100, 'z'));
        store.insert(h, p);
        assert!(store.is_empty(), "oversized payloads are not cached");
    }

    #[test]
    fn oversized_insert_rejected_without_disturbing_residents() {
        // A payload larger than the whole store must bounce at the
        // door: admitting it would evict every resident and then still
        // overflow, leaving an empty store that also failed to cache
        // the newcomer — the worst of both.
        let store = AttachmentStore::new(50);
        let (ha, pa) = stored(&text(20, 'a'));
        let (hb, pb) = stored(&text(20, 'b'));
        store.insert(ha, pa);
        store.insert(hb, pb);
        let before = store.stats();

        let (hbig, pbig) = stored(&text(51, 'z'));
        store.insert(hbig, pbig);
        assert!(
            store.contains(ha) && store.contains(hb),
            "residents survive"
        );
        assert!(!store.contains(hbig));
        let after = store.stats();
        assert_eq!(after.evictions, before.evictions, "no eviction churn");
        assert_eq!(
            after.insertions, before.insertions,
            "a rejected payload is not an insertion"
        );
        assert_eq!(after.entries, 2);
        assert_eq!(after.bytes, 40);

        // Boundary: a payload exactly at capacity IS admissible — it
        // evicts the residents and sits alone.
        let (hfit, pfit) = stored(&text(50, 'f'));
        store.insert(hfit, pfit);
        assert!(store.contains(hfit));
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes(), 50);
        let fitted = store.stats();
        assert_eq!(fitted.insertions, before.insertions + 1);
        assert_eq!(fitted.evictions, before.evictions + 2);
        // Counter discipline holds throughout.
        assert_eq!(fitted.lookups, fitted.hits + fitted.misses);
    }

    #[test]
    fn store_recapacity_evicts() {
        let store = AttachmentStore::new(100);
        for fill in ['a', 'b', 'c'] {
            let (h, p) = stored(&text(30, fill));
            store.insert(h, p);
        }
        assert_eq!(store.len(), 3);
        store.set_capacity(40);
        assert_eq!(store.len(), 1);
        let (hc, _) = stored(&text(30, 'c'));
        assert!(store.contains(hc), "most recent payload survives");
    }

    #[test]
    fn payload_roundtrip() {
        for v in [text(5, 'q'), SoapValue::Bytes(vec![1, 2, 3])] {
            let p = Payload::from_value(&v).unwrap();
            assert_eq!(p.to_value(), v);
            assert!(!p.is_empty());
        }
        assert!(Payload::from_value(&SoapValue::Null).is_none());
    }

    #[test]
    fn lru_map_eviction_order_and_stats() {
        let cache: LruMap<u32, String> = LruMap::new(2);
        cache.insert(1, "one".into());
        cache.insert(2, "two".into());
        assert_eq!(cache.get(&1).as_deref(), Some("one"));
        cache.insert(3, "three".into());
        assert!(!cache.contains(&2), "LRU entry evicted");
        assert!(cache.contains(&1) && cache.contains(&3));
        assert!(cache.get(&2).is_none());
        let stats = cache.stats();
        assert_eq!(stats.lookups, stats.hits + stats.misses);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn lru_map_replace_keeps_len() {
        let cache: LruMap<u32, u32> = LruMap::new(4);
        cache.insert(1, 10);
        cache.insert(1, 11);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&1), Some(11));
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn stores_are_thread_safe() {
        let store = Arc::new(AttachmentStore::new(1 << 20));
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let v = SoapValue::Text(format!("t{t}-{i}"));
                    let r = content_ref(&v).unwrap();
                    store.insert(r.hash, Payload::from_value(&v).unwrap());
                    assert!(store.get(r.hash).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 400);
    }
}
