//! Error type shared across the Web Services substrate.

use std::fmt;
use std::time::Duration;

/// Result alias used throughout `dm-wsrf`.
pub type Result<T> = std::result::Result<T, WsError>;

/// SOAP fault code raised when an admission-controlled host sheds a
/// request because its accept queue is full. Unlike other SOAP faults
/// this one is transient by construction, so the resilience layer
/// treats it as retryable-with-backoff.
pub const SERVER_BUSY_CODE: &str = "ServerBusy";

/// Errors raised by the Web Services layer.
#[derive(Debug, Clone, PartialEq)]
pub enum WsError {
    /// A SOAP fault returned by a service.
    Fault {
        /// Fault code, e.g. `"Client"` or `"Server"`.
        code: String,
        /// Fault string.
        message: String,
    },
    /// Transport-level failure on the **request leg**: the call never
    /// reached the service, so no work was performed and a retry is
    /// safe.
    Transport(String),
    /// Transport-level failure on the **response leg**: the service may
    /// have executed the operation but the reply was lost, so a retry
    /// can duplicate work. Retry layers must account for this.
    ResponseLost(String),
    /// A resilience policy's per-call deadline elapsed before the call
    /// (including retries and backoff) completed.
    DeadlineExceeded {
        /// Virtual time consumed when the deadline check fired.
        elapsed: Duration,
        /// The deadline that was exceeded.
        deadline: Duration,
    },
    /// A circuit breaker is open for the named host; the call was
    /// rejected without touching the network.
    CircuitOpen(String),
    /// The target host does not exist on the simulated network.
    UnknownHost(String),
    /// The target service is not deployed in the container.
    NotDeployed(String),
    /// The requested operation does not exist on the service.
    UnknownOperation {
        /// Service name.
        service: String,
        /// Operation name.
        operation: String,
    },
    /// XML could not be parsed (offset, message).
    Xml {
        /// Byte offset of the failure.
        offset: usize,
        /// Description.
        message: String,
    },
    /// An envelope or WSDL document was structurally invalid.
    Malformed(String),
    /// Disk-backed instance store I/O failure.
    Store(String),
    /// A registry inquiry matched nothing.
    NotFound(String),
}

impl fmt::Display for WsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsError::Fault { code, message } => write!(f, "SOAP fault [{code}]: {message}"),
            WsError::Transport(m) => write!(f, "transport error: {m}"),
            WsError::ResponseLost(m) => {
                write!(f, "response lost (work may have executed): {m}")
            }
            WsError::DeadlineExceeded { elapsed, deadline } => {
                write!(
                    f,
                    "deadline exceeded: {elapsed:?} elapsed of {deadline:?} allowed"
                )
            }
            WsError::CircuitOpen(h) => write!(f, "circuit open for host {h:?}"),
            WsError::UnknownHost(h) => write!(f, "unknown host {h:?}"),
            WsError::NotDeployed(s) => write!(f, "service {s:?} is not deployed"),
            WsError::UnknownOperation { service, operation } => {
                write!(f, "service {service:?} has no operation {operation:?}")
            }
            WsError::Xml { offset, message } => {
                write!(f, "XML error at byte {offset}: {message}")
            }
            WsError::Malformed(m) => write!(f, "malformed document: {m}"),
            WsError::Store(m) => write!(f, "instance store error: {m}"),
            WsError::NotFound(m) => write!(f, "not found: {m}"),
        }
    }
}

impl WsError {
    /// `true` for failures of the network path itself (either leg,
    /// unreachable hosts, open breakers, blown deadlines) as opposed to
    /// the service answering with a fault or a bad document.
    pub fn is_transport_level(&self) -> bool {
        matches!(
            self,
            WsError::Transport(_)
                | WsError::ResponseLost(_)
                | WsError::UnknownHost(_)
                | WsError::CircuitOpen(_)
                | WsError::DeadlineExceeded { .. }
        )
    }

    /// `true` when the failed call may nonetheless have executed on the
    /// service (the reply was lost after dispatch). Retrying such a
    /// call is not idempotence-free.
    pub fn work_may_have_executed(&self) -> bool {
        matches!(self, WsError::ResponseLost(_))
    }

    /// `true` for a `ServerBusy` SOAP fault — the host's admission
    /// controller shed the request before it reached a service. No work
    /// was performed, and the overload is transient, so callers should
    /// back off (or fail over to a less-loaded replica) and retry.
    pub fn is_server_busy(&self) -> bool {
        matches!(self, WsError::Fault { code, .. } if code == SERVER_BUSY_CODE)
    }

    /// `true` when a retry (on this or another replica) can meaningfully
    /// be attempted: transport failures on either leg, plus `ServerBusy`
    /// sheds (transient overload, no work performed). Other SOAP faults
    /// and malformed requests are deterministic and excluded; open
    /// breakers and blown deadlines are terminal for the current call.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            WsError::Transport(_) | WsError::ResponseLost(_) | WsError::UnknownHost(_)
        ) || self.is_server_busy()
    }
}

impl std::error::Error for WsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_fault() {
        let e = WsError::Fault {
            code: "Server".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "SOAP fault [Server]: boom");
    }

    #[test]
    fn display_unknown_operation() {
        let e = WsError::UnknownOperation {
            service: "S".into(),
            operation: "op".into(),
        };
        assert!(e.to_string().contains("\"op\""));
    }

    #[test]
    fn is_std_error() {
        fn check(_: &dyn std::error::Error) {}
        check(&WsError::Transport("x".into()));
    }

    #[test]
    fn server_busy_is_retryable_other_faults_are_not() {
        let busy = WsError::Fault {
            code: SERVER_BUSY_CODE.into(),
            message: "queue full".into(),
        };
        assert!(busy.is_server_busy());
        assert!(busy.is_retryable());
        assert!(!busy.is_transport_level());
        assert!(!busy.work_may_have_executed());

        let server = WsError::Fault {
            code: "Server".into(),
            message: "boom".into(),
        };
        assert!(!server.is_server_busy());
        assert!(!server.is_retryable());
    }
}
