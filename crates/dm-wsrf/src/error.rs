//! Error type shared across the Web Services substrate.

use std::fmt;

/// Result alias used throughout `dm-wsrf`.
pub type Result<T> = std::result::Result<T, WsError>;

/// Errors raised by the Web Services layer.
#[derive(Debug, Clone, PartialEq)]
pub enum WsError {
    /// A SOAP fault returned by a service.
    Fault {
        /// Fault code, e.g. `"Client"` or `"Server"`.
        code: String,
        /// Fault string.
        message: String,
    },
    /// Transport-level failure (host unreachable, injected fault, ...).
    Transport(String),
    /// The target host does not exist on the simulated network.
    UnknownHost(String),
    /// The target service is not deployed in the container.
    NotDeployed(String),
    /// The requested operation does not exist on the service.
    UnknownOperation {
        /// Service name.
        service: String,
        /// Operation name.
        operation: String,
    },
    /// XML could not be parsed (offset, message).
    Xml {
        /// Byte offset of the failure.
        offset: usize,
        /// Description.
        message: String,
    },
    /// An envelope or WSDL document was structurally invalid.
    Malformed(String),
    /// Disk-backed instance store I/O failure.
    Store(String),
    /// A registry inquiry matched nothing.
    NotFound(String),
}

impl fmt::Display for WsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsError::Fault { code, message } => write!(f, "SOAP fault [{code}]: {message}"),
            WsError::Transport(m) => write!(f, "transport error: {m}"),
            WsError::UnknownHost(h) => write!(f, "unknown host {h:?}"),
            WsError::NotDeployed(s) => write!(f, "service {s:?} is not deployed"),
            WsError::UnknownOperation { service, operation } => {
                write!(f, "service {service:?} has no operation {operation:?}")
            }
            WsError::Xml { offset, message } => {
                write!(f, "XML error at byte {offset}: {message}")
            }
            WsError::Malformed(m) => write!(f, "malformed document: {m}"),
            WsError::Store(m) => write!(f, "instance store error: {m}"),
            WsError::NotFound(m) => write!(f, "not found: {m}"),
        }
    }
}

impl std::error::Error for WsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_fault() {
        let e = WsError::Fault { code: "Server".into(), message: "boom".into() };
        assert_eq!(e.to_string(), "SOAP fault [Server]: boom");
    }

    #[test]
    fn display_unknown_operation() {
        let e = WsError::UnknownOperation { service: "S".into(), operation: "op".into() };
        assert!(e.to_string().contains("\"op\""));
    }

    #[test]
    fn is_std_error() {
        fn check(_: &dyn std::error::Error) {}
        check(&WsError::Transport("x".into()));
    }
}
