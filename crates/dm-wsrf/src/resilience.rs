//! Resilience primitives for calls over the simulated network.
//!
//! The paper's framework (§3, category 4) requires "fault tolerance in
//! the face of service failures". This module supplies the three
//! mechanisms the rest of the stack composes:
//!
//! * [`ResiliencePolicy`] — a per-call **deadline** on the virtual
//!   clock plus a bounded **retry budget** with exponential backoff and
//!   decorrelated jitter ([`BackoffSchedule`]). Backoff sleeps are
//!   charged to virtual time, so experiments stay fast and
//!   deterministic while recovery latency remains measurable.
//! * [`CircuitBreaker`] — a per-host Closed → Open → Half-open state
//!   machine over a sliding window of call outcomes. An open breaker
//!   rejects calls without touching the network; after `open_for` of
//!   virtual time it admits a limited number of probes.
//! * [`ResilientCaller`] — ties the two to a [`Network`]: each
//!   invocation consults the host's breaker, retries transport-level
//!   failures under the policy, and records outcomes back into the
//!   breaker.
//!
//! All time here is **virtual** (`Network::now`), never wall-clock.

use crate::error::{Result, WsError};
use crate::monitor::MonitorLog;
use crate::soap::SoapValue;
use crate::transport::Network;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Per-call resilience policy: deadline, retry budget, backoff shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Budget of virtual time one logical call (attempts + backoff) may
    /// consume before failing with [`WsError::DeadlineExceeded`].
    pub deadline: Duration,
    /// Maximum attempts per call (1 = no retries).
    pub max_attempts: u32,
    /// First backoff sleep; later sleeps grow with decorrelated jitter.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            deadline: Duration::from_secs(30),
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl ResiliencePolicy {
    /// Policy with a specific deadline, other fields default.
    pub fn with_deadline(deadline: Duration) -> Self {
        ResiliencePolicy {
            deadline,
            ..ResiliencePolicy::default()
        }
    }

    /// Builder: cap attempts per call.
    pub fn attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Builder: backoff bounds.
    pub fn backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_backoff = base;
        self.max_backoff = max.max(base);
        self
    }
}

/// Exponential backoff with decorrelated jitter: each sleep is drawn
/// uniformly from `[base, prev * 3]`, clamped to `max`. Deterministic
/// for a given seed.
#[derive(Debug)]
pub struct BackoffSchedule {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: StdRng,
}

impl BackoffSchedule {
    /// Schedule for one logical call under `policy`.
    pub fn new(policy: &ResiliencePolicy, seed: u64) -> BackoffSchedule {
        BackoffSchedule {
            base: policy.base_backoff,
            cap: policy.max_backoff,
            prev: policy.base_backoff,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next sleep duration.
    pub fn next_delay(&mut self) -> Duration {
        let base = self.base.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64)
            .saturating_mul(3)
            .max(base + 1);
        let drawn = self.rng.random_range(base..hi);
        let delay = Duration::from_nanos(drawn).min(self.cap);
        self.prev = delay.max(self.base);
        delay
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally; outcomes feed the sliding window.
    Closed,
    /// Calls are rejected without touching the network.
    Open,
    /// A limited number of probe calls are admitted; one success closes
    /// the breaker, one failure re-opens it.
    HalfOpen,
}

/// Circuit breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding window length (most recent call outcomes).
    pub window: usize,
    /// Minimum calls in the window before the failure rate is trusted.
    pub min_calls: usize,
    /// Failure rate in the window at which the breaker opens.
    pub failure_rate_to_open: f64,
    /// Virtual time an open breaker waits before admitting probes.
    pub open_for: Duration,
    /// Probe calls admitted while half-open.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            min_calls: 4,
            failure_rate_to_open: 0.5,
            open_for: Duration::from_secs(5),
            half_open_probes: 1,
        }
    }
}

#[derive(Debug)]
enum BreakerPhase {
    Closed,
    Open { until: Duration },
    HalfOpen { probes_left: u32 },
}

#[derive(Debug)]
struct BreakerInner {
    phase: BreakerPhase,
    /// Most recent outcomes, `true` = failure.
    window: VecDeque<bool>,
    opened_count: u64,
}

/// A per-host circuit breaker on the virtual clock.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                phase: BreakerPhase::Closed,
                window: VecDeque::new(),
                opened_count: 0,
            }),
        }
    }

    /// May a call proceed at virtual time `now`? Open breakers whose
    /// `open_for` has elapsed transition to half-open here and admit a
    /// probe; while half-open, only the configured probe count passes.
    pub fn allow(&self, now: Duration) -> bool {
        let mut inner = self.inner.lock();
        match inner.phase {
            BreakerPhase::Closed => true,
            BreakerPhase::Open { until } => {
                if now >= until {
                    let probes = self.config.half_open_probes.max(1);
                    inner.phase = BreakerPhase::HalfOpen {
                        probes_left: probes - 1,
                    };
                    true
                } else {
                    false
                }
            }
            BreakerPhase::HalfOpen { probes_left } => {
                if probes_left > 0 {
                    inner.phase = BreakerPhase::HalfOpen {
                        probes_left: probes_left - 1,
                    };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful call finishing at `now`.
    pub fn record_success(&self, _now: Duration) {
        let mut inner = self.inner.lock();
        match inner.phase {
            BreakerPhase::HalfOpen { .. } => {
                // Probe succeeded: close and forget the bad history.
                inner.phase = BreakerPhase::Closed;
                inner.window.clear();
            }
            _ => self.push_outcome(&mut inner, false, _now),
        }
    }

    /// Record a failed call finishing at `now`.
    pub fn record_failure(&self, now: Duration) {
        let mut inner = self.inner.lock();
        match inner.phase {
            BreakerPhase::HalfOpen { .. } => {
                inner.phase = BreakerPhase::Open {
                    until: now + self.config.open_for,
                };
                inner.opened_count += 1;
                inner.window.clear();
            }
            _ => self.push_outcome(&mut inner, true, now),
        }
    }

    fn push_outcome(&self, inner: &mut BreakerInner, failed: bool, now: Duration) {
        inner.window.push_back(failed);
        while inner.window.len() > self.config.window {
            inner.window.pop_front();
        }
        if matches!(inner.phase, BreakerPhase::Closed)
            && inner.window.len() >= self.config.min_calls
        {
            let failures = inner.window.iter().filter(|&&f| f).count();
            let rate = failures as f64 / inner.window.len() as f64;
            if rate >= self.config.failure_rate_to_open {
                inner.phase = BreakerPhase::Open {
                    until: now + self.config.open_for,
                };
                inner.opened_count += 1;
                inner.window.clear();
            }
        }
    }

    /// Observable state at virtual time `now` (an open breaker whose
    /// wait has elapsed reads as half-open).
    pub fn state(&self, now: Duration) -> BreakerState {
        let inner = self.inner.lock();
        match inner.phase {
            BreakerPhase::Closed => BreakerState::Closed,
            BreakerPhase::Open { until } => {
                if now >= until {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
            BreakerPhase::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// How many times this breaker has tripped open.
    pub fn times_opened(&self) -> u64 {
        self.inner.lock().opened_count
    }
}

/// One breaker per host, created on demand with a shared config.
#[derive(Debug)]
pub struct BreakerBoard {
    config: BreakerConfig,
    breakers: Mutex<HashMap<String, Arc<CircuitBreaker>>>,
}

impl Default for BreakerBoard {
    fn default() -> Self {
        BreakerBoard::new(BreakerConfig::default())
    }
}

impl BreakerBoard {
    /// A board handing out breakers with `config`.
    pub fn new(config: BreakerConfig) -> BreakerBoard {
        BreakerBoard {
            config,
            breakers: Mutex::new(HashMap::new()),
        }
    }

    /// The breaker for `host`, created closed on first use.
    pub fn breaker(&self, host: &str) -> Arc<CircuitBreaker> {
        let mut breakers = self.breakers.lock();
        Arc::clone(
            breakers
                .entry(host.to_string())
                .or_insert_with(|| Arc::new(CircuitBreaker::new(self.config))),
        )
    }

    /// Convenience: may a call to `host` proceed at `now`?
    pub fn allow(&self, host: &str, now: Duration) -> bool {
        self.breaker(host).allow(now)
    }

    /// Hosts whose breaker is currently open at `now`.
    pub fn open_hosts(&self, now: Duration) -> Vec<String> {
        let mut hosts: Vec<String> = self
            .breakers
            .lock()
            .iter()
            .filter(|(_, b)| b.state(now) == BreakerState::Open)
            .map(|(h, _)| h.clone())
            .collect();
        hosts.sort();
        hosts
    }

    /// Replay a monitor log's attempt history into the per-host
    /// windows, as if the breakers had watched those calls happen.
    pub fn observe_log(&self, log: &MonitorLog, now: Duration) {
        for event in log.snapshot() {
            let breaker = self.breaker(&event.host);
            if event.outcome.is_failure() {
                breaker.record_failure(now);
            } else {
                breaker.record_success(now);
            }
        }
    }
}

/// A scripted process death on the virtual clock: the process hosting
/// a component (an enactment orchestrator, a worker, a container) is
/// killed at `at` and a replacement is available again `down_for`
/// later. Like the transport's outage windows, the death window is
/// start-inclusive and end-exclusive: the process is down at exactly
/// `at`, and back at exactly `at + down_for`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashRestart {
    /// Virtual instant the process dies.
    pub at: Duration,
    /// Downtime before a replacement process is available (zero models
    /// an instant supervisor restart).
    pub down_for: Duration,
}

impl CrashRestart {
    /// A crash at `at` with an instant restart.
    pub fn at(at: Duration) -> CrashRestart {
        CrashRestart {
            at,
            down_for: Duration::ZERO,
        }
    }

    /// `true` while the process is dead (start-inclusive,
    /// end-exclusive).
    pub fn is_down(&self, now: Duration) -> bool {
        now >= self.at && now < self.at + self.down_for
    }
}

/// A schedule of [`CrashRestart`] faults for one process, polled by the
/// component that simulates dying. Each scheduled crash fires **once**:
/// [`CrashScript::poll_kill`] returns `true` the first time it is
/// consulted at or after a crash instant, and the component is expected
/// to abandon whatever it was doing, exactly as a killed process would.
/// A restarted replacement polling the same script does not die again
/// at the same instant.
#[derive(Debug, Default)]
pub struct CrashScript {
    crashes: Mutex<Vec<(CrashRestart, bool)>>,
    kills: Mutex<u64>,
}

impl CrashScript {
    /// An empty script (nothing ever dies).
    pub fn new() -> CrashScript {
        CrashScript::default()
    }

    /// Schedule a crash.
    pub fn schedule(&self, crash: CrashRestart) {
        self.crashes.lock().push((crash, false));
    }

    /// Builder form of [`CrashScript::schedule`].
    pub fn with_crash(self, crash: CrashRestart) -> CrashScript {
        self.schedule(crash);
        self
    }

    /// `true` while any scheduled death window covers `now` — the
    /// replacement process is not up yet.
    pub fn is_down(&self, now: Duration) -> bool {
        self.crashes.lock().iter().any(|(c, _)| c.is_down(now))
    }

    /// Consult the script at `now`. Returns `true` (once per scheduled
    /// crash) when a crash instant has been reached: the polling
    /// process must treat itself as killed. Crashes scheduled in the
    /// past all fire on the first poll after them — a process cannot
    /// skip a kill by polling rarely.
    pub fn poll_kill(&self, now: Duration) -> bool {
        let mut crashes = self.crashes.lock();
        for (crash, fired) in crashes.iter_mut() {
            if !*fired && now >= crash.at {
                *fired = true;
                *self.kills.lock() += 1;
                return true;
            }
        }
        false
    }

    /// Number of scheduled crashes that have fired.
    pub fn kills_fired(&self) -> u64 {
        *self.kills.lock()
    }

    /// Re-arm every scheduled crash (for repeated experiment runs).
    pub fn reset(&self) {
        for (_, fired) in self.crashes.lock().iter_mut() {
            *fired = false;
        }
        *self.kills.lock() = 0;
    }
}

/// Outcome statistics for one resilient call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CallStats {
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Total backoff charged to virtual time.
    pub backoff: Duration,
    /// Attempts that failed after dispatch (`work_may_have_executed`),
    /// i.e. an upper bound on duplicated server-side work.
    pub possibly_duplicated: u32,
    /// Attempts rejected with a `ServerBusy` shed by an overloaded
    /// host's admission controller.
    pub busy: u32,
}

/// A [`Network`] front-end applying a [`ResiliencePolicy`] and a
/// [`BreakerBoard`] to every invocation.
#[derive(Debug, Clone)]
pub struct ResilientCaller {
    network: Arc<Network>,
    board: Arc<BreakerBoard>,
    policy: ResiliencePolicy,
    seed: u64,
}

impl ResilientCaller {
    /// Wrap `network` with `policy`, sharing `board` across callers so
    /// every layer sees the same per-host breaker state.
    pub fn new(
        network: Arc<Network>,
        board: Arc<BreakerBoard>,
        policy: ResiliencePolicy,
    ) -> ResilientCaller {
        ResilientCaller {
            network,
            board,
            policy,
            seed: 0x5EED,
        }
    }

    /// Use a specific backoff-jitter seed (determinism across runs).
    pub fn with_seed(mut self, seed: u64) -> ResilientCaller {
        self.seed = seed;
        self
    }

    /// The policy in force.
    pub fn policy(&self) -> ResiliencePolicy {
        self.policy
    }

    /// The shared breaker board.
    pub fn board(&self) -> &Arc<BreakerBoard> {
        &self.board
    }

    /// The underlying network.
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// Invoke with deadline, retries, backoff, and breaker accounting.
    pub fn invoke(
        &self,
        host: &str,
        service: &str,
        operation: &str,
        args: Vec<(String, SoapValue)>,
    ) -> Result<SoapValue> {
        self.invoke_with_stats(host, service, operation, args)
            .map(|(v, _)| v)
    }

    /// Like [`invoke`](Self::invoke) but also reports attempt counts
    /// and backoff so callers can surface them in execution reports.
    pub fn invoke_with_stats(
        &self,
        host: &str,
        service: &str,
        operation: &str,
        args: Vec<(String, SoapValue)>,
    ) -> Result<(SoapValue, CallStats)> {
        let (result, stats) = self.invoke_collect(host, service, operation, args);
        result.map(|value| (value, stats))
    }

    /// Like [`invoke_with_stats`](Self::invoke_with_stats) but reports
    /// the stats even when the call ultimately fails, so failover
    /// layers can account for attempts and backoff spent on hosts that
    /// never answered.
    pub fn invoke_collect(
        &self,
        host: &str,
        service: &str,
        operation: &str,
        args: Vec<(String, SoapValue)>,
    ) -> (Result<SoapValue>, CallStats) {
        let breaker = self.board.breaker(host);
        let start = self.network.now();
        let mut backoff =
            BackoffSchedule::new(&self.policy, self.seed ^ hash_call(host, operation));
        let mut stats = CallStats::default();
        let mut last_err = WsError::Transport("no attempt made".into());

        for attempt in 1..=self.policy.max_attempts {
            let now = self.network.now();
            if now - start >= self.policy.deadline {
                let err = WsError::DeadlineExceeded {
                    elapsed: now - start,
                    deadline: self.policy.deadline,
                };
                return (Err(err), stats);
            }
            if !breaker.allow(now) {
                return (Err(WsError::CircuitOpen(host.to_string())), stats);
            }
            stats.attempts = attempt;
            match self.network.invoke(host, service, operation, args.clone()) {
                Ok(value) => {
                    breaker.record_success(self.network.now());
                    return (Ok(value), stats);
                }
                Err(e) => {
                    breaker.record_failure(self.network.now());
                    if e.work_may_have_executed() {
                        stats.possibly_duplicated += 1;
                    }
                    if e.is_server_busy() {
                        stats.busy += 1;
                    }
                    // Response-leg decode errors (corrupt envelopes) are
                    // transport artefacts here, so retry those too.
                    let retryable = e.is_retryable()
                        || matches!(e, WsError::Xml { .. } | WsError::Malformed(_));
                    last_err = e;
                    if !retryable {
                        return (Err(last_err), stats);
                    }
                }
            }
            if attempt < self.policy.max_attempts {
                let mut delay = backoff.next_delay();
                // Shed-aware backoff: a ServerBusy response means the
                // host's accept queue is full, so wait harder than for
                // a lost packet and give the queue time to drain.
                if last_err.is_server_busy() {
                    delay = (delay * 2).min(self.policy.max_backoff);
                }
                let now = self.network.now();
                let remaining = self.policy.deadline.saturating_sub(now - start);
                if delay >= remaining {
                    let err = WsError::DeadlineExceeded {
                        elapsed: (now - start) + delay.min(remaining),
                        deadline: self.policy.deadline,
                    };
                    return (Err(err), stats);
                }
                self.network.advance_virtual_time(delay);
                stats.backoff += delay;
            }
        }
        (Err(last_err), stats)
    }
}

/// Stable per-(host, operation) seed perturbation so concurrent calls
/// don't share one jitter stream.
fn hash_call(host: &str, operation: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in host.bytes().chain([0]).chain(operation.bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::test_support::EchoService;

    fn echo_network() -> Arc<Network> {
        let net = Arc::new(Network::new());
        net.add_host("host-a").deploy(Arc::new(EchoService));
        net
    }

    fn msg() -> Vec<(String, SoapValue)> {
        vec![("message".into(), SoapValue::Text("hi".into()))]
    }

    #[test]
    fn backoff_grows_within_bounds() {
        let policy = ResiliencePolicy::default()
            .backoff(Duration::from_millis(10), Duration::from_millis(500));
        let mut schedule = BackoffSchedule::new(&policy, 7);
        let mut prev = Duration::from_millis(10);
        for _ in 0..50 {
            let d = schedule.next_delay();
            assert!(d >= Duration::from_millis(10), "below base: {d:?}");
            assert!(d <= Duration::from_millis(500), "above cap: {d:?}");
            assert!(d.as_nanos() <= prev.as_nanos() * 3 + 1, "jumped too far");
            prev = d.max(Duration::from_millis(10));
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let policy = ResiliencePolicy::default();
        let mut a = BackoffSchedule::new(&policy, 99);
        let mut b = BackoffSchedule::new(&policy, 99);
        for _ in 0..10 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn breaker_opens_at_failure_rate_and_recovers_via_probe() {
        let config = BreakerConfig {
            window: 8,
            min_calls: 4,
            failure_rate_to_open: 0.5,
            open_for: Duration::from_secs(1),
            half_open_probes: 1,
        };
        let breaker = CircuitBreaker::new(config);
        let t0 = Duration::ZERO;
        assert_eq!(breaker.state(t0), BreakerState::Closed);

        for _ in 0..4 {
            assert!(breaker.allow(t0));
            breaker.record_failure(t0);
        }
        assert_eq!(breaker.state(t0), BreakerState::Open);
        assert!(!breaker.allow(t0));
        assert_eq!(breaker.times_opened(), 1);

        // Before `open_for` elapses nothing passes; after it, one probe.
        let half = Duration::from_millis(500);
        assert!(!breaker.allow(half));
        let later = Duration::from_secs(2);
        assert_eq!(breaker.state(later), BreakerState::HalfOpen);
        assert!(breaker.allow(later), "first probe admitted");
        assert!(!breaker.allow(later), "second probe rejected");
        breaker.record_success(later);
        assert_eq!(breaker.state(later), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let config = BreakerConfig {
            open_for: Duration::from_secs(1),
            ..Default::default()
        };
        let breaker = CircuitBreaker::new(config);
        for _ in 0..4 {
            breaker.record_failure(Duration::ZERO);
        }
        let later = Duration::from_secs(2);
        assert!(breaker.allow(later));
        breaker.record_failure(later);
        assert_eq!(breaker.state(later), BreakerState::Open);
        assert_eq!(breaker.times_opened(), 2);
        assert!(!breaker.allow(later + Duration::from_millis(500)));
    }

    #[test]
    fn successful_calls_keep_breaker_closed() {
        let breaker = CircuitBreaker::new(BreakerConfig::default());
        for i in 0..100 {
            let now = Duration::from_millis(i);
            assert!(breaker.allow(now));
            // 25% failures: under the 50% trip threshold.
            if i % 4 == 0 {
                breaker.record_failure(now);
            } else {
                breaker.record_success(now);
            }
        }
        assert_eq!(breaker.state(Duration::from_secs(1)), BreakerState::Closed);
        assert_eq!(breaker.times_opened(), 0);
    }

    #[test]
    fn caller_succeeds_first_try_without_backoff() {
        let net = echo_network();
        let caller = ResilientCaller::new(
            Arc::clone(&net),
            Arc::new(BreakerBoard::default()),
            ResiliencePolicy::default(),
        );
        let (value, stats) = caller
            .invoke_with_stats("host-a", "Echo", "echo", msg())
            .unwrap();
        assert_eq!(value, SoapValue::Text("hi".into()));
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.backoff, Duration::ZERO);
    }

    #[test]
    fn caller_retries_through_transient_faults() {
        let net = echo_network();
        net.set_failure_probability("host-a", 0.5);
        net.reseed_faults(11);
        let caller = ResilientCaller::new(
            Arc::clone(&net),
            Arc::new(BreakerBoard::new(BreakerConfig {
                // Unreachable threshold: the injected fault rate must
                // not trip the breaker in this test.
                failure_rate_to_open: 2.0,
                ..Default::default()
            })),
            ResiliencePolicy::default().attempts(8),
        );
        let mut successes = 0;
        for _ in 0..20 {
            if caller.invoke("host-a", "Echo", "echo", msg()).is_ok() {
                successes += 1;
            }
        }
        // Each attempt fails with p = 1 - 0.5² = 0.75 (both legs are
        // checked); 8 attempts leave ~10% per call, so most of 20 land.
        assert!(successes >= 14, "successes {successes}");
        assert!(net.virtual_time() > Duration::ZERO);
    }

    #[test]
    fn caller_respects_deadline_with_backoff_charged_to_virtual_time() {
        let net = echo_network();
        net.set_host_down("host-a", true);
        let policy = ResiliencePolicy::with_deadline(Duration::from_millis(50))
            .attempts(100)
            .backoff(Duration::from_millis(20), Duration::from_millis(40));
        let caller = ResilientCaller::new(
            Arc::clone(&net),
            Arc::new(BreakerBoard::new(BreakerConfig {
                min_calls: 1000, // effectively disabled
                ..Default::default()
            })),
            policy,
        );
        let before = net.virtual_time();
        let err = caller.invoke("host-a", "Echo", "echo", msg()).unwrap_err();
        assert!(
            matches!(err, WsError::DeadlineExceeded { .. }),
            "expected deadline, got {err:?}"
        );
        let spent = net.virtual_time() - before;
        assert!(spent <= Duration::from_millis(50), "overspent: {spent:?}");
    }

    #[test]
    fn caller_fails_fast_when_breaker_open() {
        let net = echo_network();
        net.set_host_down("host-a", true);
        let board = Arc::new(BreakerBoard::new(BreakerConfig {
            min_calls: 2,
            window: 4,
            failure_rate_to_open: 0.5,
            open_for: Duration::from_secs(60),
            half_open_probes: 1,
        }));
        let caller = ResilientCaller::new(
            Arc::clone(&net),
            Arc::clone(&board),
            ResiliencePolicy::default().attempts(1),
        );
        // Two failing calls trip the breaker...
        assert!(caller.invoke("host-a", "Echo", "echo", msg()).is_err());
        assert!(caller.invoke("host-a", "Echo", "echo", msg()).is_err());
        // ...after which calls are rejected without reaching the wire.
        let before = net.host("host-a").unwrap().monitor().len();
        let err = caller.invoke("host-a", "Echo", "echo", msg()).unwrap_err();
        assert_eq!(err, WsError::CircuitOpen("host-a".into()));
        assert_eq!(net.host("host-a").unwrap().monitor().len(), before);
        assert_eq!(board.open_hosts(net.now()), vec!["host-a".to_string()]);
    }

    #[test]
    fn soap_faults_are_not_retried_by_caller() {
        let net = echo_network();
        let caller = ResilientCaller::new(
            Arc::clone(&net),
            Arc::new(BreakerBoard::default()),
            ResiliencePolicy::default().attempts(5),
        );
        let (err, attempts) = match caller.invoke_with_stats("host-a", "Echo", "fail", vec![]) {
            Err(e) => (e, net.monitor().len()),
            Ok(_) => panic!("fail op should fault"),
        };
        assert!(matches!(err, WsError::Fault { .. }));
        assert_eq!(attempts, 1, "deterministic fault retried");
    }

    #[test]
    fn server_busy_is_retried_with_extended_backoff() {
        use crate::container::CapacityConfig;
        let net = echo_network();
        net.host("host-a")
            .unwrap()
            .set_capacity(Some(CapacityConfig {
                workers: 1,
                queue_limit: Some(0),
                service_time: Duration::from_millis(50),
            }));
        // Saturate the single worker, then rewind so the resilient call
        // arrives while it is still busy.
        net.invoke("host-a", "Echo", "echo", msg()).unwrap();
        net.set_virtual_time(Duration::ZERO);

        let caller = ResilientCaller::new(
            Arc::clone(&net),
            Arc::new(BreakerBoard::new(BreakerConfig {
                min_calls: 100,
                ..Default::default()
            })),
            ResiliencePolicy::default().attempts(5),
        );
        let (value, stats) = caller
            .invoke_with_stats("host-a", "Echo", "echo", msg())
            .expect("busy host drains within the retry budget");
        assert_eq!(value, SoapValue::Text("hi".into()));
        assert!(stats.busy >= 1, "no shed observed: {stats:?}");
        assert_eq!(
            stats.attempts,
            stats.busy + 1,
            "every shed costs exactly one retry: {stats:?}"
        );
        // Shed-aware backoff doubles the drawn delay, so each busy
        // retry waits at least twice the 10 ms base.
        assert!(
            stats.backoff >= Duration::from_millis(20) * stats.busy,
            "backoff not extended after shed: {stats:?}"
        );
    }

    #[test]
    fn crash_windows_are_start_inclusive_end_exclusive() {
        let crash = CrashRestart {
            at: Duration::from_millis(10),
            down_for: Duration::from_millis(5),
        };
        assert!(!crash.is_down(Duration::from_millis(9)));
        assert!(crash.is_down(Duration::from_millis(10)));
        assert!(crash.is_down(Duration::from_millis(14)));
        assert!(!crash.is_down(Duration::from_millis(15)));
        // Instant restart: never observed down.
        let instant = CrashRestart::at(Duration::from_millis(3));
        assert!(!instant.is_down(Duration::from_millis(3)));
    }

    #[test]
    fn crash_script_kills_once_per_scheduled_crash() {
        let script = CrashScript::new()
            .with_crash(CrashRestart::at(Duration::from_millis(5)))
            .with_crash(CrashRestart::at(Duration::from_millis(20)));
        // Before the first instant nothing fires.
        assert!(!script.poll_kill(Duration::from_millis(4)));
        assert_eq!(script.kills_fired(), 0);
        // At (or after) the instant the kill fires exactly once.
        assert!(script.poll_kill(Duration::from_millis(5)));
        assert!(!script.poll_kill(Duration::from_millis(6)));
        assert_eq!(script.kills_fired(), 1);
        // A rare poller cannot skip a kill: the second crash fires on
        // the first poll after its instant, however late.
        assert!(script.poll_kill(Duration::from_millis(500)));
        assert!(!script.poll_kill(Duration::from_millis(501)));
        assert_eq!(script.kills_fired(), 2);
    }

    #[test]
    fn crash_script_downtime_and_reset() {
        let script = CrashScript::new().with_crash(CrashRestart {
            at: Duration::from_millis(10),
            down_for: Duration::from_millis(10),
        });
        assert!(!script.is_down(Duration::from_millis(9)));
        assert!(script.is_down(Duration::from_millis(10)));
        assert!(script.is_down(Duration::from_millis(19)));
        assert!(!script.is_down(Duration::from_millis(20)));
        assert!(script.poll_kill(Duration::from_millis(12)));
        script.reset();
        assert_eq!(script.kills_fired(), 0);
        // Re-armed: the same crash fires again on the next run.
        assert!(script.poll_kill(Duration::from_millis(12)));
    }

    #[test]
    fn board_seeds_from_monitor_log() {
        let net = echo_network();
        net.set_host_down("host-a", true);
        for _ in 0..6 {
            let _ = net.invoke("host-a", "Echo", "echo", msg());
        }
        let board = BreakerBoard::default();
        board.observe_log(net.monitor(), net.now());
        assert_eq!(board.breaker("host-a").state(net.now()), BreakerState::Open);
    }
}
