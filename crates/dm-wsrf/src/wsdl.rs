//! WSDL-style service descriptions.
//!
//! "A Web Service is imported to the workspace by providing its WSDL
//! interface. Once the interface is provided Triana creates a tool for
//! each operation provided by the service" (§4). This module models the
//! parts of WSDL 1.1 that behaviour needs: a service name, an endpoint
//! address, and a port type listing operations with named, typed input
//! parts and one output part — with XML rendering and parsing so the
//! import path exercises a real document.

use crate::error::{Result, WsError};
use crate::xml::{parse, XmlElement};

/// A message part: name and XSD-ish type (`string`, `long`, `double`,
/// `boolean`, `base64Binary`, `list`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Part {
    /// Part name, e.g. `dataset`.
    pub name: String,
    /// Type name, e.g. `string`.
    pub type_name: String,
}

impl Part {
    /// Create a part.
    pub fn new<N: Into<String>, T: Into<String>>(name: N, type_name: T) -> Part {
        Part {
            name: name.into(),
            type_name: type_name.into(),
        }
    }
}

/// One operation of a port type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Operation name, e.g. `classifyInstance`.
    pub name: String,
    /// Input parts in call order.
    pub inputs: Vec<Part>,
    /// Output part.
    pub output: Part,
    /// One-line human documentation.
    pub documentation: String,
}

impl Operation {
    /// Create an operation.
    pub fn new<N: Into<String>>(name: N, inputs: Vec<Part>, output: Part) -> Operation {
        Operation {
            name: name.into(),
            inputs,
            output,
            documentation: String::new(),
        }
    }

    /// Builder: attach documentation.
    pub fn doc<D: Into<String>>(mut self, d: D) -> Operation {
        self.documentation = d.into();
        self
    }
}

/// A WSDL document: service name, endpoint, and operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WsdlDocument {
    /// Service name, e.g. `ClassifierService`.
    pub service: String,
    /// Endpoint address, e.g. `http://host-a:8080/axis/Classifier`.
    pub endpoint: String,
    /// Operations of the (single) port type.
    pub operations: Vec<Operation>,
}

impl WsdlDocument {
    /// Create a document.
    pub fn new<S: Into<String>, E: Into<String>>(service: S, endpoint: E) -> WsdlDocument {
        WsdlDocument {
            service: service.into(),
            endpoint: endpoint.into(),
            operations: Vec::new(),
        }
    }

    /// Builder: add an operation.
    pub fn operation(mut self, op: Operation) -> WsdlDocument {
        self.operations.push(op);
        self
    }

    /// Operation lookup by name.
    pub fn find_operation(&self, name: &str) -> Result<&Operation> {
        self.operations
            .iter()
            .find(|o| o.name == name)
            .ok_or_else(|| WsError::UnknownOperation {
                service: self.service.clone(),
                operation: name.into(),
            })
    }

    /// Render as a WSDL 1.1-flavoured XML document.
    pub fn to_xml(&self) -> String {
        let mut port_type =
            XmlElement::new("wsdl:portType").attr("name", format!("{}PortType", self.service));
        let mut messages: Vec<XmlElement> = Vec::new();
        for op in &self.operations {
            let in_msg = format!("{}Request", op.name);
            let out_msg = format!("{}Response", op.name);
            let mut input = XmlElement::new("wsdl:message").attr("name", in_msg.clone());
            for p in &op.inputs {
                input = input.child(
                    XmlElement::new("wsdl:part")
                        .attr("name", p.name.clone())
                        .attr("type", format!("xsd:{}", p.type_name)),
                );
            }
            messages.push(input);
            messages.push(
                XmlElement::new("wsdl:message")
                    .attr("name", out_msg.clone())
                    .child(
                        XmlElement::new("wsdl:part")
                            .attr("name", op.output.name.clone())
                            .attr("type", format!("xsd:{}", op.output.type_name)),
                    ),
            );
            let mut op_el = XmlElement::new("wsdl:operation").attr("name", op.name.clone());
            if !op.documentation.is_empty() {
                op_el = op_el.child(
                    XmlElement::new("wsdl:documentation").with_text(op.documentation.clone()),
                );
            }
            op_el = op_el
                .child(XmlElement::new("wsdl:input").attr("message", in_msg))
                .child(XmlElement::new("wsdl:output").attr("message", out_msg));
            port_type = port_type.child(op_el);
        }

        let mut doc = XmlElement::new("wsdl:definitions")
            .attr("name", self.service.clone())
            .attr("targetNamespace", format!("urn:{}", self.service))
            .attr("xmlns:wsdl", "http://schemas.xmlsoap.org/wsdl/")
            .attr("xmlns:xsd", "http://www.w3.org/2001/XMLSchema");
        for m in messages {
            doc = doc.child(m);
        }
        doc = doc.child(port_type);
        doc = doc.child(
            XmlElement::new("wsdl:service")
                .attr("name", self.service.clone())
                .child(
                    XmlElement::new("wsdl:port")
                        .attr("name", format!("{}Port", self.service))
                        .child(
                            XmlElement::new("soap:address").attr("location", self.endpoint.clone()),
                        ),
                ),
        );
        doc.to_pretty_xml()
    }

    /// Parse a document produced by [`WsdlDocument::to_xml`].
    pub fn from_xml(xml: &str) -> Result<WsdlDocument> {
        let doc = parse(xml)?;
        let service_el = doc
            .find("service")
            .ok_or_else(|| WsError::Malformed("no wsdl:service".into()))?;
        let service = service_el
            .attribute("name")
            .ok_or_else(|| WsError::Malformed("service has no name".into()))?
            .to_string();
        let endpoint = service_el
            .find("port")
            .and_then(|p| p.find("address"))
            .and_then(|a| a.attribute("location"))
            .unwrap_or("")
            .to_string();

        // Index messages.
        let mut messages: Vec<(String, Vec<Part>)> = Vec::new();
        for m in doc.find_all("message") {
            let name = m.attribute("name").unwrap_or("").to_string();
            let parts = m
                .find_all("part")
                .map(|p| {
                    Part::new(
                        p.attribute("name").unwrap_or(""),
                        p.attribute("type")
                            .unwrap_or("xsd:string")
                            .trim_start_matches("xsd:"),
                    )
                })
                .collect();
            messages.push((name, parts));
        }
        let lookup = |name: &str| -> Vec<Part> {
            messages
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, p)| p.clone())
                .unwrap_or_default()
        };

        let port_type = doc
            .find("portType")
            .ok_or_else(|| WsError::Malformed("no wsdl:portType".into()))?;
        let operations = port_type
            .find_all("operation")
            .map(|op_el| -> Result<Operation> {
                let name = op_el
                    .attribute("name")
                    .ok_or_else(|| WsError::Malformed("operation has no name".into()))?
                    .to_string();
                let in_msg = op_el
                    .find("input")
                    .and_then(|i| i.attribute("message"))
                    .unwrap_or("")
                    .to_string();
                let out_msg = op_el
                    .find("output")
                    .and_then(|o| o.attribute("message"))
                    .unwrap_or("")
                    .to_string();
                let inputs = lookup(&in_msg);
                let output = lookup(&out_msg)
                    .into_iter()
                    .next()
                    .unwrap_or_else(|| Part::new("return", "string"));
                let documentation = op_el
                    .find("documentation")
                    .map(|d| d.text.clone())
                    .unwrap_or_default();
                Ok(Operation {
                    name,
                    inputs,
                    output,
                    documentation,
                })
            })
            .collect::<Result<_>>()?;

        Ok(WsdlDocument {
            service,
            endpoint,
            operations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classifier_wsdl() -> WsdlDocument {
        WsdlDocument::new("Classifier", "http://host-a:8080/axis/Classifier")
            .operation(
                Operation::new("getClassifiers", vec![], Part::new("classifiers", "list"))
                    .doc("list the classifiers known to the service"),
            )
            .operation(Operation::new(
                "getOptions",
                vec![Part::new("classifier", "string")],
                Part::new("options", "list"),
            ))
            .operation(Operation::new(
                "classifyInstance",
                vec![
                    Part::new("dataset", "string"),
                    Part::new("classifier", "string"),
                    Part::new("options", "string"),
                    Part::new("attribute", "string"),
                ],
                Part::new("model", "string"),
            ))
    }

    #[test]
    fn xml_roundtrip() {
        let doc = classifier_wsdl();
        let xml = doc.to_xml();
        assert!(xml.contains("wsdl:definitions"));
        assert!(xml.contains("classifyInstance"));
        let back = WsdlDocument::from_xml(&xml).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn operation_lookup() {
        let doc = classifier_wsdl();
        assert!(doc.find_operation("getOptions").is_ok());
        assert!(matches!(
            doc.find_operation("bogus"),
            Err(WsError::UnknownOperation { .. })
        ));
    }

    #[test]
    fn four_inputs_of_classify_instance() {
        // §4.1: "The classify operation has 4 inputs: classifier name,
        // options, data set in ARFF format and attribute name".
        let doc = classifier_wsdl();
        let op = doc.find_operation("classifyInstance").unwrap();
        assert_eq!(op.inputs.len(), 4);
    }

    #[test]
    fn documentation_roundtrips() {
        let doc = classifier_wsdl();
        let back = WsdlDocument::from_xml(&doc.to_xml()).unwrap();
        assert_eq!(
            back.find_operation("getClassifiers").unwrap().documentation,
            "list the classifiers known to the service"
        );
    }

    #[test]
    fn endpoint_preserved() {
        let back = WsdlDocument::from_xml(&classifier_wsdl().to_xml()).unwrap();
        assert_eq!(back.endpoint, "http://host-a:8080/axis/Classifier");
    }

    #[test]
    fn malformed_rejected() {
        assert!(WsdlDocument::from_xml("<x/>").is_err());
    }
}
