//! A metrics registry absorbing the toolkit's scattered counters —
//! [`crate::monitor::MonitorLog`] invocation events,
//! [`crate::transport::WireStats`] wire accounting, and
//! [`crate::dataplane::CacheStats`] from the attachment/model/memo
//! caches — into one namespace of counters, gauges, and fixed-bucket
//! latency histograms, exported as a JSON snapshot or Prometheus text.
//!
//! Quantiles (p50/p95/p99) are computed nearest-rank over the
//! cumulative bucket counts and reported as the upper bound of the
//! bucket holding the ranked observation — the same nearest-rank
//! definition [`crate::monitor::MonitorLog::summary_by_host`] uses for
//! its median.

use crate::container::LoadStats;
use crate::dataplane::CacheStats;
use crate::fleet::{ScaleAction, ScaleEvent};
use crate::monitor::{MonitorLog, Outcome};
use crate::transport::WireStats;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Duration;

/// Sorted label key/value pairs identifying one series of a metric.
pub type LabelSet = Vec<(String, String)>;

/// Histogram bucket upper bounds in seconds: log-spaced from 100 µs to
/// 10 s, covering the simulated network's base latency (500 µs) up to
/// multi-second dataset transfers.
pub const LATENCY_BUCKETS: [f64; 16] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// One fixed-bucket histogram series.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Observation counts per bucket of [`LATENCY_BUCKETS`], plus a
    /// final overflow (+Inf) bucket.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram over [`LATENCY_BUCKETS`]. Public so other
    /// layers (e.g. the container's admission-control load state) can
    /// pre-aggregate observations and merge them in later via
    /// [`MetricsRegistry::merge_histogram`].
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; LATENCY_BUCKETS.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Record one observation (in seconds).
    pub fn observe(&mut self, value: f64) {
        let idx = LATENCY_BUCKETS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.buckets[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Nearest-rank quantile estimate: the upper bound of the bucket
    /// containing the `ceil(q·n)`-th observation (`None` when empty).
    /// Observations past the last bound report that bound — a floor,
    /// not an estimate, which is the honest answer a fixed-bucket
    /// histogram can give.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return Some(
                    LATENCY_BUCKETS
                        .get(idx)
                        .copied()
                        .unwrap_or(LATENCY_BUCKETS[LATENCY_BUCKETS.len() - 1]),
                );
            }
        }
        None
    }
}

/// A snapshot of the shared compute pool's counters, flattened to
/// primitives so this crate needs no dependency on the algorithms
/// crate. `workers` holds `(tasks_executed, busy_seconds)` per worker
/// slot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolSnapshot {
    /// Configured worker count (threads the pool may use per batch).
    pub threads: usize,
    /// Tasks executed across all batches since the last reset.
    pub tasks: u64,
    /// Parallel batches dispatched.
    pub batches: u64,
    /// Tasks obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Per-worker `(tasks, busy_seconds)` pairs, indexed by slot.
    pub workers: Vec<(u64, f64)>,
}

/// A snapshot of a durable-enactment run journal's counters, flattened
/// to primitives so this crate needs no dependency on the workflow
/// crate (the journal lives in `dm-workflow::journal`; the toolkit
/// bridges its stats into this form).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverySnapshot {
    /// Records appended to the journal by this process.
    pub journal_appends: u64,
    /// Well-formed records currently decodable from the journal.
    pub journal_records: u64,
    /// Encoded journal size in bytes.
    pub journal_bytes: u64,
    /// Completed tasks restored from the journal instead of
    /// re-executing (the recovery win).
    pub replay_hits: u64,
    /// Claimed tasks redelivered after a worker died before acking.
    pub redeliveries: u64,
    /// Torn-tail bytes dropped by checksum/envelope verification during
    /// replay (trailing bytes of a journal cut mid-record).
    pub torn_bytes_dropped: u64,
}

#[derive(Debug)]
enum Metric {
    Counter(BTreeMap<LabelSet, u64>),
    Gauge(BTreeMap<LabelSet, f64>),
    Histogram(BTreeMap<LabelSet, Histogram>),
}

/// A thread-safe registry of named metrics, each fanned out by label
/// set. Names are sorted in exports, so output is deterministic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

fn labels_of(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a counter series (created at 0 on first touch).
    pub fn inc_counter(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let mut metrics = self.metrics.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(BTreeMap::new()));
        if let Metric::Counter(series) = metric {
            *series.entry(labels_of(labels)).or_insert(0) += delta;
        }
    }

    /// Set a gauge series to `value`.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let mut metrics = self.metrics.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(BTreeMap::new()));
        if let Metric::Gauge(series) = metric {
            series.insert(labels_of(labels), value);
        }
    }

    /// Record one observation (in seconds) into a histogram series.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], seconds: f64) {
        let mut metrics = self.metrics.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(BTreeMap::new()));
        if let Metric::Histogram(series) = metric {
            series
                .entry(labels_of(labels))
                .or_insert_with(Histogram::new)
                .observe(seconds);
        }
    }

    /// Merge a pre-aggregated [`Histogram`] into a histogram series
    /// (bucket-wise addition). This is how the container's queue-wait
    /// distributions reach the registry without replaying every
    /// observation.
    pub fn merge_histogram(&self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        let mut metrics = self.metrics.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(BTreeMap::new()));
        if let Metric::Histogram(series) = metric {
            let into = series
                .entry(labels_of(labels))
                .or_insert_with(Histogram::new);
            for (bucket, add) in into.buckets.iter_mut().zip(&h.buckets) {
                *bucket += add;
            }
            into.sum += h.sum;
            into.count += h.count;
        }
    }

    /// Ingest one host's admission-control [`LoadStats`]: admitted /
    /// queued / shed counters, a queue-depth gauge, and the
    /// queueing-delay histogram, all labelled by host.
    pub fn ingest_load(&self, host: &str, stats: &LoadStats) {
        let labels = [("host", host)];
        self.inc_counter("faehim_requests_admitted_total", &labels, stats.admitted);
        self.inc_counter("faehim_requests_queued_total", &labels, stats.queued);
        self.inc_counter("faehim_requests_shed_total", &labels, stats.shed);
        self.set_gauge("faehim_queue_depth", &labels, stats.in_system as f64);
        self.merge_histogram("faehim_queueing_delay_seconds", &labels, &stats.queue_waits);
    }

    /// Current value of a counter series (0 when absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.metrics.lock().get(name) {
            Some(Metric::Counter(series)) => series.get(&labels_of(labels)).copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// Current value of a gauge series.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.metrics.lock().get(name) {
            Some(Metric::Gauge(series)) => series.get(&labels_of(labels)).copied(),
            _ => None,
        }
    }

    /// Quantile estimate of a histogram series.
    pub fn histogram_quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        match self.metrics.lock().get(name) {
            Some(Metric::Histogram(series)) => series.get(&labels_of(labels))?.quantile(q),
            _ => None,
        }
    }

    /// Ingest every invocation event of a [`MonitorLog`]: per-service ×
    /// host × outcome counters plus a per-service latency histogram
    /// (and the wire-byte / ref-hit counters the events carry).
    pub fn ingest_monitor(&self, log: &MonitorLog) {
        for event in log.snapshot() {
            let outcome = match &event.outcome {
                Outcome::Ok => "ok",
                Outcome::Fault(_) => "fault",
                Outcome::TransportError(_) => "transport-error",
            };
            self.inc_counter(
                "faehim_invocations_total",
                &[
                    ("service", &event.service),
                    ("host", &event.host),
                    ("outcome", outcome),
                ],
                1,
            );
            self.observe(
                "faehim_invocation_duration_seconds",
                &[("service", &event.service)],
                event.duration.as_secs_f64(),
            );
            self.inc_counter(
                "faehim_invocation_bytes_total",
                &[("service", &event.service), ("direction", "in")],
                event.bytes_in as u64,
            );
            self.inc_counter(
                "faehim_invocation_bytes_total",
                &[("service", &event.service), ("direction", "out")],
                event.bytes_out as u64,
            );
            self.inc_counter(
                "faehim_invocation_ref_hits_total",
                &[("service", &event.service)],
                event.ref_hits as u64,
            );
        }
    }

    /// Ingest a [`WireStats`] snapshot as absolute counters.
    pub fn ingest_wire(&self, wire: &WireStats) {
        self.inc_counter("faehim_wire_envelopes_total", &[], wire.envelopes);
        self.inc_counter("faehim_wire_bytes_total", &[], wire.bytes);
        self.inc_counter("faehim_wire_bytes_saved_total", &[], wire.bytes_saved);
        self.inc_counter(
            "faehim_wire_ref_substitutions_total",
            &[],
            wire.ref_substitutions,
        );
    }

    /// Ingest a cache's [`CacheStats`] under a `cache` label (e.g. the
    /// per-host attachment stores, the classifier model/eval caches, or
    /// the workflow memo cache).
    pub fn ingest_cache(&self, cache: &str, labels: &[(&str, &str)], stats: &CacheStats) {
        let mut all: Vec<(&str, &str)> = labels.to_vec();
        all.push(("cache", cache));
        for (event, value) in [
            ("lookups", stats.lookups),
            ("hits", stats.hits),
            ("misses", stats.misses),
            ("insertions", stats.insertions),
            ("evictions", stats.evictions),
        ] {
            let mut with_event = all.clone();
            with_event.push(("event", event));
            self.inc_counter("faehim_cache_events_total", &with_event, value);
        }
        let mut gauge_labels = all.clone();
        gauge_labels.push(("unit", "entries"));
        self.set_gauge("faehim_cache_size", &gauge_labels, stats.entries as f64);
        let mut byte_labels = all;
        byte_labels.push(("unit", "bytes"));
        self.set_gauge("faehim_cache_size", &byte_labels, stats.bytes as f64);
    }

    /// Ingest a [`PoolSnapshot`] of the shared compute pool: global
    /// task / batch / steal counters, a thread-count gauge, and
    /// per-worker task counters and busy-time gauges labelled by
    /// worker slot.
    pub fn ingest_pool(&self, snap: &PoolSnapshot) {
        self.set_gauge("faehim_pool_threads", &[], snap.threads as f64);
        self.inc_counter("faehim_pool_tasks_total", &[], snap.tasks);
        self.inc_counter("faehim_pool_batches_total", &[], snap.batches);
        self.inc_counter("faehim_pool_steals_total", &[], snap.steals);
        for (slot, (tasks, busy_seconds)) in snap.workers.iter().enumerate() {
            let slot = slot.to_string();
            let labels = [("worker", slot.as_str())];
            self.inc_counter("faehim_pool_worker_tasks_total", &labels, *tasks);
            self.set_gauge("faehim_pool_worker_busy_seconds", &labels, *busy_seconds);
        }
    }

    /// Ingest an [`Autoscaler`] decision log plus the fleet's current
    /// replica count: one counter per decision kind
    /// (`faehim_autoscale_up_total` / `_down_total` / `_hold_total`)
    /// and a `faehim_fleet_replicas` gauge, so placement benchmarks can
    /// correlate planner decisions with scaling events.
    ///
    /// [`Autoscaler`]: crate::fleet::Autoscaler
    pub fn ingest_autoscaler(&self, history: &[ScaleEvent], current_replicas: usize) {
        let (mut up, mut down, mut hold) = (0u64, 0u64, 0u64);
        for event in history {
            match event.action {
                ScaleAction::Up => up += 1,
                ScaleAction::Down => down += 1,
                ScaleAction::Hold => hold += 1,
            }
        }
        self.inc_counter("faehim_autoscale_up_total", &[], up);
        self.inc_counter("faehim_autoscale_down_total", &[], down);
        self.inc_counter("faehim_autoscale_hold_total", &[], hold);
        self.set_gauge("faehim_fleet_replicas", &[], current_replicas as f64);
    }

    /// Ingest a durable-enactment recovery snapshot
    /// ([`RecoverySnapshot`]): journal append/size counters, replay
    /// hits (tasks restored from the log instead of re-executing),
    /// worker-death redeliveries, and torn-tail bytes dropped by
    /// checksum verification.
    pub fn ingest_recovery(&self, snap: &RecoverySnapshot) {
        self.inc_counter("faehim_journal_appends_total", &[], snap.journal_appends);
        self.set_gauge("faehim_journal_records", &[], snap.journal_records as f64);
        self.set_gauge("faehim_journal_bytes", &[], snap.journal_bytes as f64);
        self.inc_counter("faehim_replay_hits_total", &[], snap.replay_hits);
        self.inc_counter("faehim_redeliveries_total", &[], snap.redeliveries);
        self.inc_counter(
            "faehim_journal_torn_bytes_total",
            &[],
            snap.torn_bytes_dropped,
        );
    }

    /// Prometheus text exposition: `# TYPE` lines, one sample line per
    /// series, and for histograms the `_bucket`/`_sum`/`_count` series
    /// plus summary-style p50/p95/p99 `quantile` samples.
    pub fn export_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, metric) in self.metrics.lock().iter() {
            match metric {
                Metric::Counter(series) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    for (labels, value) in series {
                        let _ = writeln!(out, "{name}{} {value}", prom_labels(labels, &[]));
                    }
                }
                Metric::Gauge(series) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    for (labels, value) in series {
                        let _ = writeln!(out, "{name}{} {value}", prom_labels(labels, &[]));
                    }
                }
                Metric::Histogram(series) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    for (labels, h) in series {
                        let mut cumulative = 0;
                        for (idx, &bucket) in h.buckets.iter().enumerate() {
                            cumulative += bucket;
                            let le = LATENCY_BUCKETS
                                .get(idx)
                                .map(|b| format!("{b}"))
                                .unwrap_or_else(|| "+Inf".to_string());
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                prom_labels(labels, &[("le", &le)])
                            );
                        }
                        let _ = writeln!(out, "{name}_sum{} {}", prom_labels(labels, &[]), h.sum);
                        let _ =
                            writeln!(out, "{name}_count{} {}", prom_labels(labels, &[]), h.count);
                        for q in [0.5, 0.95, 0.99] {
                            if let Some(estimate) = h.quantile(q) {
                                let _ = writeln!(
                                    out,
                                    "{name}{} {estimate}",
                                    prom_labels(labels, &[("quantile", &format!("{q}"))])
                                );
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// JSON snapshot: counters and gauges as label→value series,
    /// histograms with count, sum, and p50/p95/p99.
    pub fn export_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        let metrics = self.metrics.lock();
        for (i, (name, metric)) in metrics.iter().enumerate() {
            let _ = write!(out, "  {}: ", json_string(name));
            match metric {
                Metric::Counter(series) => {
                    json_series(&mut out, series.iter().map(|(l, v)| (l, v.to_string())));
                }
                Metric::Gauge(series) => {
                    json_series(&mut out, series.iter().map(|(l, v)| (l, json_f64(*v))));
                }
                Metric::Histogram(series) => {
                    out.push_str("[\n");
                    for (j, (labels, h)) in series.iter().enumerate() {
                        out.push_str("    {\"labels\": ");
                        json_labels(&mut out, labels);
                        let _ = write!(
                            out,
                            ", \"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                            h.count,
                            json_f64(h.sum),
                            json_quantile(h, 0.5),
                            json_quantile(h, 0.95),
                            json_quantile(h, 0.99),
                        );
                        out.push_str(if j + 1 < series.len() { ",\n" } else { "\n" });
                    }
                    out.push_str("  ]");
                }
            }
            out.push_str(if i + 1 < metrics.len() { ",\n" } else { "\n" });
        }
        out.push('}');
        out
    }
}

/// Convenience: observe a [`Duration`] into a latency histogram.
pub fn observe_duration(
    registry: &MetricsRegistry,
    name: &str,
    labels: &[(&str, &str)],
    duration: Duration,
) {
    registry.observe(name, labels, duration.as_secs_f64());
}

fn prom_labels(labels: &LabelSet, extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_quantile(h: &Histogram, q: f64) -> String {
    h.quantile(q)
        .map(json_f64)
        .unwrap_or_else(|| "null".to_string())
}

fn json_labels(out: &mut String, labels: &LabelSet) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(k));
        out.push_str(": ");
        out.push_str(&json_string(v));
    }
    out.push('}');
}

fn json_series<'a>(out: &mut String, series: impl Iterator<Item = (&'a LabelSet, String)>) {
    out.push_str("[\n");
    let rows: Vec<(&LabelSet, String)> = series.collect();
    for (j, (labels, value)) in rows.iter().enumerate() {
        out.push_str("    {\"labels\": ");
        json_labels(out, labels);
        out.push_str(", \"value\": ");
        out.push_str(value);
        out.push('}');
        out.push_str(if j + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::InvocationEvent;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let m = MetricsRegistry::new();
        m.inc_counter("calls", &[("service", "A")], 2);
        m.inc_counter("calls", &[("service", "A")], 3);
        m.inc_counter("calls", &[("service", "B")], 1);
        m.set_gauge("depth", &[], 4.5);
        assert_eq!(m.counter_value("calls", &[("service", "A")]), 5);
        assert_eq!(m.counter_value("calls", &[("service", "B")]), 1);
        assert_eq!(m.counter_value("calls", &[("service", "C")]), 0);
        assert_eq!(m.gauge_value("depth", &[]), Some(4.5));
        // Label order is normalised.
        m.inc_counter("multi", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(m.counter_value("multi", &[("a", "1"), ("b", "2")]), 1);
    }

    #[test]
    fn histogram_quantiles_are_nearest_rank_bucket_bounds() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        // 8 fast observations, 2 slow: p50 in the fast bucket, p95/p99
        // in the slow one.
        for _ in 0..8 {
            h.observe(0.0004); // ≤ 0.0005
        }
        for _ in 0..2 {
            h.observe(0.08); // ≤ 0.1
        }
        assert_eq!(h.quantile(0.5), Some(0.0005));
        assert_eq!(h.quantile(0.95), Some(0.1));
        assert_eq!(h.quantile(0.99), Some(0.1));
        assert_eq!(h.count, 10);
        // Overflow observations floor at the last finite bound.
        let mut over = Histogram::new();
        over.observe(99.0);
        assert_eq!(over.quantile(0.5), Some(10.0));
    }

    #[test]
    fn even_sample_median_uses_lower_of_the_middle_pair() {
        // Two observations in different buckets: nearest-rank p50 is
        // the first (rank ceil(0.5·2) = 1), not the second.
        let mut h = Histogram::new();
        h.observe(0.0004);
        h.observe(0.08);
        assert_eq!(h.quantile(0.5), Some(0.0005));
    }

    #[test]
    fn autoscaler_history_becomes_decision_counters() {
        let events = |actions: &[ScaleAction]| -> Vec<ScaleEvent> {
            actions
                .iter()
                .enumerate()
                .map(|(i, &action)| ScaleEvent {
                    at: Duration::from_millis(i as u64),
                    action,
                    replicas: 1 + i,
                    queue_per_replica: 2.0,
                    p99: Duration::from_millis(5),
                })
                .collect()
        };
        let m = MetricsRegistry::new();
        m.ingest_autoscaler(
            &events(&[
                ScaleAction::Up,
                ScaleAction::Hold,
                ScaleAction::Up,
                ScaleAction::Down,
                ScaleAction::Hold,
            ]),
            3,
        );
        assert_eq!(m.counter_value("faehim_autoscale_up_total", &[]), 2);
        assert_eq!(m.counter_value("faehim_autoscale_down_total", &[]), 1);
        assert_eq!(m.counter_value("faehim_autoscale_hold_total", &[]), 2);
        assert_eq!(m.gauge_value("faehim_fleet_replicas", &[]), Some(3.0));
        let text = m.export_prometheus();
        assert!(text.contains("faehim_autoscale_up_total"), "{text}");
        assert!(text.contains("faehim_fleet_replicas"), "{text}");
    }

    #[test]
    fn monitor_ingestion_builds_per_service_series() {
        let log = MonitorLog::new();
        for (service, ms, outcome) in [
            ("Classifier", 4, Outcome::Ok),
            ("Classifier", 6, Outcome::Ok),
            ("Clusterer", 2, Outcome::Fault("Server".into())),
        ] {
            log.record(InvocationEvent {
                host: "h".into(),
                service: service.into(),
                operation: "op".into(),
                duration: Duration::from_millis(ms),
                bytes_in: 100,
                bytes_out: 10,
                bytes_saved: 0,
                ref_hits: 1,
                outcome,
            });
        }
        let m = MetricsRegistry::new();
        m.ingest_monitor(&log);
        assert_eq!(
            m.counter_value(
                "faehim_invocations_total",
                &[("service", "Classifier"), ("host", "h"), ("outcome", "ok")]
            ),
            2
        );
        assert_eq!(
            m.counter_value(
                "faehim_invocations_total",
                &[
                    ("service", "Clusterer"),
                    ("host", "h"),
                    ("outcome", "fault")
                ]
            ),
            1
        );
        assert!(m
            .histogram_quantile(
                "faehim_invocation_duration_seconds",
                &[("service", "Classifier")],
                0.5
            )
            .is_some());
    }

    #[test]
    fn wire_and_cache_ingestion() {
        let m = MetricsRegistry::new();
        m.ingest_wire(&WireStats {
            envelopes: 4,
            bytes: 1000,
            bytes_saved: 300,
            ref_substitutions: 2,
            serialisations: 4,
        });
        assert_eq!(m.counter_value("faehim_wire_bytes_total", &[]), 1000);
        assert_eq!(m.counter_value("faehim_wire_bytes_saved_total", &[]), 300);
        m.ingest_cache(
            "attachments",
            &[("host", "h")],
            &CacheStats {
                lookups: 10,
                hits: 7,
                misses: 3,
                insertions: 3,
                evictions: 1,
                entries: 2,
                bytes: 2048,
            },
        );
        assert_eq!(
            m.counter_value(
                "faehim_cache_events_total",
                &[("host", "h"), ("cache", "attachments"), ("event", "hits")]
            ),
            7
        );
        assert_eq!(
            m.gauge_value(
                "faehim_cache_size",
                &[("host", "h"), ("cache", "attachments"), ("unit", "bytes")]
            ),
            Some(2048.0)
        );
    }

    #[test]
    fn pool_ingestion_pins_prometheus_names() {
        let m = MetricsRegistry::new();
        m.ingest_pool(&PoolSnapshot {
            threads: 4,
            tasks: 120,
            batches: 3,
            steals: 17,
            workers: vec![(70, 0.25), (50, 0.125)],
        });
        assert_eq!(m.gauge_value("faehim_pool_threads", &[]), Some(4.0));
        assert_eq!(m.counter_value("faehim_pool_tasks_total", &[]), 120);
        assert_eq!(m.counter_value("faehim_pool_batches_total", &[]), 3);
        assert_eq!(m.counter_value("faehim_pool_steals_total", &[]), 17);
        assert_eq!(
            m.counter_value("faehim_pool_worker_tasks_total", &[("worker", "0")]),
            70
        );
        assert_eq!(
            m.gauge_value("faehim_pool_worker_busy_seconds", &[("worker", "1")]),
            Some(0.125)
        );
        // The exposition text carries the exact series names dashboards
        // scrape — pin them so renames are a deliberate act.
        let text = m.export_prometheus();
        for name in [
            "faehim_pool_threads 4",
            "faehim_pool_tasks_total 120",
            "faehim_pool_batches_total 3",
            "faehim_pool_steals_total 17",
            "faehim_pool_worker_tasks_total{worker=\"0\"} 70",
            "faehim_pool_worker_busy_seconds{worker=\"1\"} 0.125",
        ] {
            assert!(text.contains(name), "missing `{name}` in:\n{text}");
        }
    }

    #[test]
    fn recovery_snapshot_ingests_into_registry() {
        let m = MetricsRegistry::new();
        m.ingest_recovery(&RecoverySnapshot {
            journal_appends: 22,
            journal_records: 21,
            journal_bytes: 4096,
            replay_hits: 7,
            redeliveries: 1,
            torn_bytes_dropped: 13,
        });
        assert_eq!(m.counter_value("faehim_journal_appends_total", &[]), 22);
        assert_eq!(m.gauge_value("faehim_journal_records", &[]), Some(21.0));
        assert_eq!(m.gauge_value("faehim_journal_bytes", &[]), Some(4096.0));
        assert_eq!(m.counter_value("faehim_replay_hits_total", &[]), 7);
        assert_eq!(m.counter_value("faehim_redeliveries_total", &[]), 1);
        assert_eq!(m.counter_value("faehim_journal_torn_bytes_total", &[]), 13);
        // Pin the exported series names dashboards scrape.
        let text = m.export_prometheus();
        for name in [
            "faehim_journal_appends_total 22",
            "faehim_replay_hits_total 7",
            "faehim_redeliveries_total 1",
            "faehim_journal_torn_bytes_total 13",
        ] {
            assert!(text.contains(name), "missing `{name}` in:\n{text}");
        }
    }

    #[test]
    fn prometheus_export_has_types_buckets_and_quantiles() {
        let m = MetricsRegistry::new();
        m.inc_counter("faehim_invocations_total", &[("service", "A")], 3);
        m.observe(
            "faehim_invocation_duration_seconds",
            &[("service", "A")],
            0.004,
        );
        let text = m.export_prometheus();
        assert!(text.contains("# TYPE faehim_invocations_total counter"));
        assert!(text.contains("faehim_invocations_total{service=\"A\"} 3"));
        assert!(text.contains("# TYPE faehim_invocation_duration_seconds histogram"));
        assert!(text.contains("_bucket{service=\"A\",le=\"+Inf\"} 1"));
        assert!(text.contains("quantile=\"0.5\""));
        assert!(text.contains("quantile=\"0.95\""));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("faehim_invocation_duration_seconds_count{service=\"A\"} 1"));
    }

    #[test]
    fn json_export_is_parseable_shape() {
        let m = MetricsRegistry::new();
        m.inc_counter("c", &[("k", "v\"q")], 1);
        m.set_gauge("g", &[], 1.5);
        m.observe("h", &[], 0.01);
        let json = m.export_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"c\""));
        assert!(json.contains("\\\"q\""));
        assert!(json.contains("\"p50\": 0.01"));
        assert!(json.contains("\"p95\""));
        assert!(json.contains("\"p99\""));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn observe_duration_helper() {
        let m = MetricsRegistry::new();
        observe_duration(&m, "lat", &[], Duration::from_millis(3));
        assert_eq!(m.histogram_quantile("lat", &[], 0.5), Some(0.005));
    }
}
