//! SOAP 1.1-style envelopes: typed values, calls, responses, and
//! faults, encoded to and from real XML. "Interaction between the
//! workflow engine and each Web Service instance is supported through
//! pre-defined SOAP messages" (§4.5) — these are those messages.

use crate::error::{Result, WsError};
use crate::trace::SpanContext;
use crate::xml::{escape_into, escaped_len, parse, XmlElement};

/// The payload kind behind a [`SoapValue::DataRef`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefKind {
    /// The referenced payload is a string (`xsd:string`).
    Text,
    /// The referenced payload is binary (`xsd:base64Binary`).
    Bytes,
}

impl RefKind {
    fn wire_name(self) -> &'static str {
        match self {
            RefKind::Text => "text",
            RefKind::Bytes => "bytes",
        }
    }
}

/// A typed SOAP value (the subset of XSD the toolkit exchanges).
#[derive(Debug, Clone, PartialEq)]
pub enum SoapValue {
    /// `xsd:nil`.
    Null,
    /// `xsd:boolean`.
    Bool(bool),
    /// `xsd:long`.
    Int(i64),
    /// `xsd:double`.
    Double(f64),
    /// `xsd:string`.
    Text(String),
    /// `xsd:base64Binary` (hex-encoded on the wire for simplicity; the
    /// cost model charges the same 2× inflation base64 would, ×1.33).
    Bytes(Vec<u8>),
    /// A sequence of values.
    List(Vec<SoapValue>),
    /// A content-addressed handle standing in for a Text or Bytes
    /// payload the receiver is expected to already hold (the SOAP
    /// attachment / pass-by-reference style of the data plane). On the
    /// wire it is `hash:len:kind`, a fixed ~80 bytes regardless of the
    /// payload size it replaces.
    DataRef {
        /// Content hash of the referenced payload.
        hash: u128,
        /// Referenced payload length in bytes.
        len: u64,
        /// Whether the payload is a string or binary.
        kind: RefKind,
    },
}

impl SoapValue {
    /// XSD-ish type name used on the wire.
    pub fn type_name(&self) -> &'static str {
        match self {
            SoapValue::Null => "nil",
            SoapValue::Bool(_) => "boolean",
            SoapValue::Int(_) => "long",
            SoapValue::Double(_) => "double",
            SoapValue::Text(_) => "string",
            SoapValue::Bytes(_) => "base64Binary",
            SoapValue::List(_) => "list",
            SoapValue::DataRef { .. } => "dataRef",
        }
    }

    /// Extract a string, or a fault-shaped error.
    pub fn as_text(&self) -> Result<&str> {
        match self {
            SoapValue::Text(s) => Ok(s),
            other => Err(WsError::Malformed(format!(
                "expected string, got {}",
                other.type_name()
            ))),
        }
    }

    /// Extract bytes.
    pub fn as_bytes(&self) -> Result<&[u8]> {
        match self {
            SoapValue::Bytes(b) => Ok(b),
            other => Err(WsError::Malformed(format!(
                "expected bytes, got {}",
                other.type_name()
            ))),
        }
    }

    /// Extract an integer.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            SoapValue::Int(i) => Ok(*i),
            other => Err(WsError::Malformed(format!(
                "expected long, got {}",
                other.type_name()
            ))),
        }
    }

    /// Extract a double.
    pub fn as_double(&self) -> Result<f64> {
        match self {
            SoapValue::Double(d) => Ok(*d),
            SoapValue::Int(i) => Ok(*i as f64),
            other => Err(WsError::Malformed(format!(
                "expected double, got {}",
                other.type_name()
            ))),
        }
    }

    /// Extract a list.
    pub fn as_list(&self) -> Result<&[SoapValue]> {
        match self {
            SoapValue::List(l) => Ok(l),
            other => Err(WsError::Malformed(format!(
                "expected list, got {}",
                other.type_name()
            ))),
        }
    }

    /// Write this value as `<name xsi:type="...">...</name>` directly
    /// into `out`, byte-identical to building an [`XmlElement`] tree and
    /// serialising it, but without cloning names, text, or intermediate
    /// nodes. Envelope encoding is on the hot path of every simulated
    /// wire message, so this is where the allocation churn used to be.
    fn write_element(&self, name: &str, out: &mut String) {
        out.push('<');
        out.push_str(name);
        out.push_str(" xsi:type=\"");
        out.push_str(self.type_name());
        out.push('"');
        // Mirror the tree writer: childless, textless elements
        // self-close.
        let self_closing = match self {
            SoapValue::Null => true,
            SoapValue::Text(s) => s.is_empty(),
            SoapValue::Bytes(b) => b.is_empty(),
            SoapValue::List(items) => items.is_empty(),
            _ => false,
        };
        if self_closing {
            out.push_str("/>");
            return;
        }
        out.push('>');
        match self {
            SoapValue::Null => {}
            SoapValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            SoapValue::Int(i) => {
                use std::fmt::Write as _;
                let _ = write!(out, "{i}");
            }
            SoapValue::Double(d) => format_double_into(*d, out),
            SoapValue::Text(s) => escape_into(s, out),
            SoapValue::Bytes(b) => hex_encode_into(b, out),
            SoapValue::List(items) => {
                for item in items {
                    item.write_element("item", out);
                }
            }
            SoapValue::DataRef { hash, len, kind } => {
                use std::fmt::Write as _;
                let _ = write!(out, "{hash:032x}:{len}:{}", kind.wire_name());
            }
        }
        out.push_str("</");
        out.push_str(name);
        out.push('>');
    }

    fn from_element(el: &XmlElement) -> Result<SoapValue> {
        let ty = el.attribute("xsi:type").unwrap_or("string");
        Ok(match ty {
            "nil" => SoapValue::Null,
            "boolean" => SoapValue::Bool(el.text == "true"),
            "long" => SoapValue::Int(
                el.text
                    .parse()
                    .map_err(|_| WsError::Malformed(format!("bad long {:?}", el.text)))?,
            ),
            "double" => SoapValue::Double(parse_double(&el.text)?),
            "string" => SoapValue::Text(el.text.clone()),
            "base64Binary" => SoapValue::Bytes(hex_decode(&el.text)?),
            "list" => SoapValue::List(
                el.children
                    .iter()
                    .map(SoapValue::from_element)
                    .collect::<Result<_>>()?,
            ),
            "dataRef" => parse_data_ref(&el.text)?,
            other => return Err(WsError::Malformed(format!("unknown xsi:type {other:?}"))),
        })
    }

    /// Approximate wire size in bytes (used by the transport cost model
    /// so large datasets cost proportionally more to ship).
    pub fn wire_size(&self) -> usize {
        match self {
            SoapValue::Null => 8,
            SoapValue::Bool(_) => 12,
            SoapValue::Int(_) | SoapValue::Double(_) => 24,
            SoapValue::Text(s) => 32 + s.len(),
            SoapValue::Bytes(b) => 32 + b.len() * 4 / 3, // base64 inflation
            SoapValue::List(l) => 32 + l.iter().map(SoapValue::wire_size).sum::<usize>(),
            // 32-hex-digit hash + length + kind + framing: a fixed
            // handle cost regardless of the payload it stands for.
            SoapValue::DataRef { .. } => 80,
        }
    }

    /// Exact length in bytes of [`Self::write_element`]'s output for
    /// this value under `name`, computed without serialising. Unlike
    /// [`Self::wire_size`] — a *cost model* that charges base64
    /// inflation and fixed framing overheads — this is the real
    /// envelope byte count, which is what the pass-by-reference
    /// accounting needs to report exact savings.
    pub fn serialized_size(&self, name: &str) -> usize {
        // `<name xsi:type="TYPE"` … then either `/>` or
        // `>content</name>`.
        let prefix = 1 + name.len() + 11 + self.type_name().len() + 1;
        let self_closing = match self {
            SoapValue::Null => true,
            SoapValue::Text(s) => s.is_empty(),
            SoapValue::Bytes(b) => b.is_empty(),
            SoapValue::List(items) => items.is_empty(),
            _ => false,
        };
        if self_closing {
            return prefix + 2;
        }
        let content = match self {
            SoapValue::Null => 0,
            SoapValue::Bool(b) => {
                if *b {
                    4
                } else {
                    5
                }
            }
            SoapValue::Int(i) => decimal_len_i64(*i),
            SoapValue::Double(d) => {
                let mut scratch = String::new();
                format_double_into(*d, &mut scratch);
                scratch.len()
            }
            SoapValue::Text(s) => escaped_len(s),
            SoapValue::Bytes(b) => b.len() * 2,
            SoapValue::List(items) => items.iter().map(|i| i.serialized_size("item")).sum(),
            SoapValue::DataRef { len, kind, .. } => {
                32 + 1 + decimal_len_u64(*len) + 1 + kind.wire_name().len()
            }
        };
        prefix + 1 + content + 2 + name.len() + 1
    }

    /// The hash/length/kind triple if this value is a [`SoapValue::DataRef`].
    pub fn as_data_ref(&self) -> Option<(u128, u64, RefKind)> {
        match self {
            SoapValue::DataRef { hash, len, kind } => Some((*hash, *len, *kind)),
            _ => None,
        }
    }
}

fn decimal_len_u64(v: u64) -> usize {
    if v == 0 {
        return 1;
    }
    (v.ilog10() + 1) as usize
}

fn decimal_len_i64(v: i64) -> usize {
    if v < 0 {
        1 + decimal_len_u64(v.unsigned_abs())
    } else {
        decimal_len_u64(v as u64)
    }
}

fn parse_data_ref(text: &str) -> Result<SoapValue> {
    let bad = || WsError::Malformed(format!("bad dataRef {text:?}"));
    let mut parts = text.splitn(3, ':');
    let hash = parts
        .next()
        .and_then(|p| u128::from_str_radix(p, 16).ok())
        .ok_or_else(bad)?;
    let len = parts
        .next()
        .and_then(|p| p.parse::<u64>().ok())
        .ok_or_else(bad)?;
    let kind = match parts.next() {
        Some("text") => RefKind::Text,
        Some("bytes") => RefKind::Bytes,
        _ => return Err(bad()),
    };
    Ok(SoapValue::DataRef { hash, len, kind })
}

fn format_double_into(d: f64, out: &mut String) {
    use std::fmt::Write as _;
    if d.is_nan() {
        out.push_str("NaN");
    } else if d == f64::INFINITY {
        out.push_str("INF");
    } else if d == f64::NEG_INFINITY {
        out.push_str("-INF");
    } else {
        let _ = write!(out, "{d:?}");
    }
}

fn parse_double(s: &str) -> Result<f64> {
    match s {
        "NaN" => Ok(f64::NAN),
        "INF" => Ok(f64::INFINITY),
        "-INF" => Ok(f64::NEG_INFINITY),
        other => other
            .parse()
            .map_err(|_| WsError::Malformed(format!("bad double {other:?}"))),
    }
}

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

fn hex_encode_into(b: &[u8], out: &mut String) {
    out.reserve(b.len() * 2);
    for &byte in b {
        out.push(HEX_DIGITS[usize::from(byte >> 4)] as char);
        out.push(HEX_DIGITS[usize::from(byte & 0x0f)] as char);
    }
}

fn hex_decode(s: &str) -> Result<Vec<u8>> {
    if s.len() % 2 != 0 {
        return Err(WsError::Malformed("odd-length hex payload".into()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| WsError::Malformed(format!("bad hex at {i}")))
        })
        .collect()
}

/// The fixed envelope preamble every message shares.
const ENVELOPE_OPEN: &str = "<soap:Envelope \
     xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\" \
     xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\">";

/// `<name>escaped text</name>`, self-closing when the text is empty —
/// the same shape the element-tree writer produces.
fn write_text_element(name: &str, text: &str, out: &mut String) {
    out.push('<');
    out.push_str(name);
    if text.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    escape_into(text, out);
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

/// A SOAP request: target service, operation, and named arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SoapCall {
    /// Target service name.
    pub service: String,
    /// Operation name.
    pub operation: String,
    /// Named arguments in call order.
    pub args: Vec<(String, SoapValue)>,
    /// The calling span's identity, carried across the wire as a
    /// W3C-style `traceparent` SOAP header so the receiving container
    /// can parent its dispatch span under the caller. `None` keeps the
    /// envelope header-free (and byte-identical to pre-tracing
    /// envelopes).
    pub trace_parent: Option<SpanContext>,
}

impl SoapCall {
    /// Create a call.
    pub fn new<S: Into<String>, O: Into<String>>(service: S, operation: O) -> SoapCall {
        SoapCall {
            service: service.into(),
            operation: operation.into(),
            args: Vec::new(),
            trace_parent: None,
        }
    }

    /// Builder: append an argument.
    pub fn arg<N: Into<String>>(mut self, name: N, value: SoapValue) -> SoapCall {
        self.args.push((name.into(), value));
        self
    }

    /// Argument lookup by name.
    pub fn get(&self, name: &str) -> Result<&SoapValue> {
        self.args
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .ok_or_else(|| WsError::Malformed(format!("missing argument {name:?}")))
    }

    /// Encode as a SOAP envelope. Writes the envelope directly into a
    /// pre-sized buffer (byte-identical to serialising the equivalent
    /// element tree) rather than building intermediate [`XmlElement`]s.
    pub fn to_envelope(&self) -> String {
        let estimate = 256
            + self
                .args
                .iter()
                .map(|(n, v)| 2 * n.len() + 2 * v.wire_size())
                .sum::<usize>();
        let mut out = String::with_capacity(estimate);
        out.push_str(ENVELOPE_OPEN);
        if let Some(ctx) = &self.trace_parent {
            out.push_str("<soap:Header><traceparent>");
            out.push_str(&ctx.to_traceparent());
            out.push_str("</traceparent></soap:Header>");
        }
        out.push_str("<soap:Body><ns:");
        out.push_str(&self.operation);
        out.push_str(" xmlns:ns=\"urn:");
        escape_into(&self.service, &mut out);
        out.push('"');
        if self.args.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            for (name, value) in &self.args {
                value.write_element(name, &mut out);
            }
            out.push_str("</ns:");
            out.push_str(&self.operation);
            out.push('>');
        }
        out.push_str("</soap:Body></soap:Envelope>");
        out
    }

    /// Decode a request envelope.
    pub fn from_envelope(xml: &str) -> Result<SoapCall> {
        let doc = parse(xml)?;
        let body = doc
            .find("Body")
            .ok_or_else(|| WsError::Malformed("no soap:Body".into()))?;
        let op = body
            .children
            .first()
            .ok_or_else(|| WsError::Malformed("empty soap:Body".into()))?;
        let service = op
            .attributes
            .iter()
            .find(|(k, _)| k.starts_with("xmlns"))
            .and_then(|(_, v)| v.strip_prefix("urn:"))
            .unwrap_or("")
            .to_string();
        let operation = crate::xml::local_name(&op.name).to_string();
        let args = op
            .children
            .iter()
            .map(|c| Ok((c.name.clone(), SoapValue::from_element(c)?)))
            .collect::<Result<_>>()?;
        let trace_parent = doc
            .find("Header")
            .and_then(|h| h.find("traceparent"))
            .and_then(|e| SpanContext::from_traceparent(&e.text));
        Ok(SoapCall {
            service,
            operation,
            args,
            trace_parent,
        })
    }
}

/// A SOAP response: a result value or a fault.
#[derive(Debug, Clone, PartialEq)]
pub enum SoapResponse {
    /// Successful invocation result.
    Value(SoapValue),
    /// SOAP fault.
    Fault {
        /// Fault code.
        code: String,
        /// Fault string.
        message: String,
    },
}

impl SoapResponse {
    /// Encode as a response envelope (direct-written and pre-sized like
    /// [`SoapCall::to_envelope`]).
    pub fn to_envelope(&self, operation: &str) -> String {
        let estimate = 256
            + match self {
                SoapResponse::Value(v) => 2 * operation.len() + 2 * v.wire_size(),
                SoapResponse::Fault { code, message } => code.len() + message.len(),
            };
        let mut out = String::with_capacity(estimate);
        out.push_str(ENVELOPE_OPEN);
        out.push_str("<soap:Body>");
        match self {
            SoapResponse::Value(v) => {
                out.push('<');
                out.push_str(operation);
                out.push_str("Response>");
                v.write_element("return", &mut out);
                out.push_str("</");
                out.push_str(operation);
                out.push_str("Response>");
            }
            SoapResponse::Fault { code, message } => {
                out.push_str("<soap:Fault>");
                write_text_element("faultcode", code, &mut out);
                write_text_element("faultstring", message, &mut out);
                out.push_str("</soap:Fault>");
            }
        }
        out.push_str("</soap:Body></soap:Envelope>");
        out
    }

    /// Decode a response envelope.
    pub fn from_envelope(xml: &str) -> Result<SoapResponse> {
        let doc = parse(xml)?;
        let body = doc
            .find("Body")
            .ok_or_else(|| WsError::Malformed("no soap:Body".into()))?;
        if let Some(fault) = body.find("Fault") {
            let code = fault
                .find("faultcode")
                .map(|e| e.text.clone())
                .unwrap_or_default();
            let message = fault
                .find("faultstring")
                .map(|e| e.text.clone())
                .unwrap_or_default();
            return Ok(SoapResponse::Fault { code, message });
        }
        let resp = body
            .children
            .first()
            .ok_or_else(|| WsError::Malformed("empty response body".into()))?;
        let ret = resp
            .find("return")
            .ok_or_else(|| WsError::Malformed("no return element".into()))?;
        Ok(SoapResponse::Value(SoapValue::from_element(ret)?))
    }

    /// Convert into a plain result.
    pub fn into_result(self) -> Result<SoapValue> {
        match self {
            SoapResponse::Value(v) => Ok(v),
            SoapResponse::Fault { code, message } => Err(WsError::Fault { code, message }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_envelope_roundtrip() {
        let call = SoapCall::new("Classifier", "classifyInstance")
            .arg("classifier", SoapValue::Text("J48".into()))
            .arg("options", SoapValue::Text("-C 0.25 -M 2".into()))
            .arg("dataset", SoapValue::Bytes(vec![1, 2, 3, 250]))
            .arg("attribute", SoapValue::Text("Class".into()));
        let xml = call.to_envelope();
        assert!(xml.contains("soap:Envelope"));
        let back = SoapCall::from_envelope(&xml).unwrap();
        assert_eq!(back, call);
    }

    #[test]
    fn value_types_roundtrip() {
        let values = vec![
            SoapValue::Null,
            SoapValue::Bool(true),
            SoapValue::Int(-42),
            SoapValue::Double(0.25),
            SoapValue::Double(f64::NAN),
            SoapValue::Text("hello <world> & 'friends'".into()),
            SoapValue::Bytes((0..=255).collect()),
            SoapValue::List(vec![SoapValue::Int(1), SoapValue::Text("two".into())]),
        ];
        for v in values {
            let call = SoapCall::new("S", "op").arg("x", v.clone());
            let back = SoapCall::from_envelope(&call.to_envelope()).unwrap();
            let got = back.get("x").unwrap();
            match (&v, got) {
                (SoapValue::Double(a), SoapValue::Double(b)) if a.is_nan() => {
                    assert!(b.is_nan())
                }
                _ => assert_eq!(got, &v),
            }
        }
    }

    #[test]
    fn response_roundtrip() {
        let r = SoapResponse::Value(SoapValue::Text("tree text".into()));
        let xml = r.to_envelope("classify");
        assert!(xml.contains("classifyResponse"));
        assert_eq!(SoapResponse::from_envelope(&xml).unwrap(), r);
    }

    #[test]
    fn fault_roundtrip_and_into_result() {
        let f = SoapResponse::Fault {
            code: "Server".into(),
            message: "boom".into(),
        };
        let xml = f.to_envelope("classify");
        let back = SoapResponse::from_envelope(&xml).unwrap();
        assert!(matches!(
            back.into_result(),
            Err(WsError::Fault { code, .. }) if code == "Server"
        ));
    }

    #[test]
    fn missing_argument_reported() {
        let call = SoapCall::new("S", "op");
        assert!(call.get("nope").is_err());
    }

    #[test]
    fn accessor_type_mismatch() {
        let v = SoapValue::Int(3);
        assert!(v.as_text().is_err());
        assert_eq!(v.as_double().unwrap(), 3.0);
        assert!(SoapValue::Text("x".into()).as_bytes().is_err());
    }

    #[test]
    fn hex_codec() {
        assert_eq!(hex_encode(&[0, 255, 16]), "00ff10");
        assert_eq!(hex_decode("00ff10").unwrap(), vec![0, 255, 16]);
        assert!(hex_decode("0f0").is_err());
        assert!(hex_decode("zz").is_err());
    }

    fn hex_encode(b: &[u8]) -> String {
        let mut s = String::with_capacity(b.len() * 2);
        hex_encode_into(b, &mut s);
        s
    }

    /// The reference encoder the direct writers replaced: build the
    /// element tree, then serialise. The fast path must stay
    /// byte-identical to it.
    fn value_to_element(value: &SoapValue, name: &str) -> XmlElement {
        let el = XmlElement::new(name).attr("xsi:type", value.type_name());
        match value {
            SoapValue::Null => el,
            SoapValue::Bool(b) => el.with_text(b.to_string()),
            SoapValue::Int(i) => el.with_text(i.to_string()),
            SoapValue::Double(d) => {
                let mut s = String::new();
                format_double_into(*d, &mut s);
                el.with_text(s)
            }
            SoapValue::Text(s) => el.with_text(s.clone()),
            SoapValue::Bytes(b) => el.with_text(hex_encode(b)),
            SoapValue::List(items) => items
                .iter()
                .fold(el, |acc, item| acc.child(value_to_element(item, "item"))),
            SoapValue::DataRef { hash, len, kind } => {
                el.with_text(format!("{hash:032x}:{len}:{}", kind.wire_name()))
            }
        }
    }

    #[test]
    fn fast_path_envelopes_match_tree_encoder() {
        let call = SoapCall::new("Classifier", "classifyInstance")
            .arg("classifier", SoapValue::Text("J48".into()))
            .arg("empty", SoapValue::Text(String::new()))
            .arg("nil", SoapValue::Null)
            .arg("flag", SoapValue::Bool(false))
            .arg("n", SoapValue::Int(-7))
            .arg("d", SoapValue::Double(0.25))
            .arg("esc", SoapValue::Text("a<b>&\"c'".into()))
            .arg("data", SoapValue::Bytes(vec![0, 255, 16]))
            .arg("none", SoapValue::Bytes(Vec::new()))
            .arg(
                "list",
                SoapValue::List(vec![SoapValue::Int(1), SoapValue::List(Vec::new())]),
            )
            .arg(
                "ref",
                SoapValue::DataRef {
                    hash: 0xdead_beef,
                    len: 1234,
                    kind: RefKind::Text,
                },
            );
        let reference = XmlElement::new("soap:Envelope")
            .attr("xmlns:soap", "http://schemas.xmlsoap.org/soap/envelope/")
            .attr("xmlns:xsi", "http://www.w3.org/2001/XMLSchema-instance")
            .child(
                XmlElement::new("soap:Body").child(
                    call.args.iter().fold(
                        XmlElement::new(format!("ns:{}", call.operation))
                            .attr("xmlns:ns", format!("urn:{}", call.service)),
                        |acc, (name, value)| acc.child(value_to_element(value, name)),
                    ),
                ),
            )
            .to_xml();
        assert_eq!(call.to_envelope(), reference);

        // No-argument calls self-close the operation element.
        let empty = SoapCall::new("S", "ping");
        assert!(empty
            .to_envelope()
            .contains("<ns:ping xmlns:ns=\"urn:S\"/>"));
        assert_eq!(
            SoapCall::from_envelope(&empty.to_envelope()).unwrap(),
            empty
        );

        let value = SoapResponse::Value(SoapValue::Text("x & y".into()));
        let reference = XmlElement::new("soap:Envelope")
            .attr("xmlns:soap", "http://schemas.xmlsoap.org/soap/envelope/")
            .attr("xmlns:xsi", "http://www.w3.org/2001/XMLSchema-instance")
            .child(
                XmlElement::new("soap:Body").child(
                    XmlElement::new("opResponse")
                        .child(value_to_element(&SoapValue::Text("x & y".into()), "return")),
                ),
            )
            .to_xml();
        assert_eq!(value.to_envelope("op"), reference);

        let fault = SoapResponse::Fault {
            code: "Server".into(),
            message: "boom & <bust>".into(),
        };
        let reference = XmlElement::new("soap:Envelope")
            .attr("xmlns:soap", "http://schemas.xmlsoap.org/soap/envelope/")
            .attr("xmlns:xsi", "http://www.w3.org/2001/XMLSchema-instance")
            .child(
                XmlElement::new("soap:Body").child(
                    XmlElement::new("soap:Fault")
                        .child(XmlElement::new("faultcode").with_text("Server"))
                        .child(XmlElement::new("faultstring").with_text("boom & <bust>")),
                ),
            )
            .to_xml();
        assert_eq!(fault.to_envelope("op"), reference);
    }

    #[test]
    fn data_ref_roundtrip_and_wire_size() {
        let r = SoapValue::DataRef {
            hash: u128::MAX - 5,
            len: 9_876_543,
            kind: RefKind::Bytes,
        };
        let call = SoapCall::new("S", "op").arg("dataset", r.clone());
        let back = SoapCall::from_envelope(&call.to_envelope()).unwrap();
        assert_eq!(back.get("dataset").unwrap(), &r);
        assert_eq!(r.wire_size(), 80);
        assert_eq!(
            r.as_data_ref(),
            Some((u128::MAX - 5, 9_876_543, RefKind::Bytes))
        );
        assert_eq!(SoapValue::Null.as_data_ref(), None);

        // A large payload's handle is dramatically smaller than the
        // payload itself.
        let payload = SoapValue::Text("x".repeat(100_000));
        assert!(payload.wire_size() > 1000 * r.wire_size());
    }

    #[test]
    fn malformed_data_refs_rejected() {
        for text in [
            "",
            "zz:3:text",
            "ff:notanum:text",
            "ff:3:maybe",
            "ff:3",
            "ff",
        ] {
            assert!(parse_data_ref(text).is_err(), "should reject {text:?}");
        }
        let ok = parse_data_ref("00000000000000000000000000000abc:42:text").unwrap();
        assert_eq!(ok.as_data_ref(), Some((0xabc, 42, RefKind::Text)));
    }

    #[test]
    fn wire_size_scales_with_payload() {
        let small = SoapValue::Bytes(vec![0; 100]).wire_size();
        let large = SoapValue::Bytes(vec![0; 10_000]).wire_size();
        assert!(large > small * 50);
    }

    #[test]
    fn serialized_size_is_exact_for_every_value_shape() {
        let values = vec![
            SoapValue::Null,
            SoapValue::Bool(true),
            SoapValue::Bool(false),
            SoapValue::Int(0),
            SoapValue::Int(-7001),
            SoapValue::Int(i64::MIN),
            SoapValue::Double(0.25),
            SoapValue::Double(f64::NAN),
            SoapValue::Double(-1.5e300),
            SoapValue::Text(String::new()),
            SoapValue::Text("plain".into()),
            SoapValue::Text("a<b>&\"c' with specials".into()),
            SoapValue::Bytes(Vec::new()),
            SoapValue::Bytes(vec![0, 255, 16]),
            SoapValue::List(Vec::new()),
            SoapValue::List(vec![
                SoapValue::Int(1),
                SoapValue::Text("two & three".into()),
                SoapValue::List(vec![SoapValue::Null]),
            ]),
            SoapValue::DataRef {
                hash: 0xdead_beef,
                len: 0,
                kind: RefKind::Text,
            },
            SoapValue::DataRef {
                hash: u128::MAX,
                len: 9_876_543,
                kind: RefKind::Bytes,
            },
        ];
        for v in values {
            let mut out = String::new();
            v.write_element("dataset", &mut out);
            assert_eq!(
                v.serialized_size("dataset"),
                out.len(),
                "serialized_size mismatch for {v:?}: wrote {out:?}"
            );
        }
    }

    #[test]
    fn trace_parent_rides_a_header_and_roundtrips() {
        let ctx = SpanContext {
            trace_id: 0xfeed_f00d,
            span_id: 7,
        };
        let mut call = SoapCall::new("S", "op").arg("x", SoapValue::Int(1));
        let plain = call.to_envelope();
        assert!(!plain.contains("Header"));
        call.trace_parent = Some(ctx);
        let traced = call.to_envelope();
        assert!(traced.contains("<soap:Header><traceparent>"));
        let back = SoapCall::from_envelope(&traced).unwrap();
        assert_eq!(back.trace_parent, Some(ctx));
        assert_eq!(back.get("x").unwrap(), &SoapValue::Int(1));
        // Headerless envelopes decode to None.
        assert_eq!(SoapCall::from_envelope(&plain).unwrap().trace_parent, None);
        // The header costs a fixed 109 bytes: a 55-char traceparent
        // value plus its framing tags.
        assert_eq!(traced.len() - plain.len(), 109);
    }

    #[test]
    fn malformed_envelopes_rejected() {
        assert!(SoapCall::from_envelope("<a/>").is_err());
        assert!(
            SoapResponse::from_envelope("<soap:Envelope><soap:Body/></soap:Envelope>").is_err()
        );
    }
}
